//! The gate-level substrate: every pipeline stage is its synthesized
//! stage netlist, evaluated 64 patterns at a time.
//!
//! Each "operation" a stage executes is one lane of a 64-wide
//! pseudo-random input block (the same deterministic stream the ATPG
//! campaign uses), so injected faults are *real stuck-at faults* from the
//! fault universe of [`r2d3_atpg`]-style campaigns, and the inter-stage
//! checkers compare folded gate-level output vectors instead of
//! architectural values.
//!
//! All pipelines run the same per-unit input stream in lockstep, which is
//! exactly the property the paper's leftover-based detection relies on:
//! a redundant stage of the same unit can re-execute a DUT's window from
//! the trace record alone. A record's `input_sig` encodes
//! `(unit, block, lane)`, so [`ReliabilitySubstrate::replay_output`] can
//! regenerate the inputs and re-evaluate them through any same-unit
//! stage, applying that stage's own stuck-at fault if it has one.

use super::ReliabilitySubstrate;
use crate::EngineError;
use parking_lot::Mutex;
use r2d3_isa::Unit;
use r2d3_netlist::netlist::{NetId, Netlist};
use r2d3_netlist::stages::{stage_netlist, StageNetlist, StageSizing};
use r2d3_netlist::{FaultCone, FaultSim, SimScratch};
use r2d3_pipeline_sim::{ActivityStats, Fabric, LinkFault, StageId, StageRecord, TraceRing};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// A permanent gate-level fault: one net stuck at a logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateFault {
    /// The stuck net (within the stage's unit netlist).
    pub net: NetId,
    /// `true` = stuck-at-1, `false` = stuck-at-0.
    pub stuck: bool,
}

/// Ground-truth health of one gate-level stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateHealth {
    Healthy,
    Faulty(GateFault),
    PoweredOff,
}

/// Configuration of a [`NetlistSubstrate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetlistSubstrateConfig {
    /// Tiers in the stack.
    pub layers: usize,
    /// Logical pipelines (identity-formed at construction).
    pub pipelines: usize,
    /// Synthesis sizing of the per-unit stage netlists. The default here
    /// is smaller than the ATPG default: the substrate evaluates five
    /// netlists per operation block inside the engine loop.
    pub sizing: StageSizing,
    /// Capacity of each stage's trace ring.
    pub trace_capacity: usize,
    /// Cycles one gate-level operation (one pattern lane) occupies.
    pub cycles_per_op: u64,
    /// Seed of the deterministic per-(unit, block) input streams.
    pub seed: u64,
}

impl Default for NetlistSubstrateConfig {
    fn default() -> Self {
        NetlistSubstrateConfig {
            layers: 8,
            pipelines: 6,
            sizing: StageSizing { gates_per_mm2: 2_500.0, ..Default::default() },
            trace_capacity: 4096,
            cycles_per_op: 16,
            seed: 0x3D3D,
        }
    }
}

/// Architectural checkpoint of one gate-level pipeline: the operation
/// stream position plus the corruption flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetlistCheckpoint {
    op_index: u64,
    retired: u64,
    tainted: bool,
}

impl NetlistCheckpoint {
    /// Operations retired at capture time.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// FNV-1a digest over the snapshot payload (stream position,
    /// retirement count, taint flag).
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in [self.op_index, self.retired, u64::from(self.tainted)] {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    /// Flips one seed-selected bit of the snapshot (checkpoint storage
    /// rot; campaign ground truth only).
    pub fn corrupt_bit(&mut self, seed: u64) {
        // Low bits of the stream position: a restored pipeline silently
        // resumes from the wrong operation — exactly the poisoned-state
        // class the integrity check exists to catch.
        let bit = (seed % 16) as u32;
        self.op_index ^= 1 << bit;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PipeState {
    /// Next operation index in the per-unit input stream.
    op_index: u64,
    /// Cycle remainder below one operation.
    cycle_carry: u64,
    retired: u64,
    tainted: bool,
}

/// Folded per-lane output signatures, cached per input block. Entries are
/// pure functions of `(seed, unit, block[, fault])`, so the cache never
/// affects results — only evaluation count.
#[derive(Default)]
struct FoldCache {
    /// `(unit index, block)` → full good net-value vectors, shared by the
    /// good fold and the incremental faulty scan (which walks only a
    /// fault's fanout cone over these instead of re-evaluating the whole
    /// netlist).
    goods: HashMap<(usize, u64), Arc<Vec<u64>>>,
    /// `(unit index, block)` → good signatures.
    good: HashMap<(usize, u64), [u32; 64]>,
    /// `(stage flat index, block)` → signatures under the stage's fault.
    faulty: HashMap<(usize, u64), [u32; 64]>,
}

/// Evaluation-cache bound: beyond this many blocks the cache resets
/// (entries are recomputable; this only caps memory).
const CACHE_CAP: usize = 8192;

/// Gate-level implementation of [`ReliabilitySubstrate`].
pub struct NetlistSubstrate {
    layers: usize,
    cycles_per_op: u64,
    seed: u64,
    /// One synthesized netlist per unit kind, shared by all layers.
    stage_netlists: Vec<StageNetlist>,
    /// One incremental fault-simulation engine per unit kind (owned —
    /// [`FaultSim`] copies what it needs), so faulty scans walk fanout
    /// cones instead of re-evaluating whole netlists.
    scan_sims: Vec<FaultSim>,
    fabric: Fabric,
    health: Vec<GateHealth>,
    /// Armed one-shot transients: a per-stage XOR mask applied to the
    /// next lane that stage evaluates, then consumed.
    pending_transients: Vec<Option<u32>>,
    traces: Vec<TraceRing>,
    pipes: Vec<PipeState>,
    now: u64,
    stats: ActivityStats,
    cache: Mutex<FoldCache>,
}

impl Clone for NetlistSubstrate {
    /// Clones the full substrate state; the fold cache starts empty
    /// (entries are pure functions of the cloned state, so dropping them
    /// never changes results — campaign scenarios clone a synthesized
    /// template instead of re-synthesizing five netlists per scenario).
    fn clone(&self) -> Self {
        NetlistSubstrate {
            layers: self.layers,
            cycles_per_op: self.cycles_per_op,
            seed: self.seed,
            stage_netlists: self.stage_netlists.clone(),
            scan_sims: self.scan_sims.clone(),
            fabric: self.fabric.clone(),
            health: self.health.clone(),
            pending_transients: self.pending_transients.clone(),
            traces: self.traces.clone(),
            pipes: self.pipes.clone(),
            now: self.now,
            stats: self.stats.clone(),
            cache: Mutex::new(FoldCache::default()),
        }
    }
}

impl std::fmt::Debug for NetlistSubstrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetlistSubstrate")
            .field("layers", &self.layers)
            .field("pipelines", &self.pipes.len())
            .field("now", &self.now)
            .field("health", &self.health)
            .finish_non_exhaustive()
    }
}

/// Packs a record's operation coordinates into its `input_sig`.
fn encode_sig(unit: usize, block: u64, lane: usize) -> u64 {
    (block << 16) | ((lane as u64) << 8) | unit as u64
}

/// Inverse of [`encode_sig`].
fn decode_sig(sig: u64) -> (usize, u64, usize) {
    ((sig & 0xFF) as usize, sig >> 16, ((sig >> 8) & 0xFF) as usize)
}

/// Folds each pattern lane's observed-output column into a 32-bit
/// signature (XOR onto rotating positions): any single flipped output bit
/// flips the signature, which is all the inter-stage checkers need.
fn fold_lanes(outputs: &[NetId], mut value: impl FnMut(NetId) -> u64) -> [u32; 64] {
    let mut out = [0u32; 64];
    for (j, &net) in outputs.iter().enumerate() {
        let word = value(net);
        let rot = (j & 31) as u32;
        for (lane, sig) in out.iter_mut().enumerate() {
            *sig ^= (((word >> lane) & 1) as u32) << rot;
        }
    }
    out
}

fn fold_block(nl: &Netlist, values: &[u64]) -> [u32; 64] {
    fold_lanes(nl.outputs(), |net| values[net.index()])
}

impl NetlistSubstrate {
    /// Builds the stack: synthesizes the five unit netlists, forms the
    /// identity pipeline assignment, and starts every stage healthy.
    ///
    /// # Panics
    ///
    /// Panics if `pipelines > layers` or `trace_capacity == 0`.
    #[must_use]
    pub fn new(config: &NetlistSubstrateConfig) -> Self {
        let stage_netlists: Vec<StageNetlist> =
            Unit::ALL.iter().map(|&u| stage_netlist(u, &config.sizing)).collect();
        Self::from_stage_netlists(config, stage_netlists)
    }

    /// Builds the stack over caller-provided stage netlists (for example
    /// cores imported from Yosys JSON, or stage netlists run through the
    /// IR rewrite passes) instead of synthesizing them from
    /// `config.sizing`.
    ///
    /// Each netlist is re-checked against the IR validity invariants; an
    /// invalid netlist (multiple drivers, cycles, non-topological order,
    /// …) is rejected with the typed [`r2d3_netlist::IrError`] rather
    /// than risking a mis-simulation.
    ///
    /// # Errors
    ///
    /// Returns an error if `stages` does not provide exactly one netlist
    /// per unit kind (in [`Unit::ALL`] order) or if any netlist fails IR
    /// validation.
    ///
    /// # Panics
    ///
    /// Panics if `pipelines > layers` or `trace_capacity == 0` (same
    /// contract as [`NetlistSubstrate::new`]).
    pub fn with_stage_netlists(
        config: &NetlistSubstrateConfig,
        stages: Vec<StageNetlist>,
    ) -> Result<Self, EngineError> {
        if stages.len() != Unit::COUNT {
            return Err(EngineError::Substrate(format!(
                "expected {} stage netlists (one per unit), got {}",
                Unit::COUNT,
                stages.len()
            )));
        }
        for (sn, &unit) in stages.iter().zip(Unit::ALL.iter()) {
            if sn.unit() != unit {
                return Err(EngineError::Substrate(format!(
                    "stage netlist order mismatch: expected {unit}, got {}",
                    sn.unit()
                )));
            }
            r2d3_netlist::ir::validate(sn.netlist()).map_err(|e| {
                EngineError::Substrate(format!("invalid {unit} stage netlist: {e}"))
            })?;
        }
        Ok(Self::from_stage_netlists(config, stages))
    }

    fn from_stage_netlists(
        config: &NetlistSubstrateConfig,
        stage_netlists: Vec<StageNetlist>,
    ) -> Self {
        let scan_sims: Vec<FaultSim> =
            stage_netlists.iter().map(|sn| FaultSim::new(sn.netlist())).collect();
        let nstages = config.layers * Unit::COUNT;
        NetlistSubstrate {
            layers: config.layers,
            cycles_per_op: config.cycles_per_op.max(1),
            seed: config.seed,
            stage_netlists,
            scan_sims,
            fabric: Fabric::identity(config.layers, config.pipelines),
            health: vec![GateHealth::Healthy; nstages],
            pending_transients: vec![None; nstages],
            traces: (0..nstages).map(|_| TraceRing::new(config.trace_capacity)).collect(),
            pipes: vec![PipeState::default(); config.pipelines],
            now: 0,
            stats: ActivityStats::new(config.layers),
            cache: Mutex::new(FoldCache::default()),
        }
    }

    /// The unit netlists backing the stages (index = [`Unit::index`]).
    #[must_use]
    pub fn stage_netlists(&self) -> &[StageNetlist] {
        &self.stage_netlists
    }

    /// The crossbar state (read-only; the engine reconfigures through the
    /// trait).
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// A stuck-at fault on the `index`-th observed output of `unit`'s
    /// netlist — a convenient, strongly-detectable fault site for
    /// experiments (CLI, benches, tests).
    #[must_use]
    pub fn output_fault(&self, unit: Unit, index: usize, stuck: bool) -> GateFault {
        let outputs = self.stage_netlists[unit.index()].netlist().outputs();
        GateFault { net: outputs[index % outputs.len()], stuck }
    }

    /// Deterministic input block for `(unit, block)` — shared by every
    /// pipe (lockstep streams) and regenerable for replay.
    fn block_inputs(&self, unit: usize, block: u64) -> Vec<u64> {
        let nl = self.stage_netlists[unit].netlist();
        let salt = (unit as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ block.wrapping_mul(0xD134_2543_DE82_EF95);
        let mut rng = StdRng::seed_from_u64(self.seed ^ salt);
        (0..nl.num_inputs()).map(|_| rng.gen()).collect()
    }

    /// Full good net-value vector for `(unit, block)`, shared between the
    /// good fold and the incremental faulty scan via the cache.
    fn good_values(&self, unit: usize, block: u64) -> Arc<Vec<u64>> {
        if let Some(hit) = self.cache.lock().goods.get(&(unit, block)) {
            return Arc::clone(hit);
        }
        let nl = self.stage_netlists[unit].netlist();
        let values = Arc::new(nl.eval_all(&self.block_inputs(unit, block)));
        let mut cache = self.cache.lock();
        if cache.goods.len() >= CACHE_CAP {
            cache.goods.clear();
        }
        Arc::clone(cache.goods.entry((unit, block)).or_insert(values))
    }

    fn good_fold(&self, unit: usize, block: u64) -> [u32; 64] {
        if let Some(hit) = self.cache.lock().good.get(&(unit, block)) {
            return *hit;
        }
        let nl = self.stage_netlists[unit].netlist();
        let fold = fold_block(nl, &self.good_values(unit, block));
        let mut cache = self.cache.lock();
        if cache.good.len() >= CACHE_CAP {
            cache.good.clear();
        }
        cache.good.insert((unit, block), fold);
        fold
    }

    fn faulty_fold(&self, stage: StageId, block: u64, fault: GateFault) -> [u32; 64] {
        let key = (stage.flat_index(), block);
        if let Some(hit) = self.cache.lock().faulty.get(&key) {
            return *hit;
        }
        // Incremental scan: walk only the fault's fanout cone over the
        // cached good values instead of re-evaluating the whole netlist
        // per (stage, block).
        let unit = stage.unit.index();
        let good = self.good_values(unit, block);
        let sim = &self.scan_sims[unit];
        let mut cone = FaultCone::new();
        let mut scratch = SimScratch::new();
        sim.cone_into(fault.net, &mut cone);
        sim.eval_stuck(&good, (fault.net, fault.stuck), &cone, &mut scratch);
        let fold = fold_lanes(sim.outputs(), |net| scratch.value(&good, net));
        let mut cache = self.cache.lock();
        if cache.faulty.len() >= CACHE_CAP {
            cache.faulty.clear();
        }
        cache.faulty.insert(key, fold);
        fold
    }

    fn check_pipe(&self, pipe: usize) -> Result<(), EngineError> {
        if pipe < self.pipes.len() {
            Ok(())
        } else {
            Err(EngineError::Substrate(format!("unknown pipeline {pipe}")))
        }
    }

    fn check_stage(&self, stage: StageId) -> Result<(), EngineError> {
        if stage.layer < self.layers {
            Ok(())
        } else {
            Err(EngineError::Substrate(format!("unknown stage {stage}")))
        }
    }
}

impl ReliabilitySubstrate for NetlistSubstrate {
    type Checkpoint = NetlistCheckpoint;
    type Fault = GateFault;

    fn layers(&self) -> usize {
        self.layers
    }

    fn pipeline_count(&self) -> usize {
        self.pipes.len()
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn run(&mut self, cycles: u64) -> Result<(), EngineError> {
        let start_now = self.now;
        self.now += cycles;
        for p in 0..self.pipes.len() {
            // An incomplete pipeline idles; wall-clock still passes.
            if !self.fabric.is_complete(p) {
                continue;
            }
            let total = self.pipes[p].cycle_carry + cycles;
            let ops = total / self.cycles_per_op;
            self.pipes[p].cycle_carry = total % self.cycles_per_op;
            if ops == 0 {
                continue;
            }
            let first = self.pipes[p].op_index;
            let last = first + ops;
            let stages: Vec<StageId> = Unit::ALL
                .iter()
                .map(|&u| self.fabric.stage_for(p, u).expect("complete pipeline"))
                .collect();

            let mut op = first;
            while op < last {
                let block = op / 64;
                let lane0 = (op % 64) as usize;
                let lanes = (64 - lane0).min((last - op) as usize);
                for &stage in &stages {
                    let unit = stage.unit.index();
                    let good = self.good_fold(unit, block);
                    let bad = match self.health[stage.flat_index()] {
                        GateHealth::Faulty(f) => Some(self.faulty_fold(stage, block, f)),
                        // A powered-off stage is never assigned by the
                        // engine; if mapped anyway it contributes golden
                        // values (mirroring the behavioral substrate).
                        GateHealth::Healthy | GateHealth::PoweredOff => None,
                    };
                    for k in 0..lanes {
                        let lane = lane0 + k;
                        let golden = good[lane];
                        let mut actual = bad.map_or(golden, |b| b[lane]);
                        // A one-shot transient corrupts exactly one lane,
                        // then is consumed (it never recurs under replay).
                        if let Some(mask) = self.pending_transients[stage.flat_index()].take() {
                            actual ^= mask;
                        }
                        // The value the consumer (and the snooped trace)
                        // sees rides the vertical TSV bundle: link faults
                        // and mux-select skew corrupt it in flight, after
                        // the stage's own computation.
                        let delivered = self.fabric.deliver(p, stage.unit, actual);
                        let cycle = start_now + (op - first + k as u64 + 1) * self.cycles_per_op;
                        self.traces[stage.flat_index()].push(StageRecord {
                            cycle,
                            input_sig: encode_sig(unit, block, lane),
                            golden_output: golden,
                            actual_output: delivered,
                        });
                        if delivered != golden {
                            self.pipes[p].tainted = true;
                        }
                    }
                    self.stats.add_busy(stage, lanes as u64 * self.cycles_per_op);
                }
                op += lanes as u64;
            }
            self.pipes[p].op_index = last;
            self.pipes[p].retired += ops;
        }
        Ok(())
    }

    fn stage_for(&self, pipe: usize, unit: Unit) -> Option<StageId> {
        self.fabric.stage_for(pipe, unit)
    }

    fn leftovers(&self) -> Vec<StageId> {
        self.fabric.unassigned_stages()
    }

    fn trace_window(&self, stage: StageId, n: usize) -> Vec<StageRecord> {
        self.traces[stage.flat_index()].last(n)
    }

    fn replay_output(&self, stage: StageId, record: &StageRecord) -> u32 {
        match self.health[stage.flat_index()] {
            GateHealth::Faulty(f) => {
                let (unit, block, lane) = decode_sig(record.input_sig);
                // A corrupted replay register can present coordinates from
                // the wrong unit or a lane outside the block: fail safe
                // (echo the recorded golden signature, as a healthy stage
                // would) instead of indexing out of bounds. The checker
                // still flags the record via its corrupted payload.
                if unit != stage.unit.index() || lane >= 64 {
                    return record.golden_output;
                }
                self.faulty_fold(stage, block, f)[lane]
            }
            // A fault-free re-execution of the recorded inputs reproduces
            // the recorded golden signature by construction.
            GateHealth::Healthy | GateHealth::PoweredOff => record.golden_output,
        }
    }

    fn stage_usable(&self, stage: StageId) -> bool {
        !matches!(self.health[stage.flat_index()], GateHealth::Faulty(_))
    }

    fn power_off(&mut self, stage: StageId) -> Result<(), EngineError> {
        self.check_stage(stage)?;
        self.health[stage.flat_index()] = GateHealth::PoweredOff;
        Ok(())
    }

    fn unassign(&mut self, pipe: usize, unit: Unit) -> Result<(), EngineError> {
        self.fabric.unassign(pipe, unit).map_err(EngineError::Sim)
    }

    fn assign(&mut self, pipe: usize, unit: Unit, layer: usize) -> Result<(), EngineError> {
        self.fabric.assign(pipe, unit, layer).map_err(EngineError::Sim)
    }

    fn pipeline_corrupted(&self, pipe: usize) -> bool {
        self.pipes.get(pipe).is_some_and(|p| p.tainted)
    }

    fn retired(&self, pipe: usize) -> u64 {
        self.pipes.get(pipe).map_or(0, |p| p.retired)
    }

    fn restart_program(&mut self, pipe: usize) -> Result<(), EngineError> {
        self.check_pipe(pipe)?;
        self.pipes[pipe] = PipeState::default();
        Ok(())
    }

    fn checkpoint_pipeline(&self, pipe: usize) -> Result<NetlistCheckpoint, EngineError> {
        self.check_pipe(pipe)?;
        let p = &self.pipes[pipe];
        Ok(NetlistCheckpoint { op_index: p.op_index, retired: p.retired, tainted: p.tainted })
    }

    fn checkpoint_retired(checkpoint: &NetlistCheckpoint) -> u64 {
        checkpoint.retired
    }

    fn restore_pipeline(
        &mut self,
        pipe: usize,
        checkpoint: &NetlistCheckpoint,
    ) -> Result<(), EngineError> {
        self.check_pipe(pipe)?;
        let p = &mut self.pipes[pipe];
        p.op_index = checkpoint.op_index;
        p.retired = checkpoint.retired;
        p.tainted = checkpoint.tainted;
        p.cycle_carry = 0;
        Ok(())
    }

    fn inject_fault(&mut self, stage: StageId, fault: GateFault) -> Result<(), EngineError> {
        self.check_stage(stage)?;
        let nets = self.stage_netlists[stage.unit.index()].netlist().num_nets();
        if fault.net.index() >= nets {
            return Err(EngineError::Substrate(format!(
                "net {} out of range for {} ({} nets)",
                fault.net.index(),
                stage.unit,
                nets
            )));
        }
        self.health[stage.flat_index()] = GateHealth::Faulty(fault);
        // Cached folds for this stage are stale now.
        self.cache.lock().faulty.retain(|&(flat, _), _| flat != stage.flat_index());
        Ok(())
    }

    fn inject_permanent_seeded(&mut self, stage: StageId, seed: u64) -> Result<(), EngineError> {
        // A stuck observed output is strongly detectable: roughly half of
        // all patterns toggle it, so it manifests within a block.
        let fault = self.output_fault(stage.unit, seed as usize, seed & 1 == 0);
        self.inject_fault(stage, fault)
    }

    fn inject_transient_seeded(&mut self, stage: StageId, seed: u64) -> Result<(), EngineError> {
        self.check_stage(stage)?;
        // A nonzero signature mask always manifests on the struck lane.
        let mask = ((seed as u32) | 1) & 0xFFFF;
        self.pending_transients[stage.flat_index()] = Some(mask);
        Ok(())
    }

    fn checkpoint_digest(checkpoint: &NetlistCheckpoint) -> u64 {
        checkpoint.digest()
    }

    fn corrupt_checkpoint(checkpoint: &mut NetlistCheckpoint, seed: u64) {
        checkpoint.corrupt_bit(seed);
    }

    fn inject_link_fault(&mut self, link: StageId, fault: LinkFault) -> Result<(), EngineError> {
        self.check_stage(link)?;
        self.fabric.inject_link_fault(link.layer, link.unit, fault).map_err(EngineError::Sim)
    }

    fn route_readback(&self, pipe: usize, unit: Unit) -> Option<usize> {
        self.fabric.route_readback(pipe, unit)
    }

    fn corrupt_route(&mut self, pipe: usize, unit: Unit, layer: usize) -> Result<(), EngineError> {
        self.fabric.override_route(pipe, unit, layer).map_err(EngineError::Sim)
    }

    fn scrub_route(&mut self, pipe: usize, unit: Unit) {
        self.fabric.scrub_route(pipe, unit);
    }

    fn stats(&self) -> &ActivityStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn name(&self) -> &'static str {
        "netlist"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NetlistSubstrate {
        NetlistSubstrate::new(&NetlistSubstrateConfig {
            layers: 4,
            pipelines: 2,
            trace_capacity: 512,
            ..Default::default()
        })
    }

    #[test]
    fn healthy_run_traces_agree_with_golden() {
        let mut sub = small();
        sub.run(2_000).unwrap();
        assert_eq!(sub.now(), 2_000);
        for p in 0..2 {
            assert!(sub.retired(p) > 0, "pipe {p} retired nothing");
            assert!(!sub.pipeline_corrupted(p));
        }
        let dut = sub.stage_for(0, Unit::Exu).unwrap();
        let window = sub.trace_window(dut, 64);
        assert!(!window.is_empty());
        for r in &window {
            assert_eq!(r.golden_output, r.actual_output);
        }
    }

    #[test]
    fn lockstep_pipes_share_the_stream() {
        let mut sub = small();
        sub.run(2_000).unwrap();
        let a = sub.trace_window(sub.stage_for(0, Unit::Exu).unwrap(), 32);
        let b = sub.trace_window(sub.stage_for(1, Unit::Exu).unwrap(), 32);
        assert_eq!(
            a.iter().map(|r| (r.input_sig, r.golden_output)).collect::<Vec<_>>(),
            b.iter().map(|r| (r.input_sig, r.golden_output)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn stuck_at_fault_manifests_and_taints() {
        let mut sub = small();
        let dut = StageId::new(0, Unit::Exu);
        let fault = sub.output_fault(Unit::Exu, 0, true);
        sub.inject_fault(dut, fault).unwrap();
        sub.run(4_000).unwrap();
        let window = sub.trace_window(dut, 256);
        let mismatches = window.iter().filter(|r| r.actual_output != r.golden_output).count();
        assert!(mismatches > 0, "stuck-at-1 on an output never manifested");
        assert!(sub.pipeline_corrupted(0));
        assert!(!sub.pipeline_corrupted(1), "fault leaked across pipes");
    }

    #[test]
    fn replay_reproduces_recorded_outputs() {
        let mut sub = small();
        let dut = StageId::new(0, Unit::Exu);
        sub.inject_fault(dut, sub.output_fault(Unit::Exu, 0, true)).unwrap();
        sub.run(4_000).unwrap();
        let window = sub.trace_window(dut, 256);
        let leftover = StageId::new(3, Unit::Exu); // unassigned, healthy
        for r in &window {
            // The faulty stage replays its own corrupted output; a healthy
            // same-unit stage replays the golden one.
            assert_eq!(sub.replay_output(dut, r), r.actual_output);
            assert_eq!(sub.replay_output(leftover, r), r.golden_output);
        }
    }

    #[test]
    fn checkpoint_restore_rolls_back_the_stream() {
        let mut sub = small();
        sub.run(2_000).unwrap();
        let cp = ReliabilitySubstrate::checkpoint_pipeline(&sub, 0).unwrap();
        let retired_at_cp = sub.retired(0);
        sub.run(2_000).unwrap();
        assert!(sub.retired(0) > retired_at_cp);
        sub.restore_pipeline(0, &cp).unwrap();
        assert_eq!(sub.retired(0), retired_at_cp);
        assert_eq!(NetlistSubstrate::checkpoint_retired(&cp), retired_at_cp);
        // Physical time is not rewound.
        assert_eq!(sub.now(), 4_000);
    }

    #[test]
    fn reconfiguration_moves_the_stream_to_a_new_stage() {
        let mut sub = small();
        sub.run(1_000).unwrap();
        // Move pipe 0's EXU from layer 0 to the spare layer 3.
        sub.unassign(0, Unit::Exu).unwrap();
        sub.assign(0, Unit::Exu, 3).unwrap();
        sub.run(1_000).unwrap();
        let spare = StageId::new(3, Unit::Exu);
        assert!(!sub.trace_window(spare, 16).is_empty(), "new stage produced no records");
        assert!(sub.stats().busy(spare) > 0);
    }

    #[test]
    fn link_fault_corrupts_delivery_but_replays_clean() {
        let mut sub = small();
        let link = sub.stage_for(0, Unit::Exu).unwrap();
        sub.inject_link_fault(link, LinkFault::Stuck { mask: 1 << 30, pattern: 1 << 30 }).unwrap();
        sub.run(4_000).unwrap();
        let window = sub.trace_window(link, 256);
        let corrupted = window.iter().filter(|r| r.actual_output != r.golden_output).count();
        assert!(corrupted > 0, "stuck TSV never manifested in the snooped trace");
        assert!(sub.pipeline_corrupted(0), "consumer of a dead link was not tainted");
        assert!(!sub.pipeline_corrupted(1), "link fault leaked across pipes");
        // The replay/test network bypasses the TSVs: every replay comes
        // back golden even though the delivered values were corrupted —
        // the observable discriminator between path and stage faults.
        for r in &window {
            assert_eq!(sub.replay_output(link, r), r.golden_output);
        }
        // Ground truth: the stage itself is healthy.
        assert!(sub.stage_usable(link));
    }

    #[test]
    fn out_of_range_fault_is_rejected() {
        let mut sub = small();
        let bogus = GateFault { net: NetId(u32::MAX), stuck: true };
        assert!(sub.inject_fault(StageId::new(0, Unit::Ffu), bogus).is_err());
    }
}
