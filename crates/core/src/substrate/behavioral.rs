//! The behavioral substrate: [`System3d`] with unchanged semantics.

use super::ReliabilitySubstrate;
use crate::checker::stage_output;
use crate::EngineError;
use r2d3_isa::Unit;
use r2d3_pipeline_sim::{
    ActivityStats, FaultEffect, LinkFault, PipelineCheckpoint, StageHealth, StageId, StageRecord,
    System3d,
};

impl ReliabilitySubstrate for System3d {
    type Checkpoint = PipelineCheckpoint;
    type Fault = FaultEffect;

    fn layers(&self) -> usize {
        self.fabric().layers()
    }

    fn pipeline_count(&self) -> usize {
        System3d::pipeline_count(self)
    }

    fn now(&self) -> u64 {
        System3d::now(self)
    }

    fn run(&mut self, cycles: u64) -> Result<(), EngineError> {
        System3d::run(self, cycles).map_err(EngineError::Sim)
    }

    fn stage_for(&self, pipe: usize, unit: Unit) -> Option<StageId> {
        self.fabric().stage_for(pipe, unit)
    }

    fn leftovers(&self) -> Vec<StageId> {
        System3d::leftovers(self)
    }

    fn trace_window(&self, stage: StageId, n: usize) -> Vec<StageRecord> {
        self.stage_trace(stage).last(n)
    }

    fn replay_output(&self, stage: StageId, record: &StageRecord) -> u32 {
        // Permanent effects persist under replay; one-shot transients were
        // consumed when they fired and do not recur.
        stage_output(self.health(stage).effect(), record.golden_output)
    }

    fn stage_usable(&self, stage: StageId) -> bool {
        self.health(stage).is_usable()
    }

    fn power_off(&mut self, stage: StageId) -> Result<(), EngineError> {
        self.set_health(stage, StageHealth::PoweredOff).map_err(EngineError::Sim)
    }

    fn unassign(&mut self, pipe: usize, unit: Unit) -> Result<(), EngineError> {
        self.fabric_mut().unassign(pipe, unit).map_err(EngineError::Sim)
    }

    fn assign(&mut self, pipe: usize, unit: Unit, layer: usize) -> Result<(), EngineError> {
        self.fabric_mut().assign(pipe, unit, layer).map_err(EngineError::Sim)
    }

    fn pipeline_corrupted(&self, pipe: usize) -> bool {
        self.pipeline(pipe).is_some_and(|p| p.tainted() || p.crashed())
    }

    fn retired(&self, pipe: usize) -> u64 {
        self.pipeline(pipe).map_or(0, |p| p.retired())
    }

    fn restart_program(&mut self, pipe: usize) -> Result<(), EngineError> {
        System3d::restart_program(self, pipe).map_err(EngineError::Sim)
    }

    fn checkpoint_pipeline(&self, pipe: usize) -> Result<PipelineCheckpoint, EngineError> {
        System3d::checkpoint_pipeline(self, pipe).map_err(EngineError::Sim)
    }

    fn checkpoint_retired(checkpoint: &PipelineCheckpoint) -> u64 {
        checkpoint.retired()
    }

    fn restore_pipeline(
        &mut self,
        pipe: usize,
        checkpoint: &PipelineCheckpoint,
    ) -> Result<(), EngineError> {
        System3d::restore_pipeline(self, pipe, checkpoint).map_err(EngineError::Sim)
    }

    fn inject_fault(&mut self, stage: StageId, fault: FaultEffect) -> Result<(), EngineError> {
        System3d::inject_fault(self, stage, fault).map_err(EngineError::Sim)
    }

    fn inject_permanent_seeded(&mut self, stage: StageId, seed: u64) -> Result<(), EngineError> {
        // Low architectural bits toggle on almost every operation, so a
        // stuck-at there manifests promptly under any workload.
        let effect = FaultEffect { bit: (seed % 4) as u8, stuck: seed & 4 == 0 };
        System3d::inject_fault(self, stage, effect).map_err(EngineError::Sim)
    }

    fn inject_transient_seeded(&mut self, stage: StageId, seed: u64) -> Result<(), EngineError> {
        let effect = FaultEffect { bit: (seed % 8) as u8, stuck: seed & 8 == 0 };
        System3d::inject_transient(self, stage, effect).map_err(EngineError::Sim)
    }

    fn checkpoint_digest(checkpoint: &PipelineCheckpoint) -> u64 {
        checkpoint.digest()
    }

    fn corrupt_checkpoint(checkpoint: &mut PipelineCheckpoint, seed: u64) {
        checkpoint.corrupt_bit(seed);
    }

    fn inject_link_fault(&mut self, link: StageId, fault: LinkFault) -> Result<(), EngineError> {
        self.fabric_mut().inject_link_fault(link.layer, link.unit, fault).map_err(EngineError::Sim)
    }

    fn route_readback(&self, pipe: usize, unit: Unit) -> Option<usize> {
        self.fabric().route_readback(pipe, unit)
    }

    fn corrupt_route(&mut self, pipe: usize, unit: Unit, layer: usize) -> Result<(), EngineError> {
        self.fabric_mut().override_route(pipe, unit, layer).map_err(EngineError::Sim)
    }

    fn scrub_route(&mut self, pipe: usize, unit: Unit) {
        self.fabric_mut().scrub_route(pipe, unit);
    }

    fn stats(&self) -> &ActivityStats {
        System3d::stats(self)
    }

    fn reset_stats(&mut self) {
        System3d::reset_stats(self);
    }

    fn name(&self) -> &'static str {
        "behavioral"
    }
}
