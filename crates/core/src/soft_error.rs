//! Statistical soft-error (transient fault) campaigns.
//!
//! Contribution 2 of the paper: the detection mechanism "detects and
//! distinguishes transient and permanent faults using single-cycle
//! replay". This module quantifies that claim: it injects batches of
//! one-shot transients at random stages/times while the engine runs,
//! then classifies each injection's outcome:
//!
//! * **caught** — a checker saw the corruption and the TMR replay
//!   classified it transient (no hardware was quarantined),
//! * **masked** — the flipped bit never changed an architectural result
//!   (the stuck value equaled the computed bit),
//! * **silent** — the corruption reached architectural state but no
//!   checker ever compared the affected window (the detection coverage
//!   gap: transients are only visible while a test window overlaps them),
//! * **crashed** — the corruption wedged the pipeline (wild branch), which
//!   is detected by construction and recovered by restart/rollback.

use crate::engine::{EngineEvent, R2d3Engine};
use crate::EngineError;
use r2d3_isa::Unit;
use r2d3_pipeline_sim::{FaultEffect, StageId, System3d, SystemConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Outcome of one injected transient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SoftErrorOutcome {
    /// Detected and classified transient by the engine.
    Caught,
    /// Never corrupted an architectural value.
    Masked,
    /// Corrupted state without detection (silent data corruption risk;
    /// bounded by the epoch/test-window coverage).
    Silent,
    /// Wedged the pipeline; recovered by the engine's repair path.
    Crashed,
    /// Misclassified as a permanent fault (quarantined healthy hardware —
    /// must not happen).
    Misdiagnosed,
}

/// Aggregate campaign results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SoftErrorReport {
    /// Transients injected.
    pub injected: usize,
    /// Counts per outcome.
    pub caught: usize,
    /// See [`SoftErrorOutcome::Masked`].
    pub masked: usize,
    /// See [`SoftErrorOutcome::Silent`].
    pub silent: usize,
    /// See [`SoftErrorOutcome::Crashed`].
    pub crashed: usize,
    /// See [`SoftErrorOutcome::Misdiagnosed`].
    pub misdiagnosed: usize,
}

impl SoftErrorReport {
    /// Fraction of *manifested* (non-masked) transients that were caught
    /// or safely crashed — the engine's effective transient coverage.
    #[must_use]
    pub fn handled_fraction(&self) -> f64 {
        let manifested = self.caught + self.silent + self.crashed + self.misdiagnosed;
        if manifested == 0 {
            1.0
        } else {
            (self.caught + self.crashed) as f64 / manifested as f64
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoftErrorConfig {
    /// Transients to inject (one per trial; each trial is a fresh system).
    pub injections: usize,
    /// Epochs to run after each injection.
    pub epochs_per_trial: usize,
    /// Engine configuration (short epochs keep the comparison window near
    /// the injection).
    pub engine: crate::R2d3Config,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SoftErrorConfig {
    fn default() -> Self {
        SoftErrorConfig {
            injections: 40,
            epochs_per_trial: 4,
            engine: crate::R2d3Config { t_epoch: 4_000, t_test: 4_000, ..Default::default() },
            seed: 0x50f7,
        }
    }
}

/// Runs the campaign: each trial arms one random transient on a random
/// in-service stage, runs the engine, and classifies the outcome.
///
/// # Errors
///
/// Propagates engine/simulator errors.
pub fn run_soft_error_campaign(config: &SoftErrorConfig) -> Result<SoftErrorReport, EngineError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut report = SoftErrorReport::default();

    for trial in 0..config.injections {
        let sys_config = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&sys_config);
        let kernel = r2d3_isa::kernels::gemv(64, 64, trial as u64 + 1);
        for p in 0..6 {
            sys.load_program(p, kernel.program().clone())?;
        }
        let mut engine: R2d3Engine = R2d3Engine::builder().config(config.engine).build()?;

        // Warm up a little so the injection lands mid-computation.
        engine.run_epoch(&mut sys)?;

        let layer = rng.gen_range(0..6);
        let unit = Unit::ALL[rng.gen_range(0..Unit::COUNT)];
        let bit = rng.gen_range(0..16u8);
        let stage = StageId::new(layer, unit);
        sys.inject_transient(stage, FaultEffect { bit, stuck: rng.gen_bool(0.5) })?;

        let mut caught = false;
        let mut misdiagnosed = false;
        for _ in 0..config.epochs_per_trial {
            let events = engine.run_epoch(&mut sys)?;
            for e in &events {
                match e {
                    EngineEvent::Transient { .. } => caught = true,
                    EngineEvent::Permanent { .. } | EngineEvent::Inconclusive { .. } => {
                        misdiagnosed = true;
                    }
                    _ => {}
                }
            }
            if caught || misdiagnosed {
                break;
            }
        }

        report.injected += 1;
        let pipe_states: Vec<_> = (0..6)
            .map(|p| {
                let pipe = sys.pipeline(p).expect("pipeline exists");
                (pipe.tainted(), pipe.crashed())
            })
            .collect();
        let any_taint = pipe_states.iter().any(|(t, _)| *t);
        let any_crash = pipe_states.iter().any(|(_, c)| *c);

        if misdiagnosed {
            report.misdiagnosed += 1;
        } else if caught {
            report.caught += 1;
        } else if any_crash {
            report.crashed += 1;
        } else if any_taint {
            report.silent += 1;
        } else {
            report.masked += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_classifies_every_injection() {
        let config = SoftErrorConfig { injections: 12, ..Default::default() };
        let r = run_soft_error_campaign(&config).unwrap();
        assert_eq!(r.injected, r.caught + r.masked + r.silent + r.crashed + r.misdiagnosed);
        assert_eq!(r.injected, 12);
    }

    #[test]
    fn no_transient_is_misdiagnosed_as_permanent() {
        // The single-replay TMR must never quarantine hardware for a
        // one-shot upset (the paper's diagnosis guarantee).
        let config = SoftErrorConfig { injections: 20, seed: 3, ..Default::default() };
        let r = run_soft_error_campaign(&config).unwrap();
        assert_eq!(r.misdiagnosed, 0, "{r:?}");
    }

    #[test]
    fn most_manifested_transients_are_handled() {
        let config = SoftErrorConfig { injections: 24, seed: 9, ..Default::default() };
        let r = run_soft_error_campaign(&config).unwrap();
        assert!(
            r.handled_fraction() >= 0.5,
            "handled fraction {:.2} too low: {r:?}",
            r.handled_fraction()
        );
    }
}
