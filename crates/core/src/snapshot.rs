//! Crash-safe run snapshots: the on-disk container for durable,
//! resumable long runs.
//!
//! A snapshot file is a single UTF-8 header line followed by an opaque
//! body (§5.0 of DESIGN.md):
//!
//! ```text
//! R2D3SNAP <version> <kind> <fnv1a64-of-body, 16 hex digits> <body-len>\n
//! <body bytes…>
//! ```
//!
//! * `version` — integer format version ([`SNAPSHOT_VERSION`]); readers
//!   reject anything else, they never guess.
//! * `kind` — what the body describes (`lifetime`, `campaign`,
//!   `shard`); resuming a lifetime run from a campaign snapshot is a
//!   typed error, not undefined behavior.
//! * digest/length — FNV-1a 64 over the exact body bytes plus the body
//!   byte count, so truncation and corruption are distinguishable.
//!
//! Writes are atomic: the file is assembled at `<path>.tmp`, fsynced,
//! then renamed over `<path>` (with a best-effort directory fsync), so
//! a crash mid-write leaves either the previous snapshot or none — never
//! a torn one. Reads verify length then digest and return a typed
//! [`SnapshotError`] on any mismatch: **never a panic, never silent
//! reuse of corrupt state**.
//!
//! Bodies are JSON (parsed with [`crate::jsonio`]). Values that must
//! round-trip bit-exactly — `f64` accumulators, RNG state words,
//! digests — are serialized as hex strings of their bit patterns (see
//! [`f64_to_json`]/[`json_to_f64`]), which is what makes a resumed run
//! byte-identical to an uninterrupted one.

use crate::jsonio::{self, Value};
use std::fmt;
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::Path;

/// Current snapshot format version. Bump on any body-schema change.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Magic token opening every snapshot header.
pub const SNAPSHOT_MAGIC: &str = "R2D3SNAP";

/// Typed rejection reasons for snapshot files. Every failure mode of
/// loading is represented here; loading never panics and never returns
/// partially-parsed state.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Filesystem-level failure (open, read, write, rename, fsync).
    Io(std::io::Error),
    /// The file does not start with a well-formed `R2D3SNAP` header.
    NotASnapshot,
    /// Written by an incompatible format version.
    Version {
        /// Version in the file's header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The snapshot is of a different run type (e.g. a campaign
    /// snapshot offered to `lifetime --resume`).
    Kind {
        /// Kind in the file's header.
        found: String,
        /// Kind the caller required.
        expected: &'static str,
    },
    /// The body is shorter than the header promised (torn copy,
    /// interrupted download, truncated file).
    Truncated {
        /// Body bytes the header declared.
        expected: usize,
        /// Body bytes actually present.
        found: usize,
    },
    /// The body digest does not match the header (bit rot, manual
    /// edit).
    DigestMismatch {
        /// Digest recorded in the header.
        expected: u64,
        /// Digest of the body as found.
        found: u64,
    },
    /// The body passed integrity checks but does not parse as the
    /// expected run state.
    Malformed(String),
    /// The snapshot is internally valid but belongs to a different run
    /// configuration (seed, scenario count, grid…) than the one being
    /// resumed.
    ConfigMismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::NotASnapshot => {
                write!(f, "not a snapshot file (missing {SNAPSHOT_MAGIC} header)")
            }
            SnapshotError::Version { found, expected } => {
                write!(f, "snapshot version {found} unsupported (this build reads {expected})")
            }
            SnapshotError::Kind { found, expected } => {
                write!(f, "snapshot is a \"{found}\" run, expected \"{expected}\"")
            }
            SnapshotError::Truncated { expected, found } => {
                write!(
                    f,
                    "snapshot truncated: header declares {expected} body bytes, {found} present"
                )
            }
            SnapshotError::DigestMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot digest mismatch: header says {expected:016x}, body hashes to {found:016x}"
                )
            }
            SnapshotError::Malformed(msg) => write!(f, "snapshot body malformed: {msg}"),
            SnapshotError::ConfigMismatch(msg) => {
                write!(f, "snapshot belongs to a different run: {msg}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64 over raw bytes — the same digest family the checkpoint
/// slots use, applied to the snapshot body.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes the bit pattern of an `f64` as a JSON hex-string token.
/// Exact for every value including negative zero, subnormals and
/// infinities; NaN payloads round-trip too.
#[must_use]
pub fn f64_to_json(v: f64) -> String {
    format!("\"{:x}\"", v.to_bits())
}

/// Reads back a value written by [`f64_to_json`].
pub(crate) fn json_to_f64(v: &Value) -> Result<f64, SnapshotError> {
    v.as_hex_u64()
        .map(f64::from_bits)
        .ok_or_else(|| SnapshotError::Malformed("expected f64 bit-pattern hex string".into()))
}

/// Renders a slice of `f64`s as a JSON array of bit-pattern hex strings.
#[must_use]
pub fn f64_slice_to_json(values: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&f64_to_json(*v));
    }
    out.push(']');
    out
}

/// Reads back an array written by [`f64_slice_to_json`].
pub(crate) fn json_to_f64_vec(v: &Value) -> Result<Vec<f64>, SnapshotError> {
    v.as_arr()
        .ok_or_else(|| SnapshotError::Malformed("expected array of f64 bit patterns".into()))?
        .iter()
        .map(json_to_f64)
        .collect()
}

/// Reads a required field out of a JSON object body.
pub(crate) fn field<'a>(obj: &'a Value, key: &str) -> Result<&'a Value, SnapshotError> {
    obj.get(key).ok_or_else(|| SnapshotError::Malformed(format!("missing field \"{key}\"")))
}

/// Parses a snapshot body as JSON, mapping parse failures to
/// [`SnapshotError::Malformed`].
pub(crate) fn parse_body(body: &str) -> Result<Value, SnapshotError> {
    jsonio::parse_json(body).map_err(SnapshotError::Malformed)
}

/// Atomically writes a snapshot: header + `body` assembled at
/// `<path>.tmp`, fsynced, renamed over `path`, directory fsynced
/// (best-effort). A crash at any point leaves the previous file (or
/// nothing), never a torn snapshot.
pub fn write_atomic(path: &Path, kind: &str, body: &[u8]) -> Result<(), SnapshotError> {
    let digest = fnv1a64(body);
    let header =
        format!("{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION} {kind} {digest:016x} {}\n", body.len());

    let tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    let mut file = File::create(&tmp)?;
    file.write_all(header.as_bytes())?;
    file.write_all(body)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, path)?;
    // Make the rename itself durable where the platform allows opening
    // directories; failure here can't tear the file, so best-effort.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads and verifies a snapshot of the given `kind`, returning the body
/// as a string. Verifies, in order: magic/header shape, version, kind,
/// declared length (→ [`SnapshotError::Truncated`]), digest
/// (→ [`SnapshotError::DigestMismatch`]).
pub fn read_verified(path: &Path, kind: &'static str) -> Result<String, SnapshotError> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    let newline = raw.iter().position(|&b| b == b'\n').ok_or(SnapshotError::NotASnapshot)?;
    let header = std::str::from_utf8(&raw[..newline]).map_err(|_| SnapshotError::NotASnapshot)?;
    let mut parts = header.split(' ');
    let (magic, version, found_kind, digest, len) = match (
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
    ) {
        (Some(m), Some(v), Some(k), Some(d), Some(l), None) => (m, v, k, d, l),
        _ => return Err(SnapshotError::NotASnapshot),
    };
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::NotASnapshot);
    }
    let version: u32 = version.parse().map_err(|_| SnapshotError::NotASnapshot)?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::Version { found: version, expected: SNAPSHOT_VERSION });
    }
    if found_kind != kind {
        return Err(SnapshotError::Kind { found: found_kind.to_string(), expected: kind });
    }
    let expected_digest =
        u64::from_str_radix(digest, 16).map_err(|_| SnapshotError::NotASnapshot)?;
    let expected_len: usize = len.parse().map_err(|_| SnapshotError::NotASnapshot)?;

    let body = &raw[newline + 1..];
    if body.len() != expected_len {
        return Err(SnapshotError::Truncated { expected: expected_len, found: body.len() });
    }
    let found_digest = fnv1a64(body);
    if found_digest != expected_digest {
        return Err(SnapshotError::DigestMismatch {
            expected: expected_digest,
            found: found_digest,
        });
    }
    String::from_utf8(body.to_vec())
        .map_err(|_| SnapshotError::Malformed("body is not UTF-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("r2d3-snapshot-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trips_body_exactly() {
        let path = tmp_path("roundtrip");
        let body = br#"{"cursor": 7, "acc": ["3ff0000000000000"]}"#;
        write_atomic(&path, "lifetime", body).unwrap();
        let read = read_verified(&path, "lifetime").unwrap();
        assert_eq!(read.as_bytes(), body);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_kind_is_typed() {
        let path = tmp_path("kind");
        write_atomic(&path, "campaign", b"{}").unwrap();
        match read_verified(&path, "lifetime") {
            Err(SnapshotError::Kind { found, expected }) => {
                assert_eq!(found, "campaign");
                assert_eq!(expected, "lifetime");
            }
            other => panic!("expected Kind error, got {other:?}"),
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_and_corruption_are_distinguished() {
        let path = tmp_path("corrupt");
        write_atomic(&path, "shard", b"0123456789").unwrap();
        let full = fs::read(&path).unwrap();

        // Truncated body: length check fires before the digest check.
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(matches!(
            read_verified(&path, "shard"),
            Err(SnapshotError::Truncated { expected: 10, found: 7 })
        ));

        // Same length, one bit flipped: digest check fires.
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(read_verified(&path, "shard"), Err(SnapshotError::DigestMismatch { .. })));

        // Version bump: rejected before looking at the body.
        let bumped = String::from_utf8(full).unwrap().replacen(
            &format!("{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION} "),
            &format!("{SNAPSHOT_MAGIC} {} ", SNAPSHOT_VERSION + 1),
            1,
        );
        fs::write(&path, bumped).unwrap();
        assert!(matches!(
            read_verified(&path, "shard"),
            Err(SnapshotError::Version { found, .. }) if found == SNAPSHOT_VERSION + 1
        ));

        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_is_not_a_snapshot() {
        let path = tmp_path("garbage");
        fs::write(&path, b"hello world\nnot a snapshot").unwrap();
        assert!(matches!(read_verified(&path, "lifetime"), Err(SnapshotError::NotASnapshot)));
        fs::write(&path, b"no newline at all").unwrap();
        assert!(matches!(read_verified(&path, "lifetime"), Err(SnapshotError::NotASnapshot)));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn f64_bits_round_trip() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE, 1e308] {
            let token = f64_to_json(v);
            let parsed = crate::jsonio::parse_json(&token).unwrap();
            let back = json_to_f64(&parsed).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        let vals = vec![1.0 / 3.0, 2.0f64.sqrt(), -1e-300];
        let arr = f64_slice_to_json(&vals);
        let parsed = crate::jsonio::parse_json(&arr).unwrap();
        let back = json_to_f64_vec(&parsed).unwrap();
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
