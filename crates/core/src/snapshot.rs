//! Crash-safe run snapshots: the on-disk container for durable,
//! resumable long runs.
//!
//! A snapshot file is a single UTF-8 header line followed by an opaque
//! body (§5.0 of DESIGN.md):
//!
//! ```text
//! R2D3SNAP <version> <kind> <fnv1a64-of-body, 16 hex digits> <body-len>\n
//! <body bytes…>
//! ```
//!
//! * `version` — integer format version ([`SNAPSHOT_VERSION`]); readers
//!   accept the current version, migrate bodies one version back
//!   ([`OLDEST_MIGRATABLE_VERSION`]), and reject anything else with a
//!   typed error — they never guess.
//! * `kind` — what the body describes (`lifetime`, `campaign`,
//!   `shard`); resuming a lifetime run from a campaign snapshot is a
//!   typed error, not undefined behavior.
//! * digest/length — FNV-1a 64 over the exact body bytes plus the body
//!   byte count, so truncation and corruption are distinguishable.
//!
//! Writes are atomic: the file is assembled at `<path>.tmp`, fsynced,
//! then renamed over `<path>`, and the parent directory is fsynced so
//! the rename itself is durable. A crash mid-write leaves either the
//! previous snapshot or none — never a torn one. All I/O goes through
//! the [`crate::chaos::Vfs`] seam ([`write_atomic_with`] /
//! [`read_verified_with`]) so chaos tests can inject torn writes,
//! `ENOSPC` and crash points. Reads verify length then digest and return a typed
//! [`SnapshotError`] on any mismatch: **never a panic, never silent
//! reuse of corrupt state**.
//!
//! Bodies are JSON (parsed with [`crate::jsonio`]). Values that must
//! round-trip bit-exactly — `f64` accumulators, RNG state words,
//! digests — are serialized as hex strings of their bit patterns (see
//! [`f64_to_json`]/[`json_to_f64`]), which is what makes a resumed run
//! byte-identical to an uninterrupted one.

use crate::chaos::{RealFs, Vfs};
use crate::jsonio::{self, Value};
use std::fmt;
use std::io::Write;
use std::path::Path;

/// Current snapshot format version. Bump on any body-schema change.
///
/// History:
/// * **1** — initial container (kinds `lifetime`, `campaign`, `shard`).
/// * **2** — adds the `job` manifest kind for the serve daemon's durable
///   job store. The v1 kinds' body schemas are unchanged, so v1
///   containers migrate losslessly (see [`read_verified`]).
pub const SNAPSHOT_VERSION: u32 = 2;

/// Oldest snapshot version [`read_verified`] can still migrate forward.
/// The window is exactly one version (N−1): anything older is refused
/// with [`SnapshotError::UnsupportedMigration`] instead of a guess.
pub const OLDEST_MIGRATABLE_VERSION: u32 = 1;

/// Magic token opening every snapshot header.
pub const SNAPSHOT_MAGIC: &str = "R2D3SNAP";

/// Typed rejection reasons for snapshot files. Every failure mode of
/// loading is represented here; loading never panics and never returns
/// partially-parsed state.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Filesystem-level failure (open, read, write, rename, fsync).
    Io(std::io::Error),
    /// The file does not start with a well-formed `R2D3SNAP` header.
    NotASnapshot,
    /// Written by an incompatible format version.
    Version {
        /// Version in the file's header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The snapshot is of a different run type (e.g. a campaign
    /// snapshot offered to `lifetime --resume`).
    Kind {
        /// Kind in the file's header.
        found: String,
        /// Kind the caller required.
        expected: &'static str,
    },
    /// The body is shorter than the header promised (torn copy,
    /// interrupted download, truncated file).
    Truncated {
        /// Body bytes the header declared.
        expected: usize,
        /// Body bytes actually present.
        found: usize,
    },
    /// The body digest does not match the header (bit rot, manual
    /// edit).
    DigestMismatch {
        /// Digest recorded in the header.
        expected: u64,
        /// Digest of the body as found.
        found: u64,
    },
    /// The body passed integrity checks but does not parse as the
    /// expected run state.
    Malformed(String),
    /// The snapshot is internally valid but belongs to a different run
    /// configuration (seed, scenario count, grid…) than the one being
    /// resumed.
    ConfigMismatch(String),
    /// The snapshot predates the migration window: this build migrates
    /// bodies forward from [`OLDEST_MIGRATABLE_VERSION`] only.
    UnsupportedMigration {
        /// Version in the file's header.
        found: u32,
        /// Oldest version this build can still migrate.
        oldest: u32,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::NotASnapshot => {
                write!(f, "not a snapshot file (missing {SNAPSHOT_MAGIC} header)")
            }
            SnapshotError::Version { found, expected } => {
                write!(f, "snapshot version {found} unsupported (this build reads {expected})")
            }
            SnapshotError::Kind { found, expected } => {
                write!(f, "snapshot is a \"{found}\" run, expected \"{expected}\"")
            }
            SnapshotError::Truncated { expected, found } => {
                write!(
                    f,
                    "snapshot truncated: header declares {expected} body bytes, {found} present"
                )
            }
            SnapshotError::DigestMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot digest mismatch: header says {expected:016x}, body hashes to {found:016x}"
                )
            }
            SnapshotError::Malformed(msg) => write!(f, "snapshot body malformed: {msg}"),
            SnapshotError::ConfigMismatch(msg) => {
                write!(f, "snapshot belongs to a different run: {msg}")
            }
            SnapshotError::UnsupportedMigration { found, oldest } => {
                write!(
                    f,
                    "snapshot version {found} predates the migration window \
                     (this build migrates {oldest} and newer)"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64 over raw bytes — the same digest family the checkpoint
/// slots use, applied to the snapshot body.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes the bit pattern of an `f64` as a JSON hex-string token.
/// Exact for every value including negative zero, subnormals and
/// infinities; NaN payloads round-trip too.
#[must_use]
pub fn f64_to_json(v: f64) -> String {
    format!("\"{:x}\"", v.to_bits())
}

/// Reads back a value written by [`f64_to_json`].
pub(crate) fn json_to_f64(v: &Value) -> Result<f64, SnapshotError> {
    v.as_hex_u64()
        .map(f64::from_bits)
        .ok_or_else(|| SnapshotError::Malformed("expected f64 bit-pattern hex string".into()))
}

/// Renders a slice of `f64`s as a JSON array of bit-pattern hex strings.
#[must_use]
pub fn f64_slice_to_json(values: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&f64_to_json(*v));
    }
    out.push(']');
    out
}

/// Reads back an array written by [`f64_slice_to_json`].
pub(crate) fn json_to_f64_vec(v: &Value) -> Result<Vec<f64>, SnapshotError> {
    v.as_arr()
        .ok_or_else(|| SnapshotError::Malformed("expected array of f64 bit patterns".into()))?
        .iter()
        .map(json_to_f64)
        .collect()
}

/// Reads a required field out of a JSON object body.
pub(crate) fn field<'a>(obj: &'a Value, key: &str) -> Result<&'a Value, SnapshotError> {
    obj.get(key).ok_or_else(|| SnapshotError::Malformed(format!("missing field \"{key}\"")))
}

/// Parses a snapshot body as JSON, mapping parse failures to
/// [`SnapshotError::Malformed`].
pub(crate) fn parse_body(body: &str) -> Result<Value, SnapshotError> {
    jsonio::parse_json(body).map_err(SnapshotError::Malformed)
}

/// Atomically writes a snapshot through the real filesystem — see
/// [`write_atomic_with`].
pub fn write_atomic(path: &Path, kind: &str, body: &[u8]) -> Result<(), SnapshotError> {
    write_atomic_with(&RealFs, path, kind, body)
}

/// Atomically writes a snapshot through a [`Vfs`]: header + `body`
/// assembled at `<path>.tmp`, fsynced, renamed over `path`, and the
/// parent directory fsynced — *mandatory*, because a crash after the
/// rename but before the directory sync can lose the file entirely
/// (the entry was never durable). A crash at any point leaves the
/// previous snapshot (or nothing), never a torn one.
pub fn write_atomic_with(
    vfs: &dyn Vfs,
    path: &Path,
    kind: &str,
    body: &[u8],
) -> Result<(), SnapshotError> {
    let digest = fnv1a64(body);
    let header =
        format!("{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION} {kind} {digest:016x} {}\n", body.len());

    let tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    let mut file = vfs.create(&tmp)?;
    file.write_all(header.as_bytes())?;
    file.write_all(body)?;
    file.sync_all()?;
    drop(file);
    vfs.rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        vfs.sync_dir(dir)?;
    }
    Ok(())
}

/// Migrates a verified body from `version` up to [`SNAPSHOT_VERSION`],
/// one step at a time. Each step is a total function of (kind, body):
/// it either produces a valid next-version body or a typed error.
fn migrate(version: u32, kind: &str, mut body: String) -> Result<String, SnapshotError> {
    let mut v = version;
    while v < SNAPSHOT_VERSION {
        body = match v {
            // v1 → v2: the `job` kind was introduced; the pre-existing
            // kinds' body schemas are unchanged. A v1 container claiming
            // to be a `job` manifest cannot exist, so it is malformed,
            // not migratable.
            1 => {
                if kind == "job" {
                    return Err(SnapshotError::Malformed(
                        "\"job\" manifests do not exist in snapshot version 1".into(),
                    ));
                }
                body
            }
            _ => unreachable!("no migration step registered for version {v}"),
        };
        v += 1;
    }
    Ok(body)
}

/// Reads and verifies a snapshot of the given `kind`, returning the body
/// as a string. Verifies, in order: magic/header shape, version (newer
/// than this build → [`SnapshotError::Version`]; older than
/// [`OLDEST_MIGRATABLE_VERSION`] → [`SnapshotError::UnsupportedMigration`]),
/// kind, declared length (→ [`SnapshotError::Truncated`]), digest
/// (→ [`SnapshotError::DigestMismatch`]). Bodies from versions inside
/// the migration window are migrated forward after integrity checks.
pub fn read_verified(path: &Path, kind: &'static str) -> Result<String, SnapshotError> {
    read_verified_with(&RealFs, path, kind)
}

/// [`read_verified`] through a [`Vfs`] — the seam chaos tests inject
/// torn files and crash-rolled-back state through.
pub fn read_verified_with(
    vfs: &dyn Vfs,
    path: &Path,
    kind: &'static str,
) -> Result<String, SnapshotError> {
    let raw = vfs.read(path)?;
    let newline = raw.iter().position(|&b| b == b'\n').ok_or(SnapshotError::NotASnapshot)?;
    let header = std::str::from_utf8(&raw[..newline]).map_err(|_| SnapshotError::NotASnapshot)?;
    let mut parts = header.split(' ');
    let (magic, version, found_kind, digest, len) = match (
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
    ) {
        (Some(m), Some(v), Some(k), Some(d), Some(l), None) => (m, v, k, d, l),
        _ => return Err(SnapshotError::NotASnapshot),
    };
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::NotASnapshot);
    }
    let version: u32 = version.parse().map_err(|_| SnapshotError::NotASnapshot)?;
    if version > SNAPSHOT_VERSION {
        return Err(SnapshotError::Version { found: version, expected: SNAPSHOT_VERSION });
    }
    if version < OLDEST_MIGRATABLE_VERSION {
        return Err(SnapshotError::UnsupportedMigration {
            found: version,
            oldest: OLDEST_MIGRATABLE_VERSION,
        });
    }
    if found_kind != kind {
        return Err(SnapshotError::Kind { found: found_kind.to_string(), expected: kind });
    }
    let expected_digest =
        u64::from_str_radix(digest, 16).map_err(|_| SnapshotError::NotASnapshot)?;
    let expected_len: usize = len.parse().map_err(|_| SnapshotError::NotASnapshot)?;

    let body = &raw[newline + 1..];
    if body.len() != expected_len {
        return Err(SnapshotError::Truncated { expected: expected_len, found: body.len() });
    }
    let found_digest = fnv1a64(body);
    if found_digest != expected_digest {
        return Err(SnapshotError::DigestMismatch {
            expected: expected_digest,
            found: found_digest,
        });
    }
    let body = String::from_utf8(body.to_vec())
        .map_err(|_| SnapshotError::Malformed("body is not UTF-8".into()))?;
    migrate(version, kind, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("r2d3-snapshot-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trips_body_exactly() {
        let path = tmp_path("roundtrip");
        let body = br#"{"cursor": 7, "acc": ["3ff0000000000000"]}"#;
        write_atomic(&path, "lifetime", body).unwrap();
        let read = read_verified(&path, "lifetime").unwrap();
        assert_eq!(read.as_bytes(), body);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_kind_is_typed() {
        let path = tmp_path("kind");
        write_atomic(&path, "campaign", b"{}").unwrap();
        match read_verified(&path, "lifetime") {
            Err(SnapshotError::Kind { found, expected }) => {
                assert_eq!(found, "campaign");
                assert_eq!(expected, "lifetime");
            }
            other => panic!("expected Kind error, got {other:?}"),
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_and_corruption_are_distinguished() {
        let path = tmp_path("corrupt");
        write_atomic(&path, "shard", b"0123456789").unwrap();
        let full = fs::read(&path).unwrap();

        // Truncated body: length check fires before the digest check.
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(matches!(
            read_verified(&path, "shard"),
            Err(SnapshotError::Truncated { expected: 10, found: 7 })
        ));

        // Same length, one bit flipped: digest check fires.
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(read_verified(&path, "shard"), Err(SnapshotError::DigestMismatch { .. })));

        // Version bump: rejected before looking at the body.
        let bumped = String::from_utf8(full).unwrap().replacen(
            &format!("{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION} "),
            &format!("{SNAPSHOT_MAGIC} {} ", SNAPSHOT_VERSION + 1),
            1,
        );
        fs::write(&path, bumped).unwrap();
        assert!(matches!(
            read_verified(&path, "shard"),
            Err(SnapshotError::Version { found, .. }) if found == SNAPSHOT_VERSION + 1
        ));

        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_containers_migrate_forward() {
        let path = tmp_path("migrate-v1");
        let body = br#"{"cursor": 3}"#;
        write_atomic(&path, "campaign", body).unwrap();
        // Rewrite the header as version 1; the digest covers only the
        // body, so the container stays internally consistent.
        let v1 = fs::read_to_string(&path).unwrap().replacen(
            &format!("{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION} "),
            &format!("{SNAPSHOT_MAGIC} {OLDEST_MIGRATABLE_VERSION} "),
            1,
        );
        fs::write(&path, v1).unwrap();
        let read = read_verified(&path, "campaign").unwrap();
        assert_eq!(read.as_bytes(), body);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_job_manifest_is_malformed_not_migrated() {
        let path = tmp_path("migrate-v1-job");
        write_atomic(&path, "job", b"{}").unwrap();
        let v1 = fs::read_to_string(&path).unwrap().replacen(
            &format!("{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION} "),
            &format!("{SNAPSHOT_MAGIC} {OLDEST_MIGRATABLE_VERSION} "),
            1,
        );
        fs::write(&path, v1).unwrap();
        assert!(matches!(read_verified(&path, "job"), Err(SnapshotError::Malformed(_))));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pre_window_versions_are_unsupported() {
        let path = tmp_path("migrate-v0");
        write_atomic(&path, "campaign", b"{}").unwrap();
        let v0 = fs::read_to_string(&path).unwrap().replacen(
            &format!("{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION} "),
            &format!("{SNAPSHOT_MAGIC} 0 "),
            1,
        );
        fs::write(&path, v0).unwrap();
        assert!(matches!(
            read_verified(&path, "campaign"),
            Err(SnapshotError::UnsupportedMigration {
                found: 0,
                oldest: OLDEST_MIGRATABLE_VERSION
            })
        ));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_is_not_a_snapshot() {
        let path = tmp_path("garbage");
        fs::write(&path, b"hello world\nnot a snapshot").unwrap();
        assert!(matches!(read_verified(&path, "lifetime"), Err(SnapshotError::NotASnapshot)));
        fs::write(&path, b"no newline at all").unwrap();
        assert!(matches!(read_verified(&path, "lifetime"), Err(SnapshotError::NotASnapshot)));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_atomic_survives_crash_after_rename() {
        // Regression for the classic unsynced-dir bug: under strict
        // crash semantics (MemFs), a tmp+fsync+rename whose directory
        // is never fsynced loses the file on power loss. write_atomic
        // must sync the parent directory, so the snapshot survives.
        use crate::chaos::MemFs;
        let fs = MemFs::new();
        let dir = Path::new("/state");
        fs.create_dir_all(dir).unwrap();
        fs.sync_dir(dir).unwrap();
        let path = dir.join("run.snap");
        write_atomic_with(&fs, &path, "lifetime", b"{\"cursor\": 9}").unwrap();
        fs.crash();
        let body = read_verified_with(&fs, &path, "lifetime").unwrap();
        assert_eq!(body, "{\"cursor\": 9}");
        assert!(!fs.exists(&dir.join("run.snap.tmp")), "tmp file must not survive");
    }

    #[test]
    fn crash_mid_write_leaves_previous_snapshot() {
        use crate::chaos::{FaultPlan, FaultyFs};
        let fs = FaultyFs::new(FaultPlan::clean());
        let dir = Path::new("/state");
        fs.create_dir_all(dir).unwrap();
        fs.sync_dir(dir).unwrap();
        let path = dir.join("run.snap");
        write_atomic_with(&fs, &path, "campaign", b"{\"gen\": 1}").unwrap();

        // Crash somewhere inside the second write's op sequence: the
        // write fails with a typed error and, after restart, the
        // previous snapshot reads back intact.
        fs.set_plan(FaultPlan { crash_at: Some(fs.op_count() + 3), ..FaultPlan::clean() });
        let err = write_atomic_with(&fs, &path, "campaign", b"{\"gen\": 2}").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(ref e) if crate::chaos::is_injected_crash(e)));
        fs.restart();
        let body = read_verified_with(&fs, &path, "campaign").unwrap();
        assert_eq!(body, "{\"gen\": 1}");
    }

    #[test]
    fn f64_bits_round_trip() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE, 1e308] {
            let token = f64_to_json(v);
            let parsed = crate::jsonio::parse_json(&token).unwrap();
            let back = json_to_f64(&parsed).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        let vals = vec![1.0 / 3.0, 2.0f64.sqrt(), -1e-300];
        let arr = f64_slice_to_json(&vals);
        let parsed = crate::jsonio::parse_json(&arr).unwrap();
        let back = json_to_f64_vec(&parsed).unwrap();
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
