//! Job specifications: the one description of runnable work shared by
//! the daemon, the socket clients and the batch CLI.
//!
//! A [`JobSpec`] is always valid by construction: the builders and the
//! wire decoder both funnel through [`JobSpec::validate`], so anything
//! holding a `JobSpec` can execute it without re-checking. The
//! `to_config()` conversions reproduce the exact configurations the
//! batch CLI commands assemble, which is the foundation of the serve
//! determinism contract (served report == batch report, byte-compared).

use super::ApiError;
use crate::campaign::{CampaignConfig, KindId, SubstrateKind};
use crate::lifetime::LifetimeConfig;
use crate::policy::PolicyKind;
use crate::EngineError;
use r2d3_isa::kernels::KernelKind;
use r2d3_isa::Unit;
use r2d3_netlist::stages::StageNetlist;
use r2d3_thermal::GridConfig;
use std::fmt;

/// Daemon-assigned job identifier; renders as fixed-width hex (the form
/// used on the wire, in job directory names and by the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl JobId {
    /// Parses the wire/CLI form (lowercase hex, as printed by `Display`).
    ///
    /// # Errors
    ///
    /// [`ApiError::Invalid`] when the token is not hex.
    pub fn parse(token: &str) -> Result<JobId, ApiError> {
        u64::from_str_radix(token, 16)
            .map(JobId)
            .map_err(|_| ApiError::invalid("job", format!("not a job id: \"{token}\"")))
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", self.0)
    }
}

/// A validated, executable job description plus its scheduling priority.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Scheduling priority *within one client's queue* (higher runs
    /// first; fairness across clients is governed by quotas, which
    /// priority never overrides).
    pub priority: u8,
    /// What to run.
    pub kind: JobKind,
}

/// The three runnable job families.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// Adversarial fault-injection sweep (`r2d3 campaign`).
    Campaign(CampaignSpec),
    /// NBTI-aware lifetime trajectory (`r2d3 lifetime`).
    Lifetime(LifetimeSpec),
    /// Single permanent fault, watch the engine repair it
    /// (`r2d3 inject`).
    Inject(InjectSpec),
}

/// Campaign job parameters — the serializable subset of
/// [`CampaignConfig`] plus a shard count for the worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Master scenario seed.
    pub seed: u64,
    /// Scenarios per substrate.
    pub scenarios: usize,
    /// Substrates to sweep, in report order.
    pub substrates: Vec<SubstrateKind>,
    /// Fault kinds the generator cycles through.
    pub kinds: Vec<KindId>,
    /// Optional path to an imported core netlist (`campaign --core`);
    /// resolved by the executing host when the job runs.
    pub core: Option<String>,
    /// Units the job is split into (1 = unsharded). Each unit runs one
    /// [`crate::campaign::ShardSpec`] partition; the daemon merges them
    /// with [`crate::campaign::merge_shards`].
    pub shards: usize,
}

/// Lifetime job parameters, mirroring `r2d3 lifetime`'s flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifetimeSpec {
    /// Rotation policy under evaluation.
    pub policy: PolicyKind,
    /// Months to simulate.
    pub months: usize,
    /// Workload kernel (sets demand and activity weight).
    pub workload: KernelKind,
    /// RNG seed.
    pub seed: u64,
}

/// Inject job parameters, mirroring `r2d3 inject`'s arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectSpec {
    /// Victim pipeline unit.
    pub unit: Unit,
    /// Victim stack layer.
    pub layer: usize,
    /// Output bit the fault sticks at 1.
    pub bit: u8,
    /// Substrate to drive (never `Both`; one system per job).
    pub substrate: SubstrateKind,
    /// Workload / fault derivation seed.
    pub seed: u64,
    /// Engine epochs to run before giving up on a diagnosis.
    pub epochs: u64,
}

impl JobSpec {
    /// Starts a campaign job description with `r2d3 campaign` defaults.
    #[must_use]
    pub fn campaign() -> CampaignJobBuilder {
        CampaignJobBuilder {
            spec: CampaignSpec {
                seed: 0xCA3A,
                scenarios: 256,
                substrates: vec![SubstrateKind::Behavioral, SubstrateKind::Netlist],
                kinds: KindId::ALL.to_vec(),
                core: None,
                shards: 1,
            },
            priority: 0,
        }
    }

    /// Starts a lifetime job description with `r2d3 lifetime` defaults.
    #[must_use]
    pub fn lifetime() -> LifetimeJobBuilder {
        LifetimeJobBuilder {
            spec: LifetimeSpec {
                policy: PolicyKind::Pro,
                months: 96,
                workload: KernelKind::Gemm,
                seed: 0x52D3,
            },
            priority: 0,
        }
    }

    /// Starts an inject job description for a victim stage, with
    /// `r2d3 inject` defaults for everything else.
    #[must_use]
    pub fn inject(unit: Unit, layer: usize) -> InjectJobBuilder {
        InjectJobBuilder {
            spec: InjectSpec {
                unit,
                layer,
                bit: 0,
                substrate: SubstrateKind::Behavioral,
                seed: 7,
                epochs: 64,
            },
            priority: 0,
        }
    }

    /// Stable job-family token (`campaign` / `lifetime` / `inject`).
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match &self.kind {
            JobKind::Campaign(_) => "campaign",
            JobKind::Lifetime(_) => "lifetime",
            JobKind::Inject(_) => "inject",
        }
    }

    /// Schedulable units the job splits into (campaign shards; 1
    /// otherwise).
    #[must_use]
    pub fn units(&self) -> u64 {
        match &self.kind {
            JobKind::Campaign(c) => c.shards as u64,
            JobKind::Lifetime(_) | JobKind::Inject(_) => 1,
        }
    }

    /// Total progress steps the job will report (observer granularity:
    /// scenarios × substrates for campaigns, month-steps × replicas for
    /// lifetime runs, 1 for injects).
    #[must_use]
    pub fn progress_total(&self) -> u64 {
        match &self.kind {
            JobKind::Campaign(c) => (c.scenarios * c.substrates.len()) as u64,
            JobKind::Lifetime(l) => (l.months * LIFETIME_REPLICAS) as u64,
            JobKind::Inject(_) => 1,
        }
    }

    /// Checks every invariant the builders and the wire decoder enforce.
    ///
    /// # Errors
    ///
    /// [`ApiError::Invalid`] naming the offending field.
    pub fn validate(&self) -> Result<(), ApiError> {
        match &self.kind {
            JobKind::Campaign(c) => c.validate(),
            JobKind::Lifetime(l) => l.validate(),
            JobKind::Inject(i) => i.validate(),
        }
    }
}

/// Replicas the lifetime CLI path (and therefore lifetime jobs) runs.
const LIFETIME_REPLICAS: usize = 6;

impl CampaignSpec {
    fn validate(&self) -> Result<(), ApiError> {
        if self.scenarios == 0 {
            return Err(ApiError::invalid("scenarios", "must be at least 1"));
        }
        if self.substrates.is_empty() {
            return Err(ApiError::invalid("substrates", "must name at least one substrate"));
        }
        if self.substrates.len() > 2
            || (self.substrates.len() == 2 && self.substrates[0] == self.substrates[1])
        {
            return Err(ApiError::invalid("substrates", "substrates must be distinct"));
        }
        if self.kinds.is_empty() {
            return Err(ApiError::invalid("kinds", "must name at least one fault kind"));
        }
        for (i, k) in self.kinds.iter().enumerate() {
            if self.kinds[..i].contains(k) {
                return Err(ApiError::invalid(
                    "kinds",
                    format!("duplicate fault kind \"{}\"", k.name()),
                ));
            }
        }
        if self.shards == 0 || self.shards > self.scenarios {
            return Err(ApiError::invalid(
                "shards",
                format!("must be in 1..={} (the scenario count)", self.scenarios),
            ));
        }
        Ok(())
    }

    /// Scenario-steps (scenarios × substrates) owned by 0-based shard
    /// `unit` of this spec's `shards`-way partition — the unit's
    /// progress denominator, computable without loading the core file.
    #[must_use]
    pub fn unit_steps(&self, unit: u64) -> u64 {
        let owned = (0..self.scenarios).filter(|id| id % self.shards == unit as usize).count();
        (owned * self.substrates.len()) as u64
    }

    /// Builds the exact [`CampaignConfig`] the batch CLI assembles for
    /// these parameters (loading `core` from disk when set), so a job
    /// run through any path produces byte-identical reports.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] when the core file cannot be read
    /// or parsed.
    pub fn to_config(&self) -> Result<CampaignConfig, EngineError> {
        let netlist_stages = self.core.as_deref().map(load_core_stages).transpose()?;
        Ok(CampaignConfig {
            seed: self.seed,
            scenarios_per_substrate: self.scenarios,
            substrates: self.substrates.clone(),
            netlist_stages,
            kinds: self.kinds.clone(),
            ..Default::default()
        })
    }
}

impl LifetimeSpec {
    fn validate(&self) -> Result<(), ApiError> {
        if self.months == 0 {
            return Err(ApiError::invalid("months", "must be at least 1"));
        }
        Ok(())
    }

    /// Builds the exact [`LifetimeConfig`] the batch CLI assembles for
    /// these parameters.
    #[must_use]
    pub fn to_config(&self) -> LifetimeConfig {
        LifetimeConfig {
            months: self.months,
            replicas: LIFETIME_REPLICAS,
            mttf_trials: 200,
            seed: self.seed,
            grid: GridConfig { nx: 8, ny: 6, ..Default::default() },
            ..LifetimeConfig::new(
                self.policy,
                self.workload.core_demand_fraction(),
                self.workload.activity_weight(),
            )
        }
    }
}

impl InjectSpec {
    fn validate(&self) -> Result<(), ApiError> {
        if self.layer >= 8 {
            return Err(ApiError::invalid("layer", "must be in 0..8"));
        }
        if self.epochs == 0 {
            return Err(ApiError::invalid("epochs", "must be at least 1"));
        }
        Ok(())
    }
}

// --- builders ------------------------------------------------------

/// Fallible builder for campaign jobs (see [`JobSpec::campaign`]).
#[derive(Debug, Clone)]
pub struct CampaignJobBuilder {
    spec: CampaignSpec,
    priority: u8,
}

impl CampaignJobBuilder {
    /// Master scenario seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Scenarios per substrate.
    #[must_use]
    pub fn scenarios(mut self, scenarios: usize) -> Self {
        self.spec.scenarios = scenarios;
        self
    }

    /// Substrates to sweep, in report order.
    #[must_use]
    pub fn substrates(mut self, substrates: Vec<SubstrateKind>) -> Self {
        self.spec.substrates = substrates;
        self
    }

    /// Fault kinds to sweep.
    #[must_use]
    pub fn kinds(mut self, kinds: Vec<KindId>) -> Self {
        self.spec.kinds = kinds;
        self
    }

    /// Path to an imported core netlist for the gate-level substrate.
    #[must_use]
    pub fn core(mut self, path: impl Into<String>) -> Self {
        self.spec.core = Some(path.into());
        self
    }

    /// Units to split the job into (serve worker parallelism).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.spec.shards = shards;
        self
    }

    /// Scheduling priority within the submitting client's queue.
    #[must_use]
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Validates and seals the spec.
    ///
    /// # Errors
    ///
    /// [`ApiError::Invalid`] naming the offending field.
    pub fn build(self) -> Result<JobSpec, ApiError> {
        let spec = JobSpec { priority: self.priority, kind: JobKind::Campaign(self.spec) };
        spec.validate()?;
        Ok(spec)
    }
}

/// Fallible builder for lifetime jobs (see [`JobSpec::lifetime`]).
#[derive(Debug, Clone)]
pub struct LifetimeJobBuilder {
    spec: LifetimeSpec,
    priority: u8,
}

impl LifetimeJobBuilder {
    /// Rotation policy under evaluation.
    #[must_use]
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.spec.policy = policy;
        self
    }

    /// Months to simulate.
    #[must_use]
    pub fn months(mut self, months: usize) -> Self {
        self.spec.months = months;
        self
    }

    /// Workload kernel.
    #[must_use]
    pub fn workload(mut self, workload: KernelKind) -> Self {
        self.spec.workload = workload;
        self
    }

    /// RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Scheduling priority within the submitting client's queue.
    #[must_use]
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Validates and seals the spec.
    ///
    /// # Errors
    ///
    /// [`ApiError::Invalid`] naming the offending field.
    pub fn build(self) -> Result<JobSpec, ApiError> {
        let spec = JobSpec { priority: self.priority, kind: JobKind::Lifetime(self.spec) };
        spec.validate()?;
        Ok(spec)
    }
}

/// Fallible builder for inject jobs (see [`JobSpec::inject`]).
#[derive(Debug, Clone)]
pub struct InjectJobBuilder {
    spec: InjectSpec,
    priority: u8,
}

impl InjectJobBuilder {
    /// Output bit the fault sticks at 1.
    #[must_use]
    pub fn bit(mut self, bit: u8) -> Self {
        self.spec.bit = bit;
        self
    }

    /// Substrate to drive.
    #[must_use]
    pub fn substrate(mut self, substrate: SubstrateKind) -> Self {
        self.spec.substrate = substrate;
        self
    }

    /// Workload / fault derivation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Engine epochs to run before giving up.
    #[must_use]
    pub fn epochs(mut self, epochs: u64) -> Self {
        self.spec.epochs = epochs;
        self
    }

    /// Scheduling priority within the submitting client's queue.
    #[must_use]
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Validates and seals the spec.
    ///
    /// # Errors
    ///
    /// [`ApiError::Invalid`] naming the offending field.
    pub fn build(self) -> Result<JobSpec, ApiError> {
        let spec = JobSpec { priority: self.priority, kind: JobKind::Inject(self.spec) };
        spec.validate()?;
        Ok(spec)
    }
}

// --- wire tokens ---------------------------------------------------
//
// Spelled independently of any `Display` impl so protocol stability
// never hinges on human-facing formatting.

/// Wire token of a rotation policy (`norecon|static|lite|pro`).
#[must_use]
pub fn policy_token(policy: PolicyKind) -> &'static str {
    match policy {
        PolicyKind::NoRecon => "norecon",
        PolicyKind::Static => "static",
        PolicyKind::Lite => "lite",
        PolicyKind::Pro => "pro",
    }
}

/// Parses a [`policy_token`].
///
/// # Errors
///
/// [`ApiError::UnknownKind`] for anything else.
pub fn parse_policy(token: &str) -> Result<PolicyKind, ApiError> {
    match token {
        "norecon" => Ok(PolicyKind::NoRecon),
        "static" => Ok(PolicyKind::Static),
        "lite" => Ok(PolicyKind::Lite),
        "pro" => Ok(PolicyKind::Pro),
        other => Err(ApiError::UnknownKind(other.to_string())),
    }
}

/// Wire token of a workload kernel (`gemm|gemv|fft`).
#[must_use]
pub fn workload_token(workload: KernelKind) -> &'static str {
    match workload {
        KernelKind::Gemm => "gemm",
        KernelKind::Gemv => "gemv",
        KernelKind::Fft => "fft",
    }
}

/// Parses a [`workload_token`].
///
/// # Errors
///
/// [`ApiError::UnknownKind`] for anything else.
pub fn parse_workload(token: &str) -> Result<KernelKind, ApiError> {
    match token {
        "gemm" => Ok(KernelKind::Gemm),
        "gemv" => Ok(KernelKind::Gemv),
        "fft" => Ok(KernelKind::Fft),
        other => Err(ApiError::UnknownKind(other.to_string())),
    }
}

/// Wire token of a pipeline unit (its canonical name, e.g. `EXU`).
#[must_use]
pub fn unit_token(unit: Unit) -> &'static str {
    unit.name()
}

/// Parses a [`unit_token`] case-insensitively.
///
/// # Errors
///
/// [`ApiError::UnknownKind`] for anything else.
pub fn parse_unit(token: &str) -> Result<Unit, ApiError> {
    Unit::ALL
        .iter()
        .copied()
        .find(|u| u.name().eq_ignore_ascii_case(token))
        .ok_or_else(|| ApiError::UnknownKind(token.to_string()))
}

pub(crate) fn substrate_token(kind: SubstrateKind) -> &'static str {
    kind.name()
}

pub(crate) fn parse_substrate_kind(token: &str) -> Result<SubstrateKind, ApiError> {
    match token {
        "behavioral" => Ok(SubstrateKind::Behavioral),
        "netlist" => Ok(SubstrateKind::Netlist),
        other => Err(ApiError::UnknownKind(other.to_string())),
    }
}

/// Loads a `--core` file — either the text netlist format emitted by
/// `r2d3 import` (used as-is) or a raw Yosys-JSON core (which gets the
/// full import pipeline: validate + rewrite) — and maps the one core
/// onto every pipeline-unit stage. Shared by the batch CLI and the
/// serve workers so both resolve a job's `core` path identically.
///
/// # Errors
///
/// [`EngineError::InvalidConfig`] describing the read or parse failure.
pub fn load_core_stages(path: &str) -> Result<Vec<StageNetlist>, EngineError> {
    // Read-only user input, not durable state: stays off the chaos Vfs
    // seam on purpose (a failed read is a typed config error up front).
    let text = std::fs::read_to_string(path)
        .map_err(|e| EngineError::InvalidConfig(format!("{path}: {e}")))?;
    let netlist = if text.trim_start().starts_with('{') {
        let core = r2d3_netlist::parse_yosys_json(&text, None)
            .map_err(|e| EngineError::InvalidConfig(format!("{path}: {e}")))?;
        r2d3_netlist::rewrite(&core.netlist)
            .map_err(|e| EngineError::InvalidConfig(format!("{path}: {e}")))?
            .netlist
    } else {
        r2d3_netlist::text_parse(&text)
            .map_err(|e| EngineError::InvalidConfig(format!("{path}: {e}")))?
    };
    let core_outputs = netlist.outputs().len();
    Unit::ALL
        .iter()
        .map(|&u| {
            StageNetlist::from_netlist(u, netlist.clone(), core_outputs)
                .map_err(|e| EngineError::InvalidConfig(format!("{path}: {e}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_round_trip_through_display() {
        for v in [0u64, 42, 0xdead_beef, u64::MAX] {
            let id = JobId(v);
            assert_eq!(JobId::parse(&id.to_string()).unwrap(), id);
        }
        assert!(JobId::parse("zebra").is_err());
    }

    #[test]
    fn builders_validate_their_specs() {
        assert!(JobSpec::campaign().scenarios(9).shards(3).build().is_ok());
        assert!(matches!(
            JobSpec::campaign().scenarios(0).build(),
            Err(ApiError::Invalid { field, .. }) if field == "scenarios"
        ));
        assert!(matches!(
            JobSpec::campaign().scenarios(4).shards(5).build(),
            Err(ApiError::Invalid { field, .. }) if field == "shards"
        ));
        assert!(matches!(
            JobSpec::campaign().kinds(vec![]).build(),
            Err(ApiError::Invalid { field, .. }) if field == "kinds"
        ));
        assert!(matches!(
            JobSpec::lifetime().months(0).build(),
            Err(ApiError::Invalid { field, .. }) if field == "months"
        ));
        assert!(matches!(
            JobSpec::inject(Unit::Exu, 9).build(),
            Err(ApiError::Invalid { field, .. }) if field == "layer"
        ));
    }

    #[test]
    fn campaign_config_matches_batch_assembly() {
        let spec = JobSpec::campaign().seed(0xD00B).scenarios(9).build().unwrap();
        let JobKind::Campaign(c) = &spec.kind else { unreachable!() };
        let cfg = c.to_config().unwrap();
        let batch = CampaignConfig {
            seed: 0xD00B,
            scenarios_per_substrate: 9,
            substrates: vec![SubstrateKind::Behavioral, SubstrateKind::Netlist],
            netlist_stages: None,
            kinds: KindId::ALL.to_vec(),
            ..Default::default()
        };
        assert_eq!(format!("{cfg:?}"), format!("{batch:?}"));
    }

    #[test]
    fn unit_steps_partition_the_scenarios() {
        let spec = JobSpec::campaign().scenarios(9).shards(3).build().unwrap();
        let JobKind::Campaign(c) = &spec.kind else { unreachable!() };
        let total: u64 = (0..3).map(|u| c.unit_steps(u)).sum();
        assert_eq!(total, spec.progress_total());
    }

    #[test]
    fn wire_tokens_round_trip() {
        for p in PolicyKind::ALL {
            assert_eq!(parse_policy(policy_token(p)).unwrap(), p);
        }
        for w in KernelKind::ALL {
            assert_eq!(parse_workload(workload_token(w)).unwrap(), w);
        }
        for u in Unit::ALL {
            assert_eq!(parse_unit(unit_token(u)).unwrap(), u);
        }
        assert!(parse_policy("NoRecon").is_err(), "wire tokens are exact, not Display");
    }
}
