//! The versioned JSON-lines wire protocol.
//!
//! One document per line, every document stamped with
//! [`PROTO_VERSION`](super::PROTO_VERSION). Encoders are deterministic
//! single-line emitters in the [`crate::jsonio`] style — fixed field
//! order, no whitespace variance — so identical values always produce
//! identical bytes. Decoders are recursive-descent validators over the
//! [`crate::jsonio`] tree: any malformed input yields a typed
//! [`ApiError`], never a panic, and unknown `proto_version`s are
//! rejected outright rather than half-parsed.
//!
//! Full-range `u64` values (seeds, job ids) travel as lowercase hex
//! *strings* ([`crate::jsonio::hex_u64`]) so nothing is squeezed
//! through an `f64`. Free-text strings (client names, error messages)
//! are escaped by [`escape`], which maps non-ASCII and unsupported
//! control bytes to `?` — the hand-rolled parser is byte-oriented, so
//! the protocol deliberately restricts itself to ASCII.

use super::spec::{
    parse_policy, parse_substrate_kind, parse_unit, parse_workload, policy_token, substrate_token,
    unit_token, workload_token, CampaignSpec, InjectSpec, JobId, JobKind, JobSpec, LifetimeSpec,
};
use super::{ApiError, PROTO_VERSION};
use crate::campaign::KindId;
use crate::jsonio::{hex_u64, parse_json, Value};
use crate::telemetry::OverflowPolicy;
use std::fmt::Write as _;

// --- primitives ----------------------------------------------------

/// Escapes a free-text string for a wire document. Supported escapes
/// mirror the parser exactly (`\" \\ \n \t \r`); every other control
/// byte and all non-ASCII is replaced with `?` to keep round-trips
/// byte-exact through the byte-oriented parser.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if c.is_ascii() && !c.is_ascii_control() => out.push(c),
            _ => out.push('?'),
        }
    }
    out
}

fn check_version(v: &Value) -> Result<(), ApiError> {
    let found = v
        .get("proto_version")
        .ok_or_else(|| ApiError::missing("proto_version"))?
        .as_u64()
        .ok_or_else(|| ApiError::invalid("proto_version", "must be an integer"))?;
    if found as u32 != PROTO_VERSION {
        return Err(ApiError::Version { found: found as u32 });
    }
    Ok(())
}

fn need<'a>(v: &'a Value, field: &str) -> Result<&'a Value, ApiError> {
    match v.get(field) {
        Some(Value::Null) | None => Err(ApiError::missing(field)),
        Some(inner) => Ok(inner),
    }
}

fn need_str<'a>(v: &'a Value, field: &str) -> Result<&'a str, ApiError> {
    need(v, field)?.as_str().ok_or_else(|| ApiError::invalid(field, "must be a string"))
}

fn need_u64(v: &Value, field: &str) -> Result<u64, ApiError> {
    need(v, field)?
        .as_u64()
        .ok_or_else(|| ApiError::invalid(field, "must be a non-negative integer"))
}

fn need_hex(v: &Value, field: &str) -> Result<u64, ApiError> {
    need(v, field)?.as_hex_u64().ok_or_else(|| ApiError::invalid(field, "must be a hex string"))
}

fn need_job(v: &Value, field: &str) -> Result<JobId, ApiError> {
    let token = need_str(v, field)?;
    JobId::parse(token).map_err(|_| ApiError::invalid(field, format!("not a job id: \"{token}\"")))
}

fn parse_doc(line: &str) -> Result<Value, ApiError> {
    let v = parse_json(line.trim()).map_err(ApiError::Syntax)?;
    check_version(&v)?;
    Ok(v)
}

/// Wire token of a watch overflow policy (`block|drop`).
#[must_use]
pub fn overflow_token(policy: OverflowPolicy) -> &'static str {
    match policy {
        OverflowPolicy::Block => "block",
        OverflowPolicy::Drop => "drop",
    }
}

/// Parses an [`overflow_token`].
///
/// # Errors
///
/// [`ApiError::UnknownKind`] for anything else.
pub fn parse_overflow(token: &str) -> Result<OverflowPolicy, ApiError> {
    match token {
        "block" => Ok(OverflowPolicy::Block),
        "drop" => Ok(OverflowPolicy::Drop),
        other => Err(ApiError::UnknownKind(other.to_string())),
    }
}

// --- job specs -----------------------------------------------------

/// Encodes a [`JobSpec`] as one standalone wire document (also embedded
/// verbatim inside submit requests and job manifests).
#[must_use]
pub fn encode_spec(spec: &JobSpec) -> String {
    let mut s = format!(
        "{{\"proto_version\":{PROTO_VERSION},\"kind\":\"{}\",\"priority\":{}",
        spec.kind_name(),
        spec.priority
    );
    match &spec.kind {
        JobKind::Campaign(c) => {
            let _ = write!(s, ",\"seed\":{},\"scenarios\":{}", hex_u64(c.seed), c.scenarios);
            s.push_str(",\"substrates\":[");
            for (i, sub) in c.substrates.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\"", substrate_token(*sub));
            }
            s.push_str("],\"kinds\":[");
            for (i, k) in c.kinds.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\"", k.name());
            }
            s.push_str("],\"core\":");
            match &c.core {
                Some(path) => {
                    let _ = write!(s, "\"{}\"", escape(path));
                }
                None => s.push_str("null"),
            }
            let _ = write!(s, ",\"shards\":{}", c.shards);
        }
        JobKind::Lifetime(l) => {
            let _ = write!(
                s,
                ",\"policy\":\"{}\",\"months\":{},\"workload\":\"{}\",\"seed\":{}",
                policy_token(l.policy),
                l.months,
                workload_token(l.workload),
                hex_u64(l.seed)
            );
        }
        JobKind::Inject(i) => {
            let _ = write!(
                s,
                ",\"unit\":\"{}\",\"layer\":{},\"bit\":{},\"substrate\":\"{}\",\"seed\":{},\"epochs\":{}",
                unit_token(i.unit),
                i.layer,
                i.bit,
                substrate_token(i.substrate),
                hex_u64(i.seed),
                i.epochs
            );
        }
    }
    s.push('}');
    s
}

/// Decodes and validates a [`JobSpec`] from a parsed wire object.
/// (Crate-internal: the tree type is; external callers use
/// [`decode_spec`] on whole lines.)
pub(crate) fn decode_spec_value(v: &Value) -> Result<JobSpec, ApiError> {
    check_version(v)?;
    let priority_raw = need_u64(v, "priority")?;
    let priority = u8::try_from(priority_raw)
        .map_err(|_| ApiError::invalid("priority", "must fit in 0..=255"))?;
    let kind = match need_str(v, "kind")? {
        "campaign" => {
            let mut substrates = Vec::new();
            for (i, sub) in need(v, "substrates")?
                .as_arr()
                .ok_or_else(|| ApiError::invalid("substrates", "must be an array"))?
                .iter()
                .enumerate()
            {
                let token = sub.as_str().ok_or_else(|| {
                    ApiError::invalid("substrates", format!("entry {i} must be a string"))
                })?;
                substrates.push(parse_substrate_kind(token)?);
            }
            let mut kinds = Vec::new();
            for (i, k) in need(v, "kinds")?
                .as_arr()
                .ok_or_else(|| ApiError::invalid("kinds", "must be an array"))?
                .iter()
                .enumerate()
            {
                let token = k.as_str().ok_or_else(|| {
                    ApiError::invalid("kinds", format!("entry {i} must be a string"))
                })?;
                kinds.push(
                    KindId::from_name(token)
                        .ok_or_else(|| ApiError::UnknownKind(token.to_string()))?,
                );
            }
            let core = match v.get("core") {
                Some(Value::Null) | None => None,
                Some(val) => Some(
                    val.as_str()
                        .ok_or_else(|| ApiError::invalid("core", "must be a string or null"))?
                        .to_string(),
                ),
            };
            JobKind::Campaign(CampaignSpec {
                seed: need_hex(v, "seed")?,
                scenarios: need_u64(v, "scenarios")? as usize,
                substrates,
                kinds,
                core,
                shards: need_u64(v, "shards")? as usize,
            })
        }
        "lifetime" => JobKind::Lifetime(LifetimeSpec {
            policy: parse_policy(need_str(v, "policy")?)?,
            months: need_u64(v, "months")? as usize,
            workload: parse_workload(need_str(v, "workload")?)?,
            seed: need_hex(v, "seed")?,
        }),
        "inject" => {
            let bit_raw = need_u64(v, "bit")?;
            JobKind::Inject(InjectSpec {
                unit: parse_unit(need_str(v, "unit")?)?,
                layer: need_u64(v, "layer")? as usize,
                bit: u8::try_from(bit_raw)
                    .map_err(|_| ApiError::invalid("bit", "must fit in 0..=255"))?,
                substrate: parse_substrate_kind(need_str(v, "substrate")?)?,
                seed: need_hex(v, "seed")?,
                epochs: need_u64(v, "epochs")?,
            })
        }
        other => return Err(ApiError::UnknownKind(other.to_string())),
    };
    let spec = JobSpec { priority, kind };
    spec.validate()?;
    Ok(spec)
}

/// Decodes a [`JobSpec`] from one wire line.
///
/// # Errors
///
/// Typed [`ApiError`]; see [`decode_spec_value`].
pub fn decode_spec(line: &str) -> Result<JobSpec, ApiError> {
    decode_spec_value(&parse_doc(line)?)
}

// --- requests ------------------------------------------------------

/// A client-to-daemon request, one per line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job for execution under a client identity.
    Submit {
        /// Quota-accounting identity of the submitter.
        client: String,
        /// The job to run.
        spec: JobSpec,
    },
    /// List one job's status, or every job's.
    Status {
        /// Specific job, or `None` for all.
        job: Option<JobId>,
    },
    /// Subscribe to a job's live event stream (history replayed first).
    Watch {
        /// Job to watch.
        job: JobId,
        /// What the daemon does when this subscriber falls behind.
        overflow: OverflowPolicy,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job to cancel.
        job: JobId,
    },
    /// Fetch a completed job's rendered report.
    Result {
        /// Job whose report to fetch.
        job: JobId,
    },
    /// Ask the daemon to stop accepting work and exit.
    Shutdown,
}

impl Request {
    /// Encodes the request as one wire line (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        let head = format!("{{\"proto_version\":{PROTO_VERSION}");
        match self {
            Request::Submit { client, spec } => {
                format!(
                    "{head},\"op\":\"submit\",\"client\":\"{}\",\"spec\":{}}}",
                    escape(client),
                    encode_spec(spec)
                )
            }
            Request::Status { job: Some(job) } => {
                format!("{head},\"op\":\"status\",\"job\":\"{job}\"}}")
            }
            Request::Status { job: None } => format!("{head},\"op\":\"status\",\"job\":null}}"),
            Request::Watch { job, overflow } => {
                format!(
                    "{head},\"op\":\"watch\",\"job\":\"{job}\",\"overflow\":\"{}\"}}",
                    overflow_token(*overflow)
                )
            }
            Request::Cancel { job } => format!("{head},\"op\":\"cancel\",\"job\":\"{job}\"}}"),
            Request::Result { job } => format!("{head},\"op\":\"result\",\"job\":\"{job}\"}}"),
            Request::Shutdown => format!("{head},\"op\":\"shutdown\"}}"),
        }
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// Typed [`ApiError`] on malformed JSON, version skew, unknown op
    /// or bad fields — the daemon turns these into error responses, so
    /// a hostile line can never panic or kill the connection handler.
    pub fn decode(line: &str) -> Result<Request, ApiError> {
        let v = parse_doc(line)?;
        match need_str(&v, "op")? {
            "submit" => Ok(Request::Submit {
                client: need_str(&v, "client")?.to_string(),
                spec: decode_spec_value(need(&v, "spec")?)?,
            }),
            "status" => Ok(Request::Status {
                job: match v.get("job") {
                    Some(Value::Null) | None => None,
                    Some(_) => Some(need_job(&v, "job")?),
                },
            }),
            "watch" => Ok(Request::Watch {
                job: need_job(&v, "job")?,
                overflow: parse_overflow(need_str(&v, "overflow")?)?,
            }),
            "cancel" => Ok(Request::Cancel { job: need_job(&v, "job")? }),
            "result" => Ok(Request::Result { job: need_job(&v, "job")? }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ApiError::UnknownOp(other.to_string())),
        }
    }
}

// --- job status ----------------------------------------------------

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted; at least one unit is waiting for a worker.
    Queued,
    /// At least one unit is executing.
    Running,
    /// Persistent disk pressure (`ENOSPC`): the daemon parked the job's
    /// units instead of failing them; see [`JobStatus::error`] for the
    /// reason. Not terminal — the job resumes (→ [`JobState::Queued`])
    /// when writes to the state directory succeed again.
    Degraded,
    /// All units finished and the report is rendered.
    Completed,
    /// The engine reported an error; see [`JobStatus::error`].
    Failed,
    /// Canceled by request before completion.
    Canceled,
}

impl JobState {
    /// Stable wire token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Degraded => "degraded",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
        }
    }

    /// Parses a [`JobState::token`].
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownKind`] for anything else.
    pub fn parse(token: &str) -> Result<JobState, ApiError> {
        match token {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "degraded" => Ok(JobState::Degraded),
            "completed" => Ok(JobState::Completed),
            "failed" => Ok(JobState::Failed),
            "canceled" => Ok(JobState::Canceled),
            other => Err(ApiError::UnknownKind(other.to_string())),
        }
    }

    /// Whether the job can no longer change state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Completed | JobState::Failed | JobState::Canceled)
    }
}

/// A point-in-time snapshot of one job, as reported by `status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Daemon-assigned id.
    pub id: JobId,
    /// Submitting client.
    pub client: String,
    /// Job family token (`campaign`/`lifetime`/`inject`).
    pub kind: &'static str,
    /// Within-client scheduling priority.
    pub priority: u8,
    /// Lifecycle state.
    pub state: JobState,
    /// Failure description when `state` is [`JobState::Failed`], or the
    /// disk-pressure reason when it is [`JobState::Degraded`].
    pub error: Option<String>,
    /// Schedulable units the job splits into.
    pub units: u64,
    /// Units that have finished.
    pub units_done: u64,
    /// Progress steps completed across all units.
    pub progress_done: u64,
    /// Total progress steps the job will report.
    pub progress_total: u64,
}

fn kind_static(token: &str) -> Result<&'static str, ApiError> {
    match token {
        "campaign" => Ok("campaign"),
        "lifetime" => Ok("lifetime"),
        "inject" => Ok("inject"),
        other => Err(ApiError::UnknownKind(other.to_string())),
    }
}

impl JobStatus {
    fn encode_obj(&self) -> String {
        let error = match &self.error {
            Some(e) => format!("\"{}\"", escape(e)),
            None => "null".to_string(),
        };
        format!(
            "{{\"job\":\"{}\",\"client\":\"{}\",\"kind\":\"{}\",\"priority\":{},\"state\":\"{}\",\"error\":{},\"units\":{},\"units_done\":{},\"progress_done\":{},\"progress_total\":{}}}",
            self.id,
            escape(&self.client),
            self.kind,
            self.priority,
            self.state.token(),
            error,
            self.units,
            self.units_done,
            self.progress_done,
            self.progress_total
        )
    }

    fn decode_obj(v: &Value) -> Result<JobStatus, ApiError> {
        let priority = u8::try_from(need_u64(v, "priority")?)
            .map_err(|_| ApiError::invalid("priority", "must fit in 0..=255"))?;
        Ok(JobStatus {
            id: need_job(v, "job")?,
            client: need_str(v, "client")?.to_string(),
            kind: kind_static(need_str(v, "kind")?)?,
            priority,
            state: JobState::parse(need_str(v, "state")?)?,
            error: match v.get("error") {
                Some(Value::Null) | None => None,
                Some(val) => Some(
                    val.as_str()
                        .ok_or_else(|| ApiError::invalid("error", "must be a string or null"))?
                        .to_string(),
                ),
            },
            units: need_u64(v, "units")?,
            units_done: need_u64(v, "units_done")?,
            progress_done: need_u64(v, "progress_done")?,
            progress_total: need_u64(v, "progress_total")?,
        })
    }
}

// --- events --------------------------------------------------------

/// A live job-lifecycle event, streamed to watchers and appended to the
/// job's durable event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobEvent {
    /// The job was admitted and its units enqueued.
    Accepted {
        /// Job id.
        job: JobId,
        /// Units the job was split into.
        units: u64,
    },
    /// A worker picked up one unit.
    Started {
        /// Job id.
        job: JobId,
        /// 0-based unit index.
        unit: u64,
    },
    /// A unit advanced; `done`/`total` are job-wide step counts.
    Progress {
        /// Job id.
        job: JobId,
        /// 0-based unit index.
        unit: u64,
        /// Steps completed job-wide.
        done: u64,
        /// Total steps job-wide.
        total: u64,
    },
    /// A unit persisted its state snapshot.
    Checkpointed {
        /// Job id.
        job: JobId,
        /// 0-based unit index.
        unit: u64,
        /// Steps completed job-wide at the checkpoint.
        done: u64,
    },
    /// A unit ran to completion.
    UnitDone {
        /// Job id.
        job: JobId,
        /// 0-based unit index.
        unit: u64,
    },
    /// A worker was lost mid-unit; the unit re-queues and will resume
    /// from its last checkpoint.
    WorkerLost {
        /// Job id.
        job: JobId,
        /// 0-based unit index.
        unit: u64,
        /// Steps completed job-wide when the worker was lost.
        done: u64,
    },
    /// Persistent disk pressure parked the job's units; not terminal —
    /// the job resumes when writes succeed again.
    Degraded {
        /// Job id.
        job: JobId,
        /// Why the job was parked (e.g. the `ENOSPC` description).
        reason: String,
    },
    /// All units finished; the report is rendered and fetchable.
    Completed {
        /// Job id.
        job: JobId,
    },
    /// The engine reported an error; the job is over.
    Failed {
        /// Job id.
        job: JobId,
        /// Failure description.
        error: String,
    },
    /// The job was canceled; the job is over.
    Canceled {
        /// Job id.
        job: JobId,
    },
}

impl JobEvent {
    /// The job the event concerns.
    #[must_use]
    pub fn job(&self) -> JobId {
        match self {
            JobEvent::Accepted { job, .. }
            | JobEvent::Started { job, .. }
            | JobEvent::Progress { job, .. }
            | JobEvent::Checkpointed { job, .. }
            | JobEvent::UnitDone { job, .. }
            | JobEvent::WorkerLost { job, .. }
            | JobEvent::Degraded { job, .. }
            | JobEvent::Completed { job }
            | JobEvent::Failed { job, .. }
            | JobEvent::Canceled { job } => *job,
        }
    }

    /// Whether this event ends the job's stream.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobEvent::Completed { .. } | JobEvent::Failed { .. } | JobEvent::Canceled { .. }
        )
    }

    /// Stable wire token of the event type.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            JobEvent::Accepted { .. } => "accepted",
            JobEvent::Started { .. } => "started",
            JobEvent::Progress { .. } => "progress",
            JobEvent::Checkpointed { .. } => "checkpointed",
            JobEvent::UnitDone { .. } => "unit_done",
            JobEvent::WorkerLost { .. } => "worker_lost",
            JobEvent::Degraded { .. } => "degraded",
            JobEvent::Completed { .. } => "completed",
            JobEvent::Failed { .. } => "failed",
            JobEvent::Canceled { .. } => "canceled",
        }
    }

    /// Encodes the event as one wire line (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        let head = format!(
            "{{\"proto_version\":{PROTO_VERSION},\"event\":\"{}\",\"job\":\"{}\"",
            self.name(),
            self.job()
        );
        match self {
            JobEvent::Accepted { units, .. } => format!("{head},\"units\":{units}}}"),
            JobEvent::Started { unit, .. } | JobEvent::UnitDone { unit, .. } => {
                format!("{head},\"unit\":{unit}}}")
            }
            JobEvent::Progress { unit, done, total, .. } => {
                format!("{head},\"unit\":{unit},\"done\":{done},\"total\":{total}}}")
            }
            JobEvent::Checkpointed { unit, done, .. } | JobEvent::WorkerLost { unit, done, .. } => {
                format!("{head},\"unit\":{unit},\"done\":{done}}}")
            }
            JobEvent::Completed { .. } | JobEvent::Canceled { .. } => format!("{head}}}"),
            JobEvent::Failed { error, .. } => format!("{head},\"error\":\"{}\"}}", escape(error)),
            JobEvent::Degraded { reason, .. } => {
                format!("{head},\"reason\":\"{}\"}}", escape(reason))
            }
        }
    }

    /// Decodes one event line.
    ///
    /// # Errors
    ///
    /// Typed [`ApiError`] on any malformed input.
    pub fn decode(line: &str) -> Result<JobEvent, ApiError> {
        let v = parse_doc(line)?;
        let job = need_job(&v, "job")?;
        match need_str(&v, "event")? {
            "accepted" => Ok(JobEvent::Accepted { job, units: need_u64(&v, "units")? }),
            "started" => Ok(JobEvent::Started { job, unit: need_u64(&v, "unit")? }),
            "progress" => Ok(JobEvent::Progress {
                job,
                unit: need_u64(&v, "unit")?,
                done: need_u64(&v, "done")?,
                total: need_u64(&v, "total")?,
            }),
            "checkpointed" => Ok(JobEvent::Checkpointed {
                job,
                unit: need_u64(&v, "unit")?,
                done: need_u64(&v, "done")?,
            }),
            "unit_done" => Ok(JobEvent::UnitDone { job, unit: need_u64(&v, "unit")? }),
            "worker_lost" => Ok(JobEvent::WorkerLost {
                job,
                unit: need_u64(&v, "unit")?,
                done: need_u64(&v, "done")?,
            }),
            "degraded" => {
                Ok(JobEvent::Degraded { job, reason: need_str(&v, "reason")?.to_string() })
            }
            "completed" => Ok(JobEvent::Completed { job }),
            "failed" => Ok(JobEvent::Failed { job, error: need_str(&v, "error")?.to_string() }),
            "canceled" => Ok(JobEvent::Canceled { job }),
            other => Err(ApiError::UnknownKind(other.to_string())),
        }
    }
}

// --- replies -------------------------------------------------------

/// The payload of a successful daemon response.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The job was admitted.
    Submitted {
        /// Assigned job id.
        job: JobId,
    },
    /// Status listing (one entry for a specific-job query).
    Jobs(Vec<JobStatus>),
    /// The watch subscription is live; event lines follow on this
    /// connection until a terminal event.
    Watching {
        /// Watched job.
        job: JobId,
    },
    /// Cancel acknowledgement.
    Canceled {
        /// Target job.
        job: JobId,
        /// Whether the job was actually canceled (false if it had
        /// already reached a terminal state).
        canceled: bool,
    },
    /// A completed job's rendered report, verbatim.
    Report {
        /// Source job.
        job: JobId,
        /// Exact report bytes the batch path would have written.
        report: String,
    },
    /// The daemon is shutting down.
    ShuttingDown,
}

/// A daemon-to-client response, one per request line (watch responses
/// are followed by event lines).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request succeeded.
    Ok(Reply),
    /// The request was rejected.
    Err {
        /// Stable error class token ([`ApiError::code`] or an
        /// executor-defined code such as `engine` / `not_found`).
        code: String,
        /// Human-readable description.
        message: String,
    },
}

impl Response {
    /// Encodes the response as one wire line (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        let head = format!("{{\"proto_version\":{PROTO_VERSION}");
        match self {
            Response::Ok(reply) => {
                let body = match reply {
                    Reply::Submitted { job } => {
                        format!("{{\"type\":\"submitted\",\"job\":\"{job}\"}}")
                    }
                    Reply::Jobs(jobs) => {
                        let mut s = String::from("{\"type\":\"jobs\",\"jobs\":[");
                        for (i, j) in jobs.iter().enumerate() {
                            if i > 0 {
                                s.push(',');
                            }
                            s.push_str(&j.encode_obj());
                        }
                        s.push_str("]}");
                        s
                    }
                    Reply::Watching { job } => {
                        format!("{{\"type\":\"watching\",\"job\":\"{job}\"}}")
                    }
                    Reply::Canceled { job, canceled } => {
                        format!(
                            "{{\"type\":\"canceled\",\"job\":\"{job}\",\"canceled\":{canceled}}}"
                        )
                    }
                    Reply::Report { job, report } => {
                        format!(
                            "{{\"type\":\"report\",\"job\":\"{job}\",\"report\":\"{}\"}}",
                            escape(report)
                        )
                    }
                    Reply::ShuttingDown => "{\"type\":\"shutting_down\"}".to_string(),
                };
                format!("{head},\"ok\":true,\"reply\":{body}}}")
            }
            Response::Err { code, message } => {
                format!(
                    "{head},\"ok\":false,\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}}}}",
                    escape(code),
                    escape(message)
                )
            }
        }
    }

    /// Builds the error response for a rejected request.
    #[must_use]
    pub fn protocol_error(err: &ApiError) -> Response {
        Response::Err { code: err.code().to_string(), message: err.to_string() }
    }
}

/// Decodes one response line.
///
/// # Errors
///
/// Typed [`ApiError`] on any malformed input.
pub fn decode_response(line: &str) -> Result<Response, ApiError> {
    let v = parse_doc(line)?;
    let ok = need(&v, "ok")?.as_bool().ok_or_else(|| ApiError::invalid("ok", "must be a bool"))?;
    if !ok {
        let err = need(&v, "error")?;
        return Ok(Response::Err {
            code: need_str(err, "code")?.to_string(),
            message: need_str(err, "message")?.to_string(),
        });
    }
    let reply = need(&v, "reply")?;
    match need_str(reply, "type")? {
        "submitted" => Ok(Response::Ok(Reply::Submitted { job: need_job(reply, "job")? })),
        "jobs" => {
            let arr = need(reply, "jobs")?
                .as_arr()
                .ok_or_else(|| ApiError::invalid("jobs", "must be an array"))?;
            let jobs =
                arr.iter().map(JobStatus::decode_obj).collect::<Result<Vec<_>, ApiError>>()?;
            Ok(Response::Ok(Reply::Jobs(jobs)))
        }
        "watching" => Ok(Response::Ok(Reply::Watching { job: need_job(reply, "job")? })),
        "canceled" => Ok(Response::Ok(Reply::Canceled {
            job: need_job(reply, "job")?,
            canceled: need(reply, "canceled")?
                .as_bool()
                .ok_or_else(|| ApiError::invalid("canceled", "must be a bool"))?,
        })),
        "report" => Ok(Response::Ok(Reply::Report {
            job: need_job(reply, "job")?,
            report: need_str(reply, "report")?.to_string(),
        })),
        "shutting_down" => Ok(Response::Ok(Reply::ShuttingDown)),
        other => Err(ApiError::UnknownKind(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::SubstrateKind;
    use r2d3_isa::Unit;

    fn specs() -> Vec<JobSpec> {
        vec![
            JobSpec::campaign().build().unwrap(),
            JobSpec::campaign()
                .seed(0xFFFF_FFFF_FFFF_FFFF)
                .scenarios(12)
                .shards(3)
                .substrates(vec![SubstrateKind::Behavioral])
                .kinds(vec![KindId::TsvStuck, KindId::MuxSelect])
                .core("cores/t1.json")
                .priority(9)
                .build()
                .unwrap(),
            JobSpec::lifetime().months(12).seed(1).build().unwrap(),
            JobSpec::inject(Unit::Ffu, 7).bit(13).epochs(9).priority(255).build().unwrap(),
        ]
    }

    #[test]
    fn specs_round_trip() {
        for spec in specs() {
            let line = encode_spec(&spec);
            assert_eq!(decode_spec(&line).unwrap(), spec, "line: {line}");
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Submit { client: "alice".into(), spec: specs().remove(1) },
            Request::Status { job: None },
            Request::Status { job: Some(JobId(7)) },
            Request::Watch { job: JobId(7), overflow: OverflowPolicy::Drop },
            Request::Cancel { job: JobId(u64::MAX) },
            Request::Result { job: JobId(1) },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.encode();
            assert_eq!(Request::decode(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn responses_and_events_round_trip() {
        let status = JobStatus {
            id: JobId(0xAB),
            client: "bob".into(),
            kind: "campaign",
            priority: 3,
            state: JobState::Running,
            error: None,
            units: 3,
            units_done: 1,
            progress_done: 12,
            progress_total: 54,
        };
        let resps = vec![
            Response::Ok(Reply::Submitted { job: JobId(0xAB) }),
            Response::Ok(Reply::Jobs(vec![status])),
            Response::Ok(Reply::Watching { job: JobId(0xAB) }),
            Response::Ok(Reply::Canceled { job: JobId(0xAB), canceled: false }),
            Response::Ok(Reply::Report { job: JobId(0xAB), report: "{\n  \"x\": 1\n}\n".into() }),
            Response::Ok(Reply::ShuttingDown),
            Response::Err { code: "invalid".into(), message: "bad \"field\"".into() },
        ];
        for resp in resps {
            let line = resp.encode();
            assert_eq!(decode_response(&line).unwrap(), resp, "line: {line}");
        }
        let events = vec![
            JobEvent::Accepted { job: JobId(1), units: 3 },
            JobEvent::Started { job: JobId(1), unit: 0 },
            JobEvent::Progress { job: JobId(1), unit: 0, done: 2, total: 54 },
            JobEvent::Checkpointed { job: JobId(1), unit: 0, done: 2 },
            JobEvent::UnitDone { job: JobId(1), unit: 0 },
            JobEvent::WorkerLost { job: JobId(1), unit: 2, done: 9 },
            JobEvent::Completed { job: JobId(1) },
            JobEvent::Failed { job: JobId(1), error: "thermal: grid\ntoo small".into() },
            JobEvent::Canceled { job: JobId(1) },
        ];
        for ev in events {
            let line = ev.encode();
            assert_eq!(JobEvent::decode(&line).unwrap(), ev, "line: {line}");
            assert!(!line.contains('\n'), "events must be single-line");
        }
    }

    #[test]
    fn malformed_lines_yield_typed_errors() {
        assert!(matches!(Request::decode("not json"), Err(ApiError::Syntax(_))));
        assert!(matches!(Request::decode("{}"), Err(ApiError::Missing { .. })));
        assert!(matches!(
            Request::decode("{\"proto_version\":99,\"op\":\"shutdown\"}"),
            Err(ApiError::Version { found: 99 })
        ));
        assert!(matches!(
            Request::decode("{\"proto_version\":1,\"op\":\"launch\"}"),
            Err(ApiError::UnknownOp(_))
        ));
        assert!(matches!(
            Request::decode("{\"proto_version\":1,\"op\":\"cancel\",\"job\":\"zebra\"}"),
            Err(ApiError::Invalid { .. })
        ));
        assert!(matches!(
            decode_spec("{\"proto_version\":1,\"kind\":\"tournament\",\"priority\":0}"),
            Err(ApiError::UnknownKind(_))
        ));
        // Validation runs on decode too: a wire-well-formed but
        // semantically bad spec is rejected.
        let bad = "{\"proto_version\":1,\"kind\":\"campaign\",\"priority\":0,\"seed\":\"0\",\"scenarios\":4,\"substrates\":[\"behavioral\"],\"kinds\":[\"permanent\"],\"core\":null,\"shards\":9}";
        assert!(
            matches!(decode_spec(bad), Err(ApiError::Invalid { field, .. }) if field == "shards")
        );
    }

    #[test]
    fn escape_is_parser_exact() {
        let s = "tab\there \"quoted\" back\\slash\nnewline\rreturn café\u{7f}";
        let line = format!("\"{}\"", escape(s));
        let parsed = parse_json(&line).unwrap();
        // Non-ASCII and unsupported control bytes were mapped to '?';
        // everything else survives byte-exactly.
        assert_eq!(
            parsed.as_str().unwrap(),
            "tab\there \"quoted\" back\\slash\nnewline\rreturn caf??"
        );
    }
}
