//! The in-process job executor: run any [`JobSpec`] locally and render
//! its outcome to the exact artifact bytes the corresponding batch CLI
//! command emits.
//!
//! The batch CLI paths and the serve daemon's single-unit fast path
//! both execute through here, which is what makes "batch mode" nothing
//! more than submit-to-in-process-executor: there is one code path
//! from a validated spec to a report, so there is nothing that can
//! drift between the two front ends. (Sharded campaign jobs run
//! through [`crate::campaign::run_shard`] per unit instead and are
//! merged by the daemon; [`crate::campaign::merge_shards`] guarantees
//! that route renders byte-identically to [`execute_local`].)

use super::spec::{InjectSpec, JobKind, JobSpec, LifetimeSpec};
use crate::campaign::{run_campaign, CampaignReport};
use crate::engine::{EngineEvent, R2d3Engine};
use crate::lifetime::{LifetimeOutcome, LifetimeSim};
use crate::substrate::{NetlistSubstrate, NetlistSubstrateConfig, ReliabilitySubstrate};
use crate::telemetry::{MetricsSnapshot, RingSink, TelemetryRecord};
use crate::EngineError;
use r2d3_isa::kernels::gemv;
use r2d3_pipeline_sim::{FaultEffect, StageId, System3d, SystemConfig};
use std::fmt::Write as _;

/// What running a job produced, before rendering.
#[derive(Debug)]
pub enum JobOutcome {
    /// A finished campaign sweep.
    Campaign(CampaignReport),
    /// A finished lifetime trajectory.
    Lifetime(Box<LifetimeOutcome>),
    /// A finished inject-and-repair run.
    Inject(Box<InjectOutcome>),
}

/// Everything `r2d3 inject` observes about one injected fault.
#[derive(Debug)]
pub struct InjectOutcome {
    /// Whether the engine localized the victim stage within the epoch
    /// budget.
    pub diagnosed: bool,
    /// Faulted net index, for gate-level injections.
    pub net: Option<usize>,
    /// Substrate the fault was driven on.
    pub substrate: &'static str,
    /// Engine counters at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Cycle-stamped telemetry of the whole run.
    pub records: Vec<TelemetryRecord>,
}

/// Runs a job to completion in this process.
///
/// # Errors
///
/// Any [`EngineError`] the underlying campaign/lifetime/inject
/// machinery reports.
pub fn execute_local(spec: &JobSpec) -> Result<JobOutcome, EngineError> {
    match &spec.kind {
        JobKind::Campaign(c) => Ok(JobOutcome::Campaign(run_campaign(&c.to_config()?))),
        JobKind::Lifetime(l) => {
            Ok(JobOutcome::Lifetime(Box::new(LifetimeSim::new(l.to_config()).run()?)))
        }
        JobKind::Inject(i) => {
            Ok(JobOutcome::Inject(Box::new(run_inject_with(i, |_| {}, |_, _| {})?)))
        }
    }
}

/// Builds the 6-pipeline behavioral system with the standard GEMV
/// workload loaded everywhere (the canonical detection traffic). All
/// behavioral front ends (`inject`, `trace`, inject jobs) start here.
///
/// # Errors
///
/// [`EngineError`] when a program fails to load.
pub fn standard_system(seed: u64) -> Result<System3d, EngineError> {
    let config = SystemConfig { pipelines: 6, ..Default::default() };
    let mut sys = System3d::new(&config);
    let kernel = gemv(32, 32, seed);
    for p in 0..6 {
        sys.load_program(p, kernel.program().clone())?;
    }
    Ok(sys)
}

/// Runs an inject job with observation hooks: `on_injected` fires once
/// after the fault lands (with the faulted net index for gate-level
/// injections), `on_event` fires for every engine event with its
/// 1-based epoch. The CLI narrates through these; the daemon passes
/// no-ops.
///
/// # Errors
///
/// Any [`EngineError`] from fault injection or the engine loop.
pub fn run_inject_with(
    spec: &InjectSpec,
    mut on_injected: impl FnMut(Option<usize>),
    on_event: impl FnMut(u64, &EngineEvent),
) -> Result<InjectOutcome, EngineError> {
    use crate::campaign::SubstrateKind;
    let victim = StageId::new(spec.layer, spec.unit);
    match spec.substrate {
        SubstrateKind::Behavioral => {
            let mut sys = standard_system(spec.seed)?;
            ReliabilitySubstrate::inject_fault(
                &mut sys,
                victim,
                FaultEffect { bit: spec.bit, stuck: true },
            )?;
            on_injected(None);
            drive_repair(&mut sys, victim, spec.epochs, None, on_event)
        }
        SubstrateKind::Netlist => {
            let mut sub = NetlistSubstrate::new(&NetlistSubstrateConfig::default());
            let fault = sub.output_fault(spec.unit, spec.bit as usize, true);
            let net = fault.net.index();
            sub.inject_fault(victim, fault)?;
            on_injected(Some(net));
            drive_repair(&mut sub, victim, spec.epochs, Some(net), on_event)
        }
    }
}

/// Drives the engine's detect → diagnose → repair loop on any substrate
/// until the victim stage is diagnosed or the epoch budget runs out.
fn drive_repair<S: ReliabilitySubstrate>(
    sys: &mut S,
    victim: StageId,
    epochs: u64,
    net: Option<usize>,
    mut on_event: impl FnMut(u64, &EngineEvent),
) -> Result<InjectOutcome, EngineError> {
    let mut engine = R2d3Engine::builder().telemetry(RingSink::new()).build()?;
    let mut diagnosed = false;
    for epoch in 1..=epochs {
        let events = engine.run_epoch(sys)?;
        for e in &events {
            on_event(epoch, e);
        }
        if engine.is_believed_faulty(victim) {
            diagnosed = true;
            break;
        }
    }
    Ok(InjectOutcome {
        diagnosed,
        net,
        substrate: sys.name(),
        metrics: engine.metrics(),
        records: engine.telemetry().records(),
    })
}

/// Renders a job outcome to the exact bytes the corresponding batch
/// command writes to its `--out` / `--metrics-out` file: the campaign
/// JSON report, the lifetime final-metrics document, or the inject
/// metrics snapshot. Byte-compared in CI against the batch path.
#[must_use]
pub fn render_outcome(spec: &JobSpec, outcome: &JobOutcome) -> String {
    match (outcome, &spec.kind) {
        (JobOutcome::Campaign(report), _) => crate::campaign::render_report(report),
        (JobOutcome::Lifetime(out), JobKind::Lifetime(l)) => render_lifetime_metrics(l, out),
        (JobOutcome::Inject(out), _) => out.metrics.to_json(),
        // A lifetime outcome only ever pairs with a lifetime spec; the
        // executor constructs both from the same JobKind.
        (JobOutcome::Lifetime(_), _) => unreachable!("outcome kind must match spec kind"),
    }
}

/// The `r2d3 lifetime --metrics-out` document, byte for byte.
fn render_lifetime_metrics(spec: &LifetimeSpec, out: &LifetimeOutcome) -> String {
    let s = &out.series;
    let months = spec.months;
    let last = months - 1;
    let policy = out.policy;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"policy\": \"{policy}\",");
    let _ = writeln!(json, "  \"months\": {months},");
    let _ = writeln!(json, "  \"final_max_vth\": {},", s.max_vth[last]);
    let _ = writeln!(json, "  \"final_mttf_months\": {},", s.mttf_months[last]);
    let _ = writeln!(json, "  \"final_norm_ipc\": {},", s.norm_ipc[last]);
    let _ = writeln!(json, "  \"final_active_pipelines\": {},", s.active_pipelines[last]);
    let _ = writeln!(json, "  \"final_hottest_layer_temp\": {}", s.hottest_layer_temp[last]);
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{render_report, SubstrateKind};
    use crate::campaign::{CampaignConfig, KindId};
    use r2d3_isa::Unit;

    /// The executor's campaign path must be indistinguishable from
    /// calling `run_campaign` on a hand-assembled config — same seed in,
    /// same bytes out.
    #[test]
    fn executor_campaign_matches_direct_run() {
        let spec = JobSpec::campaign()
            .seed(0xD00B)
            .scenarios(6)
            .substrates(vec![SubstrateKind::Behavioral])
            .build()
            .unwrap();
        let outcome = execute_local(&spec).unwrap();
        let direct = run_campaign(&CampaignConfig {
            seed: 0xD00B,
            scenarios_per_substrate: 6,
            substrates: vec![SubstrateKind::Behavioral],
            kinds: KindId::ALL.to_vec(),
            ..Default::default()
        });
        assert_eq!(render_outcome(&spec, &outcome), render_report(&direct));
    }

    /// The canonical inject scenario (EXU layer 2, behavioral) must be
    /// diagnosed within the default epoch budget, and the rendered
    /// outcome must be the metrics snapshot.
    #[test]
    fn executor_inject_diagnoses_the_victim() {
        let spec = JobSpec::inject(Unit::Exu, 2).build().unwrap();
        let JobKind::Inject(i) = &spec.kind else { unreachable!() };
        let mut injected = 0;
        let out = run_inject_with(
            i,
            |net| {
                injected += 1;
                assert!(net.is_none(), "behavioral injection has no net index");
            },
            |_, _| {},
        )
        .unwrap();
        assert_eq!(injected, 1);
        assert!(out.diagnosed);
        assert!(!out.records.is_empty());
        let rendered = render_outcome(&spec, &JobOutcome::Inject(Box::new(out)));
        assert!(rendered.contains("\"believed_faulty\""));
    }
}
