//! The typed job API: one definition of what a job *is*, shared by the
//! serve daemon, the socket clients and the batch CLI paths.
//!
//! Three layers, each in its own submodule:
//!
//! * [`spec`] — the library types: [`JobSpec`] (a validated, executable
//!   description of a campaign, lifetime or inject run), [`JobId`], and
//!   fallible builders ([`JobSpec::campaign`] /
//!   [`JobSpec::lifetime`] / [`JobSpec::inject`]) mirroring
//!   `R2d3Engine::builder()`. `to_config()` conversions produce exactly
//!   the configurations the batch CLI used to assemble by hand, which is
//!   what makes a served job's report byte-identical to the batch path.
//! * [`wire`] — the versioned JSON-lines wire protocol: every document
//!   carries `"proto_version"` ([`PROTO_VERSION`]), encoders are
//!   deterministic single-line emitters in the [`crate::jsonio`] style,
//!   and decoders are recursive-descent validators that return a typed
//!   [`ApiError`] — never a panic — on any malformed input.
//! * [`exec`] — the in-process executor: [`execute_local`] runs any
//!   `JobSpec` to a [`JobOutcome`], and [`render_outcome`] renders it to
//!   the exact artifact bytes the corresponding batch command emits.
//!   Batch mode *is* submit-to-in-process-executor.
//!
//! The protocol versioning rule (DESIGN.md §5.0): `proto_version` bumps
//! on any breaking change to a wire document; peers reject documents
//! from other versions with [`ApiError::Version`] rather than guess.

mod exec;
mod spec;
pub mod wire;

pub use exec::{
    execute_local, render_outcome, run_inject_with, standard_system, InjectOutcome, JobOutcome,
};
pub use spec::{
    load_core_stages, parse_policy, parse_unit, parse_workload, policy_token, unit_token,
    workload_token, CampaignJobBuilder, CampaignSpec, InjectJobBuilder, InjectSpec, JobId, JobKind,
    JobSpec, LifetimeJobBuilder, LifetimeSpec,
};
pub use wire::{JobEvent, JobState, JobStatus, Reply, Request, Response};

use std::fmt;

/// Wire-protocol version stamped on (and required of) every document.
pub const PROTO_VERSION: u32 = 1;

/// Typed rejection reasons for API documents and job specifications.
/// Decoding and validation never panic; every failure mode is one of
/// these, and [`ApiError::code`] gives the stable wire token the daemon
/// reports it under.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ApiError {
    /// The line is not well-formed JSON.
    Syntax(String),
    /// The document carries a different `proto_version` than this build
    /// speaks.
    Version {
        /// Version found in the document.
        found: u32,
    },
    /// A required field is absent.
    Missing {
        /// Dotted path of the missing field.
        field: String,
    },
    /// A field is present but its value is unusable.
    Invalid {
        /// Dotted path of the offending field.
        field: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// The request's `op` is not part of the protocol.
    UnknownOp(String),
    /// The job/event/state kind token is not part of the protocol.
    UnknownKind(String),
    /// A client-side deadline expired before the peer answered (connect
    /// or read timeout). The connection is no longer usable: a reply
    /// arriving after the timeout would desynchronize the stream.
    Timeout,
}

impl ApiError {
    /// Stable wire token identifying the error class.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ApiError::Syntax(_) => "syntax",
            ApiError::Version { .. } => "version",
            ApiError::Missing { .. } => "missing",
            ApiError::Invalid { .. } => "invalid",
            ApiError::UnknownOp(_) => "unknown_op",
            ApiError::UnknownKind(_) => "unknown_kind",
            ApiError::Timeout => "timeout",
        }
    }

    pub(crate) fn missing(field: &str) -> Self {
        ApiError::Missing { field: field.to_string() }
    }

    pub(crate) fn invalid(field: &str, reason: impl Into<String>) -> Self {
        ApiError::Invalid { field: field.to_string(), reason: reason.into() }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Syntax(msg) => write!(f, "malformed JSON: {msg}"),
            ApiError::Version { found } => {
                write!(
                    f,
                    "protocol version {found} unsupported (this build speaks {PROTO_VERSION})"
                )
            }
            ApiError::Missing { field } => write!(f, "missing field \"{field}\""),
            ApiError::Invalid { field, reason } => write!(f, "invalid \"{field}\": {reason}"),
            ApiError::UnknownOp(op) => write!(f, "unknown op \"{op}\""),
            ApiError::UnknownKind(kind) => write!(f, "unknown kind \"{kind}\""),
            ApiError::Timeout => write!(f, "operation timed out"),
        }
    }
}

impl std::error::Error for ApiError {}
