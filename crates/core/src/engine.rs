//! The R2D3 reconfiguration controller (cycle-level engine).
//!
//! Engines are constructed with [`R2d3Engine::builder`], which validates
//! the configuration and injects the telemetry sink, and observed with
//! [`R2d3Engine::metrics`], which snapshots every counter and histogram
//! the engine maintains.

use crate::checkpoint::{CheckpointConfig, CheckpointManager};
use crate::config::R2d3Config;
use crate::detect::{epoch_scan_counted, Detection, RedundantSource};
use crate::history::{EscalationConfig, SymptomHistory};
use crate::policy::{select_assignment, PolicyKind, RotationState};
use crate::substrate::ReliabilitySubstrate;
use crate::telemetry::{
    Metrics, MetricsSnapshot, NullSink, TelemetryEvent, TelemetryRecord, TelemetrySink, VerdictKind,
};
use crate::EngineError;
use r2d3_isa::Unit;
use r2d3_pipeline_sim::{StageId, System3d};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Events the controller emitted during an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineEvent {
    /// A checker fired for this DUT stage.
    Symptom {
        /// The stage under test.
        dut: StageId,
        /// Pipeline that was using it.
        pipe: usize,
    },
    /// TMR replay did not reproduce the symptom: a soft error. Execution
    /// resumed after the single stalled cycle.
    Transient {
        /// The stage that produced the transient symptom.
        dut: StageId,
    },
    /// TMR replay reproduced the symptom and the vote localized a
    /// permanent fault.
    Permanent {
        /// The diagnosed faulty stage (may be the redundant stage!).
        stage: StageId,
    },
    /// The vote was inconclusive (multiple faulty participants); both
    /// comparison parties were quarantined.
    Inconclusive {
        /// DUT side.
        dut: StageId,
        /// Redundant side.
        redundant: StageId,
    },
    /// The controller reconfigured the crossbars.
    Repaired {
        /// Complete pipelines after repair.
        pipelines_formed: usize,
    },
    /// A detection test borrowed a stage from a running core.
    Suspended {
        /// The pipeline that lent its stage.
        pipe: usize,
        /// Unit borrowed.
        unit: Unit,
    },
    /// Calibration-window rotation was applied.
    Rotated {
        /// Calibration-window index.
        window: u64,
    },
    /// A stage's decaying symptom history crossed the escalation
    /// threshold: its "transient" verdicts recur too densely to be
    /// independent soft errors, so it is quarantined as an intermittent
    /// (hard) fault despite every individual replay voting transient.
    Escalated {
        /// The stage quarantined by symptom-history escalation.
        stage: StageId,
    },
    /// A pipeline corrupted by a transient was recovered in place
    /// (rollback to the last validated checkpoint, or program restart).
    Recovered {
        /// The recovered pipeline.
        pipe: usize,
        /// `true` for a checkpoint rollback, `false` for a restart.
        rolled_back: bool,
    },
    /// A committed checkpoint failed its integrity check during
    /// recovery; the slot was invalidated and the pipeline restarted.
    CheckpointCorrupt {
        /// Pipeline whose checkpoint was found corrupt.
        pipe: usize,
    },
    /// Route scrub found a mux-select register disagreeing with the
    /// controller's routing intent (the pipeline was silently reading
    /// the wrong layer) and rewrote it.
    Misrouted {
        /// Pipeline whose slot was misrouted.
        pipe: usize,
        /// Unit slot whose select register was corrupted.
        unit: Unit,
    },
    /// A vertical TSV link bundle was quarantined: its symptom history
    /// escalated with dense-majority window evidence, so the corruption
    /// rides the path, not the stage. The link becomes a routing
    /// constraint — repair avoids it without retiring its stage, which
    /// stays powered and keeps serving as a replay voter.
    LinkQuarantined {
        /// The quarantined link (stage-coordinate addressed).
        link: StageId,
    },
}

/// Builds an [`R2d3Engine`]: typed configuration setters, fallible
/// validation at [`build`](EngineBuilder::build) time, and telemetry
/// sink injection (the sink type is a compile-time parameter, so a
/// [`NullSink`] engine contains no recording code at all).
///
/// ```
/// use r2d3_core::engine::R2d3Engine;
/// use r2d3_core::telemetry::RingSink;
/// use r2d3_pipeline_sim::System3d;
///
/// let engine = R2d3Engine::builder()
///     .t_epoch(10_000)
///     .t_test(2_000)
///     .telemetry(RingSink::new())
///     .build::<System3d>()
///     .unwrap();
/// assert_eq!(engine.config().t_epoch, 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder<T: TelemetrySink = NullSink> {
    config: R2d3Config,
    sink: T,
}

impl Default for EngineBuilder<NullSink> {
    fn default() -> Self {
        EngineBuilder { config: R2d3Config::default(), sink: NullSink }
    }
}

impl EngineBuilder<NullSink> {
    /// A builder with the default configuration and no telemetry.
    #[must_use]
    pub fn new() -> Self {
        EngineBuilder::default()
    }
}

impl<T: TelemetrySink> EngineBuilder<T> {
    /// Replaces the whole configuration at once.
    #[must_use]
    pub fn config(mut self, config: R2d3Config) -> Self {
        self.config = config;
        self
    }

    /// Epoch length in cycles.
    #[must_use]
    pub fn t_epoch(mut self, cycles: u64) -> Self {
        self.config.t_epoch = cycles;
        self
    }

    /// Detection re-execution window in cycles.
    #[must_use]
    pub fn t_test(mut self, cycles: u64) -> Self {
        self.config.t_test = cycles;
        self
    }

    /// Calibration (rotation) window in cycles.
    #[must_use]
    pub fn t_cal(mut self, cycles: u64) -> Self {
        self.config.t_cal = cycles;
        self
    }

    /// Wearout-leveling policy.
    #[must_use]
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.config.policy = policy;
        self
    }

    /// Whether detection may borrow a running core's stage when no
    /// leftover of the right unit exists.
    #[must_use]
    pub fn suspend_when_no_leftover(mut self, allow: bool) -> Self {
        self.config.suspend_when_no_leftover = allow;
        self
    }

    /// Checkpointing configuration (`None` disables checkpointing).
    #[must_use]
    pub fn checkpoint(mut self, checkpoint: Option<CheckpointConfig>) -> Self {
        self.config.checkpoint = checkpoint;
        self
    }

    /// Symptom-history escalation configuration (`None` disables it).
    #[must_use]
    pub fn escalation(mut self, escalation: Option<EscalationConfig>) -> Self {
        self.config.escalation = escalation;
        self
    }

    /// Extra third-voter attempts before an inconclusive verdict.
    #[must_use]
    pub fn inconclusive_retries(mut self, retries: u32) -> Self {
        self.config.inconclusive_retries = retries;
        self
    }

    /// Whether transient verdicts trigger rollback of tainted pipelines.
    #[must_use]
    pub fn rollback_on_transient(mut self, rollback: bool) -> Self {
        self.config.rollback_on_transient = rollback;
        self
    }

    /// Installs a telemetry sink, changing the engine's sink type.
    #[must_use]
    pub fn telemetry<U: TelemetrySink>(self, sink: U) -> EngineBuilder<U> {
        EngineBuilder { config: self.config, sink }
    }

    /// Validates the configuration and constructs the engine.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] when the configuration fails
    /// [`R2d3Config::validate`].
    pub fn build<S: ReliabilitySubstrate>(self) -> Result<R2d3Engine<S, T>, EngineError> {
        self.config.validate()?;
        Ok(R2d3Engine {
            config: self.config,
            believed_faulty: HashSet::new(),
            quarantined_links: HashSet::new(),
            link_evidence: HashMap::new(),
            rotation: None,
            checkpoints: None,
            history: SymptomHistory::new(),
            metrics: Metrics::new(),
            sink: self.sink,
            epochs: 0,
            windows: 0,
        })
    }
}

/// The R2D3 reconfiguration controller.
///
/// Owns the engine's *belief* about stage health (built from diagnosis
/// outcomes — the controller never peeks at ground truth), the rotation
/// state, and the epoch/calibration clocks. Drives any
/// [`ReliabilitySubstrate`] via [`run_epoch`](R2d3Engine::run_epoch);
/// the default substrate is the behavioral [`System3d`], the alternative
/// is the gate-level [`crate::substrate::NetlistSubstrate`].
///
/// The second type parameter is the telemetry sink; with the default
/// [`NullSink`] every recording path compiles away. The sink receives
/// cycle-stamped [`TelemetryEvent`]s but never feeds back into the
/// engine: verdicts and repairs are byte-identical whatever sink is
/// installed.
pub struct R2d3Engine<S: ReliabilitySubstrate = System3d, T: TelemetrySink = NullSink> {
    config: R2d3Config,
    believed_faulty: HashSet<StageId>,
    /// TSV link bundles quarantined as routing constraints: repair never
    /// routes a pipeline across them, but their stages stay usable
    /// (powered, voting in replays).
    quarantined_links: HashSet<StageId>,
    /// Per-stage window-density evidence accumulated alongside the
    /// symptom history: (dense windows, total windows). Dense-majority
    /// evidence at escalation time attributes the fault to the link
    /// rather than the stage.
    link_evidence: HashMap<StageId, (u64, u64)>,
    rotation: Option<RotationState>,
    checkpoints: Option<CheckpointManager<S::Checkpoint>>,
    history: SymptomHistory,
    metrics: Metrics,
    sink: T,
    epochs: u64,
    windows: u64,
}

impl<S: ReliabilitySubstrate, T: TelemetrySink + Clone> Clone for R2d3Engine<S, T> {
    fn clone(&self) -> Self {
        R2d3Engine {
            config: self.config,
            believed_faulty: self.believed_faulty.clone(),
            quarantined_links: self.quarantined_links.clone(),
            link_evidence: self.link_evidence.clone(),
            rotation: self.rotation.clone(),
            checkpoints: self.checkpoints.clone(),
            history: self.history.clone(),
            metrics: self.metrics,
            sink: self.sink.clone(),
            epochs: self.epochs,
            windows: self.windows,
        }
    }
}

impl<S: ReliabilitySubstrate, T: TelemetrySink> std::fmt::Debug for R2d3Engine<S, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("R2d3Engine")
            .field("config", &self.config)
            .field("believed_faulty", &self.believed_faulty)
            .field("rotation", &self.rotation)
            .field("checkpoints", &self.checkpoints)
            .field("history", &self.history)
            .field("metrics", &self.metrics)
            .field("epochs", &self.epochs)
            .field("windows", &self.windows)
            .finish_non_exhaustive()
    }
}

impl R2d3Engine {
    /// Starts building an engine (default substrate and sink; both are
    /// changed by the builder's type-state —
    /// [`EngineBuilder::telemetry`] swaps the sink, and
    /// [`EngineBuilder::build`] infers the substrate at the use site).
    #[must_use]
    pub fn builder() -> EngineBuilder<NullSink> {
        EngineBuilder::new()
    }
}

impl<S: ReliabilitySubstrate, T: TelemetrySink> R2d3Engine<S, T> {
    /// Snapshots every counter, histogram and belief the engine
    /// maintains. Metrics are accumulated unconditionally (independent
    /// of the telemetry sink), so this is the observation API — and the
    /// snapshot is identical whatever sink is installed.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut believed_faulty: Vec<StageId> = self.believed_faulty.iter().copied().collect();
        believed_faulty.sort();
        let mut quarantined_links: Vec<StageId> = self.quarantined_links.iter().copied().collect();
        quarantined_links.sort();
        let symptom_scores =
            self.history.tracked().into_iter().map(|s| (s, self.history.score(s))).collect();
        MetricsSnapshot {
            epochs: self.epochs,
            detections: self.metrics.detections,
            untested: self.metrics.untested,
            suspensions: self.metrics.suspensions,
            transients_seen: self.metrics.transients,
            permanents_diagnosed: self.metrics.permanents,
            inconclusives: self.metrics.inconclusives,
            escalations: self.metrics.escalations,
            replays: self.metrics.replays,
            repairs: self.metrics.repairs,
            rotations: self.metrics.rotations,
            recoveries: self.metrics.recoveries,
            reroutes: self.metrics.reroutes,
            link_quarantines: self.metrics.link_quarantines,
            trace_dropped: self.sink.dropped(),
            believed_faulty,
            quarantined_links,
            symptom_scores,
            checkpoints: self.checkpoints.as_ref().map(|m| *m.stats()),
            detection_latency: self.metrics.detection_latency,
            replay_count: self.metrics.replay_count,
            reformation_ops: self.metrics.reformation_ops,
            rotation_churn: self.metrics.rotation_churn,
        }
    }

    /// Whether the controller has diagnosed `stage` as permanently
    /// faulty.
    #[must_use]
    pub fn is_believed_faulty(&self, stage: StageId) -> bool {
        self.believed_faulty.contains(&stage)
    }

    /// Whether the controller has quarantined `link`'s vertical TSV
    /// bundle as a routing constraint (the stage itself stays usable).
    #[must_use]
    pub fn is_link_quarantined(&self, link: StageId) -> bool {
        self.quarantined_links.contains(&link)
    }

    /// The installed telemetry sink.
    #[must_use]
    pub fn telemetry(&self) -> &T {
        &self.sink
    }

    /// The installed telemetry sink, mutably (e.g. to drain a
    /// [`crate::telemetry::RingSink`] between epochs).
    pub fn telemetry_mut(&mut self) -> &mut T {
        &mut self.sink
    }

    /// Consumes the engine and returns the telemetry sink — needed for
    /// sinks whose teardown reports something, e.g.
    /// [`crate::telemetry::StreamSink::finish`].
    #[must_use]
    pub fn into_telemetry(self) -> T {
        self.sink
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &R2d3Config {
        &self.config
    }

    /// Whether `pipe` currently holds a committed checkpoint.
    #[must_use]
    pub fn has_committed_checkpoint(&self, pipe: usize) -> bool {
        self.checkpoints.as_ref().is_some_and(|m| m.has_checkpoint(pipe))
    }

    /// Flips one seed-selected bit in `pipe`'s committed checkpoint
    /// payload — fault-injection ground truth modeling the checkpoint
    /// store rotting between commit and recovery (the campaign harness's
    /// lever; the engine itself never corrupts its own store). Returns
    /// whether a committed slot existed to corrupt.
    pub fn corrupt_checkpoint(&mut self, pipe: usize, seed: u64) -> bool {
        self.checkpoints
            .as_mut()
            .is_some_and(|m| m.corrupt_slot_with(pipe, |cp| S::corrupt_checkpoint(cp, seed)))
    }

    /// Records one telemetry event, stamped with the current epoch.
    /// Inlined so that with a [`NullSink`] (whose `is_enabled` is a
    /// constant `false`) the whole call folds away.
    #[inline]
    fn emit(&mut self, cycle: u64, event: TelemetryEvent) {
        if self.sink.is_enabled() {
            self.sink.record(TelemetryRecord { epoch: self.epochs, cycle, event });
        }
    }

    /// Runs one epoch: `T_epoch` cycles of execution, then the detection /
    /// diagnosis / repair sequence, then (at calibration boundaries) the
    /// policy rotation.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn run_epoch(&mut self, sys: &mut S) -> Result<Vec<EngineEvent>, EngineError> {
        // Per-pipe retirement baselines for the Exec spans. Taken only
        // when a sink is installed; the reads are side-effect-free, so
        // engine behavior stays sink-independent.
        let retired_before: Option<Vec<u64>> = self
            .sink
            .is_enabled()
            .then(|| (0..sys.pipeline_count()).map(|p| sys.retired(p)).collect());
        sys.run(self.config.t_epoch)?;
        self.epochs += 1;
        let now = sys.now();
        if let Some(before) = retired_before {
            for (p, base) in before.iter().enumerate() {
                self.emit(
                    now,
                    TelemetryEvent::Exec {
                        pipe: p as u32,
                        cycles: self.config.t_epoch,
                        retired: sys.retired(p).saturating_sub(*base),
                    },
                );
            }
        }
        let mut events = Vec::new();

        // --- route scrub --------------------------------------------------
        // Compare every slot's select-register readback against routing
        // intent before trusting any trace: a mux-select SEU silently
        // feeds a pipeline the wrong layer's stage, and the records such
        // a slot produced this epoch carry misroute skew that must not be
        // attributed to the (healthy) serving stages.
        let mut rerouted_pipes: HashSet<usize> = HashSet::new();
        if self.config.route_scrub {
            for p in 0..sys.pipeline_count() {
                for u in Unit::ALL {
                    let Some(intent) = sys.stage_for(p, u) else {
                        continue;
                    };
                    let readback = sys.route_readback(p, u);
                    if readback != Some(intent.layer) {
                        sys.scrub_route(p, u);
                        self.metrics.reroutes += 1;
                        events.push(EngineEvent::Misrouted { pipe: p, unit: u });
                        self.emit(
                            now,
                            TelemetryEvent::Misroute {
                                pipe: p as u32,
                                expected: intent.layer as u32,
                                actual: readback.map_or(u32::MAX, |l| l as u32),
                            },
                        );
                        rerouted_pipes.insert(p);
                    }
                }
            }
            // Whatever the misrouted slot delivered is already in
            // architectural state: recover the pipe now, before the
            // detection scan and any checkpoint commit.
            for p in 0..sys.pipeline_count() {
                if rerouted_pipes.contains(&p) && sys.pipeline_corrupted(p) {
                    let rolled_back = self.recover_pipe(sys, p, &mut events)?;
                    events.push(EngineEvent::Recovered { pipe: p, rolled_back });
                }
            }
        }

        // --- detection ---------------------------------------------------
        let (detections, scan) = epoch_scan_counted(
            sys,
            &self.config,
            &self.believed_faulty,
            self.epochs,
            &rerouted_pipes,
        );
        self.metrics.untested += u64::from(scan.untested);
        self.metrics.suspensions += u64::from(scan.suspensions);
        self.emit(
            now,
            TelemetryEvent::Scan {
                tested: scan.tested,
                untested: scan.untested,
                detections: detections.len() as u32,
            },
        );
        let mut need_repair = false;
        for d in &detections {
            events.push(EngineEvent::Symptom { dut: d.dut, pipe: d.pipe });
            if let RedundantSource::SuspendedCore { pipe } = d.source {
                events.push(EngineEvent::Suspended { pipe, unit: d.unit });
            }
            let latency = now.saturating_sub(d.symptom.record.cycle);
            self.metrics.detections += 1;
            self.metrics.detection_latency.record(latency);
            self.emit(
                now,
                TelemetryEvent::Detect {
                    dut: d.dut,
                    pipe: d.pipe as u32,
                    latency,
                    suspended: matches!(d.source, RedundantSource::SuspendedCore { .. }),
                },
            );
            need_repair |= self.diagnose(sys, d, now, &mut events);
        }
        if let Some(esc) = self.config.escalation {
            self.history.decay(&esc);
            // Window-density evidence rides the symptom history: once a
            // stage's counter has fully decayed it can never escalate
            // from that evidence, so the tallies are pruned alongside.
            let history = &self.history;
            self.link_evidence.retain(|s, _| history.score(*s) > 0);
        }

        // --- checkpoint commit (only after a clean scan) -------------------
        if detections.is_empty() {
            if let Some(cfg) = self.config.checkpoint {
                let epoch = self.epochs;
                let mgr = self
                    .checkpoints
                    .get_or_insert_with(|| CheckpointManager::new(cfg, sys.pipeline_count()));
                if mgr.is_commit_epoch(epoch) {
                    mgr.commit_all(sys)?;
                    let pipes = sys.pipeline_count() as u32;
                    self.metrics.checkpoint_commits += 1;
                    self.emit(now, TelemetryEvent::CheckpointCommit { pipes });
                }
            }
        }

        // --- repair -------------------------------------------------------
        if need_repair {
            let formed = self.reconfigure(sys, false, &mut events)?;
            events.push(EngineEvent::Repaired { pipelines_formed: formed });
        } else if self.config.rollback_on_transient
            && events.iter().any(|e| matches!(e, EngineEvent::Transient { .. }))
        {
            // --- transient rollback ---------------------------------------
            // The upset was classified correctly, but its corruption is
            // already in architectural state; without this the engine
            // "classifies and forgets" and the taint runs to completion.
            for p in 0..sys.pipeline_count() {
                if sys.pipeline_corrupted(p) {
                    let rolled_back = self.recover_pipe(sys, p, &mut events)?;
                    events.push(EngineEvent::Recovered { pipe: p, rolled_back });
                }
            }
        }

        // --- calibration-window rotation -----------------------------------
        if self.config.policy.rotates() {
            let window = sys.now() / self.config.t_cal;
            if window > self.windows {
                self.windows = window;
                self.reconfigure(sys, true, &mut events)?;
                events.push(EngineEvent::Rotated { window });
                self.emit(sys.now(), TelemetryEvent::Rotate { window });
            }
        }

        self.emit(sys.now(), TelemetryEvent::EpochEnd { events: events.len() as u32 });
        Ok(events)
    }

    /// Recovers one pipeline: checkpoint rollback when a validated slot
    /// exists, program restart otherwise. A slot that fails its integrity
    /// check is surfaced as a [`EngineEvent::CheckpointCorrupt`] event,
    /// invalidated (by the manager) and the recovery retried, which then
    /// takes the restart path. Returns whether a rollback was used.
    fn recover_pipe(
        &mut self,
        sys: &mut S,
        pipe: usize,
        events: &mut Vec<EngineEvent>,
    ) -> Result<bool, EngineError> {
        let now = sys.now();
        if self.checkpoints.is_none() {
            sys.restart_program(pipe)?;
            self.metrics.recoveries += 1;
            self.emit(now, TelemetryEvent::Recovery { pipe: pipe as u32, rolled_back: false });
            return Ok(false);
        }
        let had_checkpoint = self.checkpoints.as_ref().is_some_and(|m| m.has_checkpoint(pipe));
        let mgr = self.checkpoints.as_mut().expect("checked above");
        let result = mgr.recover(sys, pipe);
        let rolled_back = match result {
            Ok(()) => {
                if had_checkpoint {
                    self.emit(
                        now,
                        TelemetryEvent::CheckpointVerify { pipe: pipe as u32, ok: true },
                    );
                }
                had_checkpoint
            }
            Err(EngineError::CorruptCheckpoint { .. }) => {
                self.metrics.checkpoint_corruptions += 1;
                self.emit(now, TelemetryEvent::CheckpointVerify { pipe: pipe as u32, ok: false });
                events.push(EngineEvent::CheckpointCorrupt { pipe });
                // The slot is gone; this retry restarts the program.
                self.checkpoints.as_mut().expect("checked above").recover(sys, pipe)?;
                false
            }
            Err(e) => return Err(e),
        };
        self.metrics.recoveries += 1;
        self.emit(now, TelemetryEvent::Recovery { pipe: pipe as u32, rolled_back });
        Ok(rolled_back)
    }

    /// Single-replay TMR diagnosis (§III-C): stall one cycle, replay the
    /// symptom-generating operation on the two disagreeing stages plus a
    /// known-good third stage, and vote. Returns whether a permanent fault
    /// was diagnosed (repair needed).
    fn diagnose(
        &mut self,
        sys: &S,
        d: &Detection,
        now: u64,
        events: &mut Vec<EngineEvent>,
    ) -> bool {
        let record = &d.symptom.record;
        // Replay: permanent effects persist; one-shot transients do not
        // recur (they were consumed when they fired).
        let out_dut = sys.replay_output(d.dut, record);
        let out_red = sys.replay_output(d.redundant, record);
        self.emit(now, TelemetryEvent::Replay { stage: d.dut });
        self.emit(now, TelemetryEvent::Replay { stage: d.redundant });

        if out_dut == out_red {
            // Symptom did not recur: a soft error was detected. Resume —
            // unless this stage's "soft errors" have been recurring too
            // densely to be independent upsets, in which case the decaying
            // symptom history escalates it to an intermittent hard fault.
            self.metrics.transients += 1;
            self.metrics.replays += 2;
            self.metrics.replay_count.record(2);
            events.push(EngineEvent::Transient { dut: d.dut });
            self.emit(
                now,
                TelemetryEvent::Verdict { dut: d.dut, verdict: VerdictKind::Transient, replays: 2 },
            );
            // Window-density attribution: a genuine stage transient is a
            // consumed one-shot — exactly one mismatch in its window — while
            // a TSV/crossbar path fault corrupts a large fraction of every
            // transfer it carries (and still replays clean, because the
            // replay network bypasses the TSVs). Tally which shape each
            // "transient" window had; the majority decides, at escalation
            // time, whether the link or the stage is quarantined.
            let dense = d.mismatches >= 2.max(d.compared / 8);
            let evidence = self.link_evidence.entry(d.dut).or_insert((0, 0));
            evidence.1 += 1;
            if dense {
                evidence.0 += 1;
            }
            if let Some(esc) = self.config.escalation {
                if self.history.record(d.dut, &esc) {
                    let score = self.history.score(d.dut);
                    self.history.forget(d.dut);
                    let (dense_n, total_n) = self.link_evidence.remove(&d.dut).unwrap_or((0, 0));
                    if dense_n > 0 && dense_n * 2 >= total_n {
                        // Dense-majority windows: the corruption rides the
                        // vertical link, not the stage (whose replays are
                        // clean). Quarantine the link as a routing
                        // constraint — the stage stays powered, keeps
                        // voting, and repair simply routes around the span.
                        self.metrics.link_quarantines += 1;
                        events.push(EngineEvent::LinkQuarantined { link: d.dut });
                        self.emit(now, TelemetryEvent::LinkQuarantine { link: d.dut });
                        return self.quarantined_links.insert(d.dut);
                    }
                    self.metrics.escalations += 1;
                    events.push(EngineEvent::Escalated { stage: d.dut });
                    self.emit(now, TelemetryEvent::Escalated { stage: d.dut, score });
                    return self.believed_faulty.insert(d.dut);
                }
            }
            return false;
        }

        // Hard fault: bring in a third stage to vote. An inconclusive
        // three-way split may mean the *third voter* is itself faulty, so
        // retry with other distinct voters (bounded by
        // `inconclusive_retries`) before giving up on the pair.
        let mut tried: Vec<StageId> = Vec::new();
        let mut majority_faulty: Option<Vec<StageId>> = None;
        while tried.len() <= self.config.inconclusive_retries as usize {
            let Some(third) = self.pick_third(sys, d, &tried) else {
                break;
            };
            tried.push(third);
            let out_third = sys.replay_output(third, record);
            self.emit(now, TelemetryEvent::Replay { stage: third });
            let (a, b, c) = (out_dut, out_red, out_third);
            let majority = if a == b || a == c {
                Some(a)
            } else if b == c {
                Some(b)
            } else {
                None
            };
            if let Some(m) = majority {
                majority_faulty = Some(
                    [(d.dut, a), (d.redundant, b), (third, c)]
                        .iter()
                        .filter(|(_, o)| *o != m)
                        .map(|(s, _)| *s)
                        .collect(),
                );
                break;
            }
        }

        let replays = 2 + tried.len() as u32;
        self.metrics.replays += u64::from(replays);
        self.metrics.replay_count.record(u64::from(replays));
        let conclusive = majority_faulty.is_some();
        let faulty = majority_faulty.unwrap_or_else(|| {
            // No voter pool or every vote split three ways: quarantine
            // both comparison parties.
            events.push(EngineEvent::Inconclusive { dut: d.dut, redundant: d.redundant });
            vec![d.dut, d.redundant]
        });
        if !conclusive {
            self.metrics.inconclusives += 1;
        }
        self.emit(
            now,
            TelemetryEvent::Verdict {
                dut: d.dut,
                verdict: if conclusive {
                    VerdictKind::Permanent
                } else {
                    VerdictKind::Inconclusive
                },
                replays,
            },
        );

        let mut diagnosed = false;
        for s in faulty {
            if self.believed_faulty.insert(s) {
                self.history.forget(s);
                self.metrics.permanents += 1;
                events.push(EngineEvent::Permanent { stage: s });
                diagnosed = true;
            }
        }
        diagnosed
    }

    /// A believed-healthy stage of the same unit, distinct from the two
    /// comparison parties and from already-consulted voters.
    fn pick_third(&self, sys: &S, d: &Detection, exclude: &[StageId]) -> Option<StageId> {
        (0..sys.layers()).map(|l| StageId::new(l, d.unit)).find(|s| {
            *s != d.dut
                && *s != d.redundant
                && !exclude.contains(s)
                && !self.believed_faulty.contains(s)
                && sys.stage_usable(*s)
        })
    }

    /// Re-forms the fabric from believed-healthy stages; `rotation` selects
    /// whether the policy's rotation ordering applies (calibration window)
    /// or the canonical repair formation.
    fn reconfigure(
        &mut self,
        sys: &mut S,
        rotation: bool,
        events: &mut Vec<EngineEvent>,
    ) -> Result<usize, EngineError> {
        let layers = sys.layers();
        let pipelines = sys.pipeline_count();
        let believed = self.believed_faulty.clone();
        // A quarantined link is a routing constraint, not a dead stage:
        // its stage cannot *serve* (data would ride the broken vertical
        // span) but stays powered and available as a replay voter.
        let links = self.quarantined_links.clone();
        let usable = move |s: StageId| !believed.contains(&s) && !links.contains(&s);

        let kind = if rotation { self.config.policy } else { PolicyKind::Static };
        let rotation_state = self.rotation.get_or_insert_with(|| RotationState::new(layers));
        let formed = select_assignment(kind, layers, &usable, pipelines, rotation_state);

        // Record the outgoing map so churn (slots whose serving layer
        // changed) and crossbar operation counts are observable.
        let previous: Vec<Option<StageId>> = (0..pipelines)
            .flat_map(|p| Unit::ALL.iter().map(move |u| (p, *u)))
            .map(|(p, u)| sys.stage_for(p, u))
            .collect();

        // Tear down and rebuild the crossbar map.
        let mut ops: u32 = previous.iter().flatten().count() as u32;
        for p in 0..pipelines {
            for u in Unit::ALL {
                sys.unassign(p, u)?;
            }
        }
        for (p, fp) in formed.iter().enumerate() {
            for u in Unit::ALL {
                sys.assign(p, u, fp.layer_of[u.index()])?;
                ops += 1;
            }
        }
        let churn = previous
            .iter()
            .enumerate()
            .filter(|(i, prev)| {
                let (p, u) = (i / Unit::ALL.len(), Unit::ALL[i % Unit::ALL.len()]);
                let next = formed.get(p).map(|fp| StageId::new(fp.layer_of[u.index()], u));
                *prev != &next
            })
            .count() as u32;

        self.metrics.reformation_ops.record(u64::from(ops));
        if rotation {
            self.metrics.rotations += 1;
            self.metrics.rotation_churn.record(u64::from(churn));
        } else {
            self.metrics.repairs += 1;
        }
        self.emit(
            sys.now(),
            TelemetryEvent::Reform { formed: formed.len() as u32, ops, churn, rotation },
        );

        if !rotation {
            // Post-repair recovery: roll corrupted pipelines back to their
            // last committed checkpoint (or restart without one). Stale
            // pre-repair trace records need no explicit flush: the belief
            // set already excludes diagnosed stages, and `epoch_scan`
            // skips believed-faulty DUTs.
            for p in 0..pipelines {
                if sys.pipeline_corrupted(p) {
                    self.recover_pipe(sys, p, events)?;
                }
            }
            // Power-gate diagnosed stages so they never serve again.
            for s in &self.believed_faulty {
                if sys.stage_usable(*s) {
                    // The belief may be wrong (inconclusive vote): still
                    // isolate the stage, mirroring the controller's view.
                    sys.power_off(*s)?;
                }
            }
        }
        Ok(formed.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::RingSink;
    use r2d3_isa::kernels::{gemm, gemv};
    use r2d3_pipeline_sim::{FaultEffect, SystemConfig};

    fn engine_system(pipelines: usize) -> (R2d3Engine, System3d) {
        let config = SystemConfig { pipelines, ..Default::default() };
        let mut sys = System3d::new(&config);
        for p in 0..pipelines {
            // Long-running kernels so epochs always have work.
            sys.load_program(p, gemm(24, 24, 24, p as u64 + 1).program().clone()).unwrap();
        }
        (R2d3Engine::builder().build().unwrap(), sys)
    }

    #[test]
    fn detects_diagnoses_and_repairs_permanent_fault() {
        let (mut engine, mut sys) = engine_system(6);
        let bad = StageId::new(2, Unit::Exu);
        sys.inject_fault(bad, FaultEffect { bit: 0, stuck: true }).unwrap();

        let mut repaired = false;
        for _ in 0..32 {
            let events = engine.run_epoch(&mut sys).unwrap();
            if events.iter().any(|e| matches!(e, EngineEvent::Repaired { .. })) {
                repaired = true;
                break;
            }
        }
        assert!(repaired, "engine never repaired");
        assert!(engine.is_believed_faulty(bad));
        let metrics = engine.metrics();
        assert!(metrics.believed_faulty.contains(&bad));
        assert_eq!(metrics.repairs, 1);
        assert!(metrics.detection_latency.total() >= 1);
        assert!(metrics.replay_count.total() >= 1);
        // The faulty stage serves no pipeline anymore.
        for p in 0..6 {
            assert_ne!(sys.fabric().stage_for(p, Unit::Exu), Some(bad));
        }
        // Six pipelines still formed (7 healthy EXUs remain).
        assert_eq!(sys.fabric().complete_pipelines(), 6);
    }

    #[test]
    fn transient_classified_without_repair() {
        // Short epochs so the transient's record is still inside the
        // trace ring / test window when the epoch ends (a transient that
        // fires long before the comparison window is invisible — the
        // paper's detection is concurrent, not retroactive).
        let sys_cfg = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&sys_cfg);
        for p in 0..6 {
            sys.load_program(p, gemm(24, 24, 24, p as u64 + 1).program().clone()).unwrap();
        }
        let mut engine: R2d3Engine =
            R2d3Engine::builder().t_epoch(4_000).t_test(4_000).build().unwrap();
        sys.inject_transient(StageId::new(1, Unit::Exu), FaultEffect { bit: 0, stuck: true })
            .unwrap();

        let mut transient = false;
        for _ in 0..16 {
            let events = engine.run_epoch(&mut sys).unwrap();
            if events.iter().any(|e| matches!(e, EngineEvent::Transient { .. })) {
                transient = true;
                assert!(
                    !events.iter().any(|e| matches!(e, EngineEvent::Permanent { .. })),
                    "transient misdiagnosed as permanent"
                );
                break;
            }
        }
        assert!(transient, "transient never detected");
        let metrics = engine.metrics();
        assert!(metrics.believed_faulty.is_empty());
        assert_eq!(metrics.transients_seen, 1);
        assert_eq!(metrics.replays, 2, "a transient verdict costs exactly two replays");
    }

    #[test]
    fn healthy_system_never_repairs() {
        let (mut engine, mut sys) = engine_system(6);
        for _ in 0..8 {
            let events = engine.run_epoch(&mut sys).unwrap();
            assert!(events.is_empty(), "spurious events: {events:?}");
        }
        let metrics = engine.metrics();
        assert_eq!(metrics.permanents_diagnosed, 0);
        assert_eq!(metrics.detections, 0);
        assert_eq!(metrics.epochs, 8);
    }

    #[test]
    fn corrupted_program_restarts_and_finishes_correctly() {
        let config = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&config);
        let kernel = gemv(16, 16, 5);
        for p in 0..6 {
            sys.load_program(p, kernel.program().clone()).unwrap();
        }
        let mut engine: R2d3Engine = R2d3Engine::builder().build().unwrap();
        let bad = StageId::new(0, Unit::Ffu);
        sys.inject_fault(bad, FaultEffect { bit: 12, stuck: true }).unwrap();

        for _ in 0..64 {
            engine.run_epoch(&mut sys).unwrap();
            if (0..6).all(|p| sys.pipeline(p).unwrap().halted()) {
                break;
            }
        }
        for p in 0..6 {
            let pipe = sys.pipeline(p).unwrap();
            assert!(pipe.halted(), "pipeline {p} unfinished");
            assert!(kernel.verify(pipe.memory()), "pipeline {p} finished with corrupted results");
        }
    }

    #[test]
    fn rotation_happens_at_calibration_boundaries() {
        let sys_cfg = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&sys_cfg);
        for p in 0..6 {
            sys.load_program(p, gemm(24, 24, 24, 3).program().clone()).unwrap();
        }
        let mut engine: R2d3Engine = R2d3Engine::builder()
            .t_epoch(10_000)
            .t_test(2_000)
            .t_cal(40_000)
            .policy(PolicyKind::Lite)
            .checkpoint(None)
            .build()
            .unwrap();
        let mut rotations = 0;
        for _ in 0..12 {
            let events = engine.run_epoch(&mut sys).unwrap();
            rotations += events.iter().filter(|e| matches!(e, EngineEvent::Rotated { .. })).count();
        }
        assert!(rotations >= 2, "expected rotations, saw {rotations}");
        assert_eq!(engine.metrics().rotations, rotations as u64);
        assert_eq!(engine.metrics().rotation_churn.total(), rotations as u64);
        // After rotation with 6-of-8, spare layers 6/7 must have served.
        let busy67 = sys.stats().layer_busy(6) + sys.stats().layer_busy(7);
        assert!(busy67 > 0, "rotation never used the spare layers");
    }

    #[test]
    fn inconclusive_vote_quarantines_both_parties_and_forms_nothing() {
        // Two layers, one pipeline: when the DUT disagrees with its only
        // redundant EXU there is no third voter, so the verdict is
        // inconclusive, both EXUs are quarantined (the belief may be
        // wrong about one of them — the controller cannot tell), and
        // repair honestly forms zero pipelines.
        let sys_cfg = SystemConfig { layers: 2, pipelines: 1, ..Default::default() };
        let mut sys = System3d::new(&sys_cfg);
        sys.load_program(0, gemm(24, 24, 24, 1).program().clone()).unwrap();
        let mut engine: R2d3Engine = R2d3Engine::builder().build().unwrap();
        sys.inject_fault(StageId::new(0, Unit::Exu), FaultEffect { bit: 0, stuck: true }).unwrap();

        let mut inconclusive = false;
        let mut formed = None;
        for _ in 0..32 {
            let events = engine.run_epoch(&mut sys).unwrap();
            inconclusive |= events.iter().any(|e| matches!(e, EngineEvent::Inconclusive { .. }));
            if let Some(EngineEvent::Repaired { pipelines_formed }) =
                events.iter().find(|e| matches!(e, EngineEvent::Repaired { .. }))
            {
                formed = Some(*pipelines_formed);
                break;
            }
        }
        assert!(inconclusive, "two-party disagreement must be inconclusive");
        assert_eq!(formed, Some(0), "double quarantine leaves no formable pipeline");
        let metrics = engine.metrics();
        assert_eq!(metrics.inconclusives, 1);
        for l in 0..2 {
            assert!(
                metrics.believed_faulty.contains(&StageId::new(l, Unit::Exu)),
                "EXU@L{l} not quarantined"
            );
        }
        // The quarantined-but-possibly-healthy redundant EXU is isolated
        // along with the truly faulty DUT.
        assert_eq!(sys.fabric().stage_for(0, Unit::Exu), None);
    }

    #[test]
    fn intermittent_transients_escalate_to_quarantine() {
        // A duty-cycled fault that re-arms every epoch is classified
        // "transient" by every individual replay, yet the decaying
        // symptom history must eventually quarantine the stage.
        let sys_cfg = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&sys_cfg);
        for p in 0..6 {
            sys.load_program(p, gemm(24, 24, 24, p as u64 + 1).program().clone()).unwrap();
        }
        let mut engine: R2d3Engine =
            R2d3Engine::builder().t_epoch(4_000).t_test(4_000).build().unwrap();
        let flaky = StageId::new(1, Unit::Exu);

        let mut escalated = false;
        for _ in 0..16 {
            if !engine.is_believed_faulty(flaky) {
                sys.inject_transient(flaky, FaultEffect { bit: 0, stuck: true }).unwrap();
            }
            let events = engine.run_epoch(&mut sys).unwrap();
            if events
                .iter()
                .any(|e| matches!(e, EngineEvent::Escalated { stage } if *stage == flaky))
            {
                escalated = true;
                break;
            }
        }
        assert!(escalated, "intermittent never escalated");
        assert!(engine.is_believed_faulty(flaky));
        assert_eq!(engine.metrics().escalations, 1);
        // The quarantined stage serves no pipeline anymore.
        for p in 0..6 {
            assert_ne!(sys.fabric().stage_for(p, Unit::Exu), Some(flaky));
        }
    }

    #[test]
    fn transient_rollback_recovers_tainted_pipe() {
        let sys_cfg = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&sys_cfg);
        for p in 0..6 {
            sys.load_program(p, gemm(24, 24, 24, p as u64 + 1).program().clone()).unwrap();
        }
        let mut engine: R2d3Engine = R2d3Engine::builder()
            .t_epoch(4_000)
            .t_test(4_000)
            .checkpoint(Some(crate::checkpoint::CheckpointConfig {
                interval_epochs: 1,
                ..Default::default()
            }))
            .build()
            .unwrap();
        // Two clean epochs commit checkpoints for every pipeline.
        engine.run_epoch(&mut sys).unwrap();
        engine.run_epoch(&mut sys).unwrap();

        sys.inject_transient(StageId::new(1, Unit::Exu), FaultEffect { bit: 0, stuck: false })
            .unwrap();
        let mut recovered = false;
        for _ in 0..8 {
            let events = engine.run_epoch(&mut sys).unwrap();
            if events.iter().any(|e| matches!(e, EngineEvent::Transient { .. })) {
                recovered = events
                    .iter()
                    .any(|e| matches!(e, EngineEvent::Recovered { rolled_back: true, .. }));
                break;
            }
        }
        assert!(recovered, "tainted pipeline was not rolled back after the transient");
        for p in 0..6 {
            let pipe = sys.pipeline(p).unwrap();
            assert!(!pipe.tainted() && !pipe.crashed(), "pipeline {p} still corrupted");
        }
        let metrics = engine.metrics();
        assert!(metrics.believed_faulty.is_empty(), "no hardware should be quarantined");
        assert!(metrics.recoveries >= 1);
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_restart_with_event() {
        let sys_cfg = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&sys_cfg);
        for p in 0..6 {
            sys.load_program(p, gemm(24, 24, 24, p as u64 + 1).program().clone()).unwrap();
        }
        let mut engine: R2d3Engine = R2d3Engine::builder()
            .t_epoch(4_000)
            .t_test(4_000)
            .checkpoint(Some(crate::checkpoint::CheckpointConfig {
                interval_epochs: 2,
                ..Default::default()
            }))
            .build()
            .unwrap();
        // Two clean epochs: epoch 2 is the commit boundary.
        engine.run_epoch(&mut sys).unwrap();
        engine.run_epoch(&mut sys).unwrap();
        assert!(engine.has_committed_checkpoint(1));
        // The slot rots in storage, then a transient forces a recovery of
        // pipeline 1 before the next commit boundary can overwrite it.
        assert!(engine.corrupt_checkpoint(1, 0xBAD5EED));
        let dut = sys.fabric().stage_for(1, Unit::Exu).unwrap();
        sys.inject_transient(dut, FaultEffect { bit: 0, stuck: false }).unwrap();

        let events = engine.run_epoch(&mut sys).unwrap();
        assert!(
            events.iter().any(|e| matches!(e, EngineEvent::CheckpointCorrupt { pipe: 1 })),
            "corrupt checkpoint never detected: {events:?}"
        );
        // The poisoned slot must not have been restored: the pipeline
        // restarted from scratch instead, and the slot is gone.
        assert!(events
            .iter()
            .any(|e| matches!(e, EngineEvent::Recovered { pipe: 1, rolled_back: false })));
        assert!(!engine.has_committed_checkpoint(1));
        assert_eq!(sys.pipeline(1).unwrap().retired(), 0);
        assert!(!sys.pipeline(1).unwrap().tainted());
    }

    #[test]
    fn faulty_leftover_diagnosed_not_the_dut() {
        let (mut engine, mut sys) = engine_system(6);
        let bad = StageId::new(7, Unit::Exu); // a leftover layer
        sys.inject_fault(bad, FaultEffect { bit: 0, stuck: true }).unwrap();
        for _ in 0..32 {
            engine.run_epoch(&mut sys).unwrap();
            if !engine.metrics().believed_faulty.is_empty() {
                break;
            }
        }
        let believed = engine.metrics().believed_faulty;
        assert!(believed.contains(&bad), "leftover fault not localized");
        // No healthy DUT was condemned.
        assert_eq!(believed.len(), 1);
    }

    #[test]
    fn telemetry_records_the_whole_loop() {
        let sys_cfg = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&sys_cfg);
        for p in 0..6 {
            sys.load_program(p, gemm(24, 24, 24, p as u64 + 1).program().clone()).unwrap();
        }
        let mut engine = R2d3Engine::builder().telemetry(RingSink::new()).build().unwrap();
        let bad = StageId::new(2, Unit::Exu);
        sys.inject_fault(bad, FaultEffect { bit: 0, stuck: true }).unwrap();
        for _ in 0..32 {
            engine.run_epoch(&mut sys).unwrap();
            if engine.is_believed_faulty(bad) {
                break;
            }
        }
        let names: Vec<&str> =
            engine.telemetry().records().iter().map(|r| r.event.name()).collect();
        for expected in ["exec", "scan", "detect", "replay", "verdict", "reform", "epoch_end"] {
            assert!(names.contains(&expected), "no '{expected}' event recorded: {names:?}");
        }
        // Cycle stamps never decrease along the record stream.
        let cycles: Vec<u64> = engine.telemetry().records().iter().map(|r| r.cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "cycle stamps regressed");
    }

    #[test]
    fn verdicts_identical_with_and_without_telemetry() {
        // The determinism contract: the sink observes but never steers.
        let mk_sys = || {
            let sys_cfg = SystemConfig { pipelines: 6, ..Default::default() };
            let mut sys = System3d::new(&sys_cfg);
            for p in 0..6 {
                sys.load_program(p, gemm(24, 24, 24, p as u64 + 1).program().clone()).unwrap();
            }
            sys.inject_fault(StageId::new(2, Unit::Exu), FaultEffect { bit: 0, stuck: true })
                .unwrap();
            sys
        };
        let mut sys_a = mk_sys();
        let mut sys_b = mk_sys();
        let mut plain: R2d3Engine = R2d3Engine::builder().build().unwrap();
        let mut traced = R2d3Engine::builder().telemetry(RingSink::new()).build().unwrap();
        for _ in 0..16 {
            let ev_a = plain.run_epoch(&mut sys_a).unwrap();
            let ev_b = traced.run_epoch(&mut sys_b).unwrap();
            assert_eq!(ev_a, ev_b, "telemetry changed engine behavior");
        }
        assert_eq!(plain.metrics(), traced.metrics());
        assert!(!traced.telemetry().is_empty());
    }

    #[test]
    fn builder_rejects_invalid_config() {
        let err = R2d3Engine::builder().t_epoch(100).t_test(200).build::<System3d>();
        assert!(matches!(err, Err(EngineError::InvalidConfig(_))));
    }
}
