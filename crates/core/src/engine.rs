//! The R2D3 reconfiguration controller (cycle-level engine).

use crate::checkpoint::CheckpointManager;
use crate::config::R2d3Config;
use crate::detect::{epoch_scan, Detection, RedundantSource};
use crate::history::SymptomHistory;
use crate::policy::{select_assignment, PolicyKind, RotationState};
use crate::substrate::ReliabilitySubstrate;
use crate::EngineError;
use r2d3_isa::Unit;
use r2d3_pipeline_sim::{StageId, System3d};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Events the controller emitted during an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineEvent {
    /// A checker fired for this DUT stage.
    Symptom {
        /// The stage under test.
        dut: StageId,
        /// Pipeline that was using it.
        pipe: usize,
    },
    /// TMR replay did not reproduce the symptom: a soft error. Execution
    /// resumed after the single stalled cycle.
    Transient {
        /// The stage that produced the transient symptom.
        dut: StageId,
    },
    /// TMR replay reproduced the symptom and the vote localized a
    /// permanent fault.
    Permanent {
        /// The diagnosed faulty stage (may be the redundant stage!).
        stage: StageId,
    },
    /// The vote was inconclusive (multiple faulty participants); both
    /// comparison parties were quarantined.
    Inconclusive {
        /// DUT side.
        dut: StageId,
        /// Redundant side.
        redundant: StageId,
    },
    /// The controller reconfigured the crossbars.
    Repaired {
        /// Complete pipelines after repair.
        pipelines_formed: usize,
    },
    /// A detection test borrowed a stage from a running core.
    Suspended {
        /// The pipeline that lent its stage.
        pipe: usize,
        /// Unit borrowed.
        unit: Unit,
    },
    /// Calibration-window rotation was applied.
    Rotated {
        /// Calibration-window index.
        window: u64,
    },
    /// A stage's decaying symptom history crossed the escalation
    /// threshold: its "transient" verdicts recur too densely to be
    /// independent soft errors, so it is quarantined as an intermittent
    /// (hard) fault despite every individual replay voting transient.
    Escalated {
        /// The stage quarantined by symptom-history escalation.
        stage: StageId,
    },
    /// A pipeline corrupted by a transient was recovered in place
    /// (rollback to the last validated checkpoint, or program restart).
    Recovered {
        /// The recovered pipeline.
        pipe: usize,
        /// `true` for a checkpoint rollback, `false` for a restart.
        rolled_back: bool,
    },
    /// A committed checkpoint failed its integrity check during
    /// recovery; the slot was invalidated and the pipeline restarted.
    CheckpointCorrupt {
        /// Pipeline whose checkpoint was found corrupt.
        pipe: usize,
    },
}

/// The R2D3 reconfiguration controller.
///
/// Owns the engine's *belief* about stage health (built from diagnosis
/// outcomes — the controller never peeks at ground truth), the rotation
/// state, and the epoch/calibration clocks. Drives any
/// [`ReliabilitySubstrate`] via [`run_epoch`](R2d3Engine::run_epoch);
/// the default substrate is the behavioral [`System3d`], the alternative
/// is the gate-level [`crate::substrate::NetlistSubstrate`].
pub struct R2d3Engine<S: ReliabilitySubstrate = System3d> {
    config: R2d3Config,
    believed_faulty: HashSet<StageId>,
    rotation: Option<RotationState>,
    checkpoints: Option<CheckpointManager<S::Checkpoint>>,
    history: SymptomHistory,
    epochs: u64,
    windows: u64,
    transients_seen: u64,
    permanents_diagnosed: u64,
    escalations: u64,
}

impl<S: ReliabilitySubstrate> Clone for R2d3Engine<S> {
    fn clone(&self) -> Self {
        R2d3Engine {
            config: self.config,
            believed_faulty: self.believed_faulty.clone(),
            rotation: self.rotation.clone(),
            checkpoints: self.checkpoints.clone(),
            history: self.history.clone(),
            epochs: self.epochs,
            windows: self.windows,
            transients_seen: self.transients_seen,
            permanents_diagnosed: self.permanents_diagnosed,
            escalations: self.escalations,
        }
    }
}

impl<S: ReliabilitySubstrate> std::fmt::Debug for R2d3Engine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("R2d3Engine")
            .field("config", &self.config)
            .field("believed_faulty", &self.believed_faulty)
            .field("rotation", &self.rotation)
            .field("checkpoints", &self.checkpoints)
            .field("history", &self.history)
            .field("epochs", &self.epochs)
            .field("windows", &self.windows)
            .field("transients_seen", &self.transients_seen)
            .field("permanents_diagnosed", &self.permanents_diagnosed)
            .field("escalations", &self.escalations)
            .finish()
    }
}

impl<S: ReliabilitySubstrate> R2d3Engine<S> {
    /// Creates a controller with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`R2d3Config::validate`]); use `validate` first for a fallible
    /// path.
    #[must_use]
    pub fn new(config: &R2d3Config) -> Self {
        config.validate().expect("invalid R2D3 configuration");
        R2d3Engine {
            config: *config,
            believed_faulty: HashSet::new(),
            rotation: None,
            checkpoints: None,
            history: SymptomHistory::new(),
            epochs: 0,
            windows: 0,
            transients_seen: 0,
            permanents_diagnosed: 0,
            escalations: 0,
        }
    }

    /// Checkpoint/recovery statistics, when checkpointing is enabled.
    #[must_use]
    pub fn checkpoint_stats(&self) -> Option<crate::checkpoint::CheckpointStats> {
        self.checkpoints.as_ref().map(|m| *m.stats())
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &R2d3Config {
        &self.config
    }

    /// Stages the controller has diagnosed as permanently faulty.
    #[must_use]
    pub fn believed_faulty(&self) -> &HashSet<StageId> {
        &self.believed_faulty
    }

    /// Epochs executed.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Transient faults classified so far.
    #[must_use]
    pub fn transients_seen(&self) -> u64 {
        self.transients_seen
    }

    /// Permanent faults diagnosed so far.
    #[must_use]
    pub fn permanents_diagnosed(&self) -> u64 {
        self.permanents_diagnosed
    }

    /// Stages quarantined by symptom-history escalation so far.
    #[must_use]
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Current decayed symptom score of a stage, in 1/1024 symptom units
    /// ([`crate::history::SYMPTOM_SCALE`]).
    #[must_use]
    pub fn symptom_score(&self, stage: StageId) -> u64 {
        self.history.score(stage)
    }

    /// Whether `pipe` currently holds a committed checkpoint.
    #[must_use]
    pub fn has_committed_checkpoint(&self, pipe: usize) -> bool {
        self.checkpoints.as_ref().is_some_and(|m| m.has_checkpoint(pipe))
    }

    /// Flips one seed-selected bit in `pipe`'s committed checkpoint
    /// payload — fault-injection ground truth modeling the checkpoint
    /// store rotting between commit and recovery (the campaign harness's
    /// lever; the engine itself never corrupts its own store). Returns
    /// whether a committed slot existed to corrupt.
    pub fn corrupt_checkpoint(&mut self, pipe: usize, seed: u64) -> bool {
        self.checkpoints
            .as_mut()
            .is_some_and(|m| m.corrupt_slot_with(pipe, |cp| S::corrupt_checkpoint(cp, seed)))
    }

    /// Runs one epoch: `T_epoch` cycles of execution, then the detection /
    /// diagnosis / repair sequence, then (at calibration boundaries) the
    /// policy rotation.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn run_epoch(&mut self, sys: &mut S) -> Result<Vec<EngineEvent>, EngineError> {
        sys.run(self.config.t_epoch)?;
        self.epochs += 1;
        let mut events = Vec::new();

        // --- detection ---------------------------------------------------
        let detections = epoch_scan(sys, &self.config, &self.believed_faulty, self.epochs);
        let mut need_repair = false;
        for d in &detections {
            events.push(EngineEvent::Symptom { dut: d.dut, pipe: d.pipe });
            if let RedundantSource::SuspendedCore { pipe } = d.source {
                events.push(EngineEvent::Suspended { pipe, unit: d.unit });
            }
            need_repair |= self.diagnose(sys, d, &mut events);
        }
        if let Some(esc) = self.config.escalation {
            self.history.decay(&esc);
        }

        // --- checkpoint commit (only after a clean scan) -------------------
        if detections.is_empty() {
            if let Some(cfg) = self.config.checkpoint {
                let epoch = self.epochs;
                let mgr = self
                    .checkpoints
                    .get_or_insert_with(|| CheckpointManager::new(cfg, sys.pipeline_count()));
                if mgr.is_commit_epoch(epoch) {
                    mgr.commit_all(sys)?;
                }
            }
        }

        // --- repair -------------------------------------------------------
        if need_repair {
            let formed = self.reconfigure(sys, false, &mut events)?;
            events.push(EngineEvent::Repaired { pipelines_formed: formed });
        } else if self.config.rollback_on_transient
            && events.iter().any(|e| matches!(e, EngineEvent::Transient { .. }))
        {
            // --- transient rollback ---------------------------------------
            // The upset was classified correctly, but its corruption is
            // already in architectural state; without this the engine
            // "classifies and forgets" and the taint runs to completion.
            for p in 0..sys.pipeline_count() {
                if sys.pipeline_corrupted(p) {
                    let rolled_back = self.recover_pipe(sys, p, &mut events)?;
                    events.push(EngineEvent::Recovered { pipe: p, rolled_back });
                }
            }
        }

        // --- calibration-window rotation -----------------------------------
        if self.config.policy.rotates() {
            let window = sys.now() / self.config.t_cal;
            if window > self.windows {
                self.windows = window;
                self.reconfigure(sys, true, &mut events)?;
                events.push(EngineEvent::Rotated { window });
            }
        }

        Ok(events)
    }

    /// Recovers one pipeline: checkpoint rollback when a validated slot
    /// exists, program restart otherwise. A slot that fails its integrity
    /// check is surfaced as a [`EngineEvent::CheckpointCorrupt`] event,
    /// invalidated (by the manager) and the recovery retried, which then
    /// takes the restart path. Returns whether a rollback was used.
    fn recover_pipe(
        &mut self,
        sys: &mut S,
        pipe: usize,
        events: &mut Vec<EngineEvent>,
    ) -> Result<bool, EngineError> {
        let Some(mgr) = &mut self.checkpoints else {
            sys.restart_program(pipe)?;
            return Ok(false);
        };
        let had_checkpoint = mgr.has_checkpoint(pipe);
        match mgr.recover(sys, pipe) {
            Ok(()) => Ok(had_checkpoint),
            Err(EngineError::CorruptCheckpoint { .. }) => {
                events.push(EngineEvent::CheckpointCorrupt { pipe });
                // The slot is gone; this retry restarts the program.
                mgr.recover(sys, pipe)?;
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Single-replay TMR diagnosis (§III-C): stall one cycle, replay the
    /// symptom-generating operation on the two disagreeing stages plus a
    /// known-good third stage, and vote. Returns whether a permanent fault
    /// was diagnosed (repair needed).
    fn diagnose(&mut self, sys: &S, d: &Detection, events: &mut Vec<EngineEvent>) -> bool {
        let record = &d.symptom.record;
        // Replay: permanent effects persist; one-shot transients do not
        // recur (they were consumed when they fired).
        let out_dut = sys.replay_output(d.dut, record);
        let out_red = sys.replay_output(d.redundant, record);

        if out_dut == out_red {
            // Symptom did not recur: a soft error was detected. Resume —
            // unless this stage's "soft errors" have been recurring too
            // densely to be independent upsets, in which case the decaying
            // symptom history escalates it to an intermittent hard fault.
            self.transients_seen += 1;
            events.push(EngineEvent::Transient { dut: d.dut });
            if let Some(esc) = self.config.escalation {
                if self.history.record(d.dut, &esc) {
                    self.history.forget(d.dut);
                    self.escalations += 1;
                    events.push(EngineEvent::Escalated { stage: d.dut });
                    return self.believed_faulty.insert(d.dut);
                }
            }
            return false;
        }

        // Hard fault: bring in a third stage to vote. An inconclusive
        // three-way split may mean the *third voter* is itself faulty, so
        // retry with other distinct voters (bounded by
        // `inconclusive_retries`) before giving up on the pair.
        let mut tried: Vec<StageId> = Vec::new();
        let mut majority_faulty: Option<Vec<StageId>> = None;
        while tried.len() <= self.config.inconclusive_retries as usize {
            let Some(third) = self.pick_third(sys, d, &tried) else {
                break;
            };
            tried.push(third);
            let out_third = sys.replay_output(third, record);
            let (a, b, c) = (out_dut, out_red, out_third);
            let majority = if a == b || a == c {
                Some(a)
            } else if b == c {
                Some(b)
            } else {
                None
            };
            if let Some(m) = majority {
                majority_faulty = Some(
                    [(d.dut, a), (d.redundant, b), (third, c)]
                        .iter()
                        .filter(|(_, o)| *o != m)
                        .map(|(s, _)| *s)
                        .collect(),
                );
                break;
            }
        }

        let faulty = majority_faulty.unwrap_or_else(|| {
            // No voter pool or every vote split three ways: quarantine
            // both comparison parties.
            events.push(EngineEvent::Inconclusive { dut: d.dut, redundant: d.redundant });
            vec![d.dut, d.redundant]
        });

        let mut diagnosed = false;
        for s in faulty {
            if self.believed_faulty.insert(s) {
                self.history.forget(s);
                self.permanents_diagnosed += 1;
                events.push(EngineEvent::Permanent { stage: s });
                diagnosed = true;
            }
        }
        diagnosed
    }

    /// A believed-healthy stage of the same unit, distinct from the two
    /// comparison parties and from already-consulted voters.
    fn pick_third(&self, sys: &S, d: &Detection, exclude: &[StageId]) -> Option<StageId> {
        (0..sys.layers()).map(|l| StageId::new(l, d.unit)).find(|s| {
            *s != d.dut
                && *s != d.redundant
                && !exclude.contains(s)
                && !self.believed_faulty.contains(s)
                && sys.stage_usable(*s)
        })
    }

    /// Re-forms the fabric from believed-healthy stages; `rotation` selects
    /// whether the policy's rotation ordering applies (calibration window)
    /// or the canonical repair formation.
    fn reconfigure(
        &mut self,
        sys: &mut S,
        rotation: bool,
        events: &mut Vec<EngineEvent>,
    ) -> Result<usize, EngineError> {
        let layers = sys.layers();
        let pipelines = sys.pipeline_count();
        let believed = self.believed_faulty.clone();
        let usable = move |s: StageId| !believed.contains(&s);

        let kind = if rotation { self.config.policy } else { PolicyKind::Static };
        let rotation_state = self.rotation.get_or_insert_with(|| RotationState::new(layers));
        let formed = select_assignment(kind, layers, &usable, pipelines, rotation_state);

        // Tear down and rebuild the crossbar map.
        for p in 0..pipelines {
            for u in Unit::ALL {
                sys.unassign(p, u)?;
            }
        }
        for (p, fp) in formed.iter().enumerate() {
            for u in Unit::ALL {
                sys.assign(p, u, fp.layer_of[u.index()])?;
            }
        }

        if !rotation {
            // Post-repair recovery: roll corrupted pipelines back to their
            // last committed checkpoint (or restart without one). Stale
            // pre-repair trace records need no explicit flush: the belief
            // set already excludes diagnosed stages, and `epoch_scan`
            // skips believed-faulty DUTs.
            for p in 0..pipelines {
                if sys.pipeline_corrupted(p) {
                    self.recover_pipe(sys, p, events)?;
                }
            }
            // Power-gate diagnosed stages so they never serve again.
            for s in &self.believed_faulty {
                if sys.stage_usable(*s) {
                    // The belief may be wrong (inconclusive vote): still
                    // isolate the stage, mirroring the controller's view.
                    sys.power_off(*s)?;
                }
            }
        }
        Ok(formed.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d3_isa::kernels::{gemm, gemv};
    use r2d3_pipeline_sim::{FaultEffect, SystemConfig};

    fn engine_system(pipelines: usize) -> (R2d3Engine, System3d) {
        let config = SystemConfig { pipelines, ..Default::default() };
        let mut sys = System3d::new(&config);
        for p in 0..pipelines {
            // Long-running kernels so epochs always have work.
            sys.load_program(p, gemm(24, 24, 24, p as u64 + 1).program().clone()).unwrap();
        }
        (R2d3Engine::new(&R2d3Config::default()), sys)
    }

    #[test]
    fn detects_diagnoses_and_repairs_permanent_fault() {
        let (mut engine, mut sys) = engine_system(6);
        let bad = StageId::new(2, Unit::Exu);
        sys.inject_fault(bad, FaultEffect { bit: 0, stuck: true }).unwrap();

        let mut repaired = false;
        for _ in 0..32 {
            let events = engine.run_epoch(&mut sys).unwrap();
            if events.iter().any(|e| matches!(e, EngineEvent::Repaired { .. })) {
                repaired = true;
                break;
            }
        }
        assert!(repaired, "engine never repaired");
        assert!(engine.believed_faulty().contains(&bad));
        // The faulty stage serves no pipeline anymore.
        for p in 0..6 {
            assert_ne!(sys.fabric().stage_for(p, Unit::Exu), Some(bad));
        }
        // Six pipelines still formed (7 healthy EXUs remain).
        assert_eq!(sys.fabric().complete_pipelines(), 6);
    }

    #[test]
    fn transient_classified_without_repair() {
        // Short epochs so the transient's record is still inside the
        // trace ring / test window when the epoch ends (a transient that
        // fires long before the comparison window is invisible — the
        // paper's detection is concurrent, not retroactive).
        let cfg = R2d3Config { t_epoch: 4_000, t_test: 4_000, ..Default::default() };
        let sys_cfg = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&sys_cfg);
        for p in 0..6 {
            sys.load_program(p, gemm(24, 24, 24, p as u64 + 1).program().clone()).unwrap();
        }
        let mut engine = R2d3Engine::new(&cfg);
        sys.inject_transient(StageId::new(1, Unit::Exu), FaultEffect { bit: 0, stuck: true })
            .unwrap();

        let mut transient = false;
        for _ in 0..16 {
            let events = engine.run_epoch(&mut sys).unwrap();
            if events.iter().any(|e| matches!(e, EngineEvent::Transient { .. })) {
                transient = true;
                assert!(
                    !events.iter().any(|e| matches!(e, EngineEvent::Permanent { .. })),
                    "transient misdiagnosed as permanent"
                );
                break;
            }
        }
        assert!(transient, "transient never detected");
        assert!(engine.believed_faulty().is_empty());
        assert_eq!(engine.transients_seen(), 1);
    }

    #[test]
    fn healthy_system_never_repairs() {
        let (mut engine, mut sys) = engine_system(6);
        for _ in 0..8 {
            let events = engine.run_epoch(&mut sys).unwrap();
            assert!(events.is_empty(), "spurious events: {events:?}");
        }
        assert_eq!(engine.permanents_diagnosed(), 0);
    }

    #[test]
    fn corrupted_program_restarts_and_finishes_correctly() {
        let config = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&config);
        let kernel = gemv(16, 16, 5);
        for p in 0..6 {
            sys.load_program(p, kernel.program().clone()).unwrap();
        }
        let mut engine = R2d3Engine::new(&R2d3Config::default());
        let bad = StageId::new(0, Unit::Ffu);
        sys.inject_fault(bad, FaultEffect { bit: 12, stuck: true }).unwrap();

        for _ in 0..64 {
            engine.run_epoch(&mut sys).unwrap();
            if (0..6).all(|p| sys.pipeline(p).unwrap().halted()) {
                break;
            }
        }
        for p in 0..6 {
            let pipe = sys.pipeline(p).unwrap();
            assert!(pipe.halted(), "pipeline {p} unfinished");
            assert!(kernel.verify(pipe.memory()), "pipeline {p} finished with corrupted results");
        }
    }

    #[test]
    fn rotation_happens_at_calibration_boundaries() {
        let cfg = R2d3Config {
            t_epoch: 10_000,
            t_test: 2_000,
            t_cal: 40_000,
            policy: PolicyKind::Lite,
            suspend_when_no_leftover: true,
            checkpoint: None,
            ..Default::default()
        };
        let sys_cfg = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&sys_cfg);
        for p in 0..6 {
            sys.load_program(p, gemm(24, 24, 24, 3).program().clone()).unwrap();
        }
        let mut engine = R2d3Engine::new(&cfg);
        let mut rotations = 0;
        for _ in 0..12 {
            let events = engine.run_epoch(&mut sys).unwrap();
            rotations += events.iter().filter(|e| matches!(e, EngineEvent::Rotated { .. })).count();
        }
        assert!(rotations >= 2, "expected rotations, saw {rotations}");
        // After rotation with 6-of-8, spare layers 6/7 must have served.
        let busy67 = sys.stats().layer_busy(6) + sys.stats().layer_busy(7);
        assert!(busy67 > 0, "rotation never used the spare layers");
    }

    #[test]
    fn inconclusive_vote_quarantines_both_parties_and_forms_nothing() {
        // Two layers, one pipeline: when the DUT disagrees with its only
        // redundant EXU there is no third voter, so the verdict is
        // inconclusive, both EXUs are quarantined (the belief may be
        // wrong about one of them — the controller cannot tell), and
        // repair honestly forms zero pipelines.
        let sys_cfg = SystemConfig { layers: 2, pipelines: 1, ..Default::default() };
        let mut sys = System3d::new(&sys_cfg);
        sys.load_program(0, gemm(24, 24, 24, 1).program().clone()).unwrap();
        let mut engine = R2d3Engine::new(&R2d3Config::default());
        sys.inject_fault(StageId::new(0, Unit::Exu), FaultEffect { bit: 0, stuck: true }).unwrap();

        let mut inconclusive = false;
        let mut formed = None;
        for _ in 0..32 {
            let events = engine.run_epoch(&mut sys).unwrap();
            inconclusive |= events.iter().any(|e| matches!(e, EngineEvent::Inconclusive { .. }));
            if let Some(EngineEvent::Repaired { pipelines_formed }) =
                events.iter().find(|e| matches!(e, EngineEvent::Repaired { .. }))
            {
                formed = Some(*pipelines_formed);
                break;
            }
        }
        assert!(inconclusive, "two-party disagreement must be inconclusive");
        assert_eq!(formed, Some(0), "double quarantine leaves no formable pipeline");
        for l in 0..2 {
            assert!(
                engine.believed_faulty().contains(&StageId::new(l, Unit::Exu)),
                "EXU@L{l} not quarantined"
            );
        }
        // The quarantined-but-possibly-healthy redundant EXU is isolated
        // along with the truly faulty DUT.
        assert_eq!(sys.fabric().stage_for(0, Unit::Exu), None);
    }

    #[test]
    fn intermittent_transients_escalate_to_quarantine() {
        // A duty-cycled fault that re-arms every epoch is classified
        // "transient" by every individual replay, yet the decaying
        // symptom history must eventually quarantine the stage.
        let cfg = R2d3Config { t_epoch: 4_000, t_test: 4_000, ..Default::default() };
        let sys_cfg = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&sys_cfg);
        for p in 0..6 {
            sys.load_program(p, gemm(24, 24, 24, p as u64 + 1).program().clone()).unwrap();
        }
        let mut engine = R2d3Engine::new(&cfg);
        let flaky = StageId::new(1, Unit::Exu);

        let mut escalated = false;
        for _ in 0..16 {
            if !engine.believed_faulty().contains(&flaky) {
                sys.inject_transient(flaky, FaultEffect { bit: 0, stuck: true }).unwrap();
            }
            let events = engine.run_epoch(&mut sys).unwrap();
            if events
                .iter()
                .any(|e| matches!(e, EngineEvent::Escalated { stage } if *stage == flaky))
            {
                escalated = true;
                break;
            }
        }
        assert!(escalated, "intermittent never escalated");
        assert!(engine.believed_faulty().contains(&flaky));
        assert_eq!(engine.escalations(), 1);
        // The quarantined stage serves no pipeline anymore.
        for p in 0..6 {
            assert_ne!(sys.fabric().stage_for(p, Unit::Exu), Some(flaky));
        }
    }

    #[test]
    fn transient_rollback_recovers_tainted_pipe() {
        let cfg = R2d3Config {
            t_epoch: 4_000,
            t_test: 4_000,
            checkpoint: Some(crate::checkpoint::CheckpointConfig {
                interval_epochs: 1,
                ..Default::default()
            }),
            ..Default::default()
        };
        let sys_cfg = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&sys_cfg);
        for p in 0..6 {
            sys.load_program(p, gemm(24, 24, 24, p as u64 + 1).program().clone()).unwrap();
        }
        let mut engine = R2d3Engine::new(&cfg);
        // Two clean epochs commit checkpoints for every pipeline.
        engine.run_epoch(&mut sys).unwrap();
        engine.run_epoch(&mut sys).unwrap();

        sys.inject_transient(StageId::new(1, Unit::Exu), FaultEffect { bit: 0, stuck: false })
            .unwrap();
        let mut recovered = false;
        for _ in 0..8 {
            let events = engine.run_epoch(&mut sys).unwrap();
            if events.iter().any(|e| matches!(e, EngineEvent::Transient { .. })) {
                recovered = events
                    .iter()
                    .any(|e| matches!(e, EngineEvent::Recovered { rolled_back: true, .. }));
                break;
            }
        }
        assert!(recovered, "tainted pipeline was not rolled back after the transient");
        for p in 0..6 {
            let pipe = sys.pipeline(p).unwrap();
            assert!(!pipe.tainted() && !pipe.crashed(), "pipeline {p} still corrupted");
        }
        assert!(engine.believed_faulty().is_empty(), "no hardware should be quarantined");
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_restart_with_event() {
        let cfg = R2d3Config {
            t_epoch: 4_000,
            t_test: 4_000,
            checkpoint: Some(crate::checkpoint::CheckpointConfig {
                interval_epochs: 2,
                ..Default::default()
            }),
            ..Default::default()
        };
        let sys_cfg = SystemConfig { pipelines: 6, ..Default::default() };
        let mut sys = System3d::new(&sys_cfg);
        for p in 0..6 {
            sys.load_program(p, gemm(24, 24, 24, p as u64 + 1).program().clone()).unwrap();
        }
        let mut engine = R2d3Engine::new(&cfg);
        // Two clean epochs: epoch 2 is the commit boundary.
        engine.run_epoch(&mut sys).unwrap();
        engine.run_epoch(&mut sys).unwrap();
        assert!(engine.has_committed_checkpoint(1));
        // The slot rots in storage, then a transient forces a recovery of
        // pipeline 1 before the next commit boundary can overwrite it.
        assert!(engine.corrupt_checkpoint(1, 0xBAD5EED));
        let dut = sys.fabric().stage_for(1, Unit::Exu).unwrap();
        sys.inject_transient(dut, FaultEffect { bit: 0, stuck: false }).unwrap();

        let events = engine.run_epoch(&mut sys).unwrap();
        assert!(
            events.iter().any(|e| matches!(e, EngineEvent::CheckpointCorrupt { pipe: 1 })),
            "corrupt checkpoint never detected: {events:?}"
        );
        // The poisoned slot must not have been restored: the pipeline
        // restarted from scratch instead, and the slot is gone.
        assert!(events
            .iter()
            .any(|e| matches!(e, EngineEvent::Recovered { pipe: 1, rolled_back: false })));
        assert!(!engine.has_committed_checkpoint(1));
        assert_eq!(sys.pipeline(1).unwrap().retired(), 0);
        assert!(!sys.pipeline(1).unwrap().tainted());
    }

    #[test]
    fn faulty_leftover_diagnosed_not_the_dut() {
        let (mut engine, mut sys) = engine_system(6);
        let bad = StageId::new(7, Unit::Exu); // a leftover layer
        sys.inject_fault(bad, FaultEffect { bit: 0, stuck: true }).unwrap();
        for _ in 0..32 {
            engine.run_epoch(&mut sys).unwrap();
            if !engine.believed_faulty().is_empty() {
                break;
            }
        }
        assert!(engine.believed_faulty().contains(&bad), "leftover fault not localized");
        // No healthy DUT was condemned.
        assert_eq!(engine.believed_faulty().len(), 1);
    }
}
