//! Inter-stage checkers: output comparison between a DUT stage and a
//! redundant (leftover) stage.
//!
//! §III-C: "we use simple inter-stage checkers at the output of the
//! pipeline stages… If the input of two similar stages in two different
//! layers are the same, the output of the two should be identical too.
//! If not, a fault has been detected."
//!
//! In the simulation, every trace record carries the operation's golden
//! output and the DUT's actual output. A redundant stage re-executing the
//! same inputs produces `effect_redundant(golden)` (its own permanent
//! fault effect applied to the golden value, or the golden value itself
//! when healthy). The checker flags the first record where the two
//! disagree.

use r2d3_pipeline_sim::{FaultEffect, StageRecord};
use serde::{Deserialize, Serialize};

/// A detected symptom: the record on which DUT and redundant outputs
/// disagreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Symptom {
    /// The disagreeing record.
    pub record: StageRecord,
    /// Output the redundant stage produced during re-execution.
    pub redundant_output: u32,
}

/// Output a stage with optional permanent `effect` produces for a golden
/// value.
#[must_use]
pub fn stage_output(effect: Option<FaultEffect>, golden: u32) -> u32 {
    effect.map_or(golden, |e| e.apply(golden))
}

/// Full comparison of one window: the first symptom (if any) plus the
/// window's mismatch density, the discriminator between a stage fault
/// that strikes once per window and a path (TSV/crossbar) fault that
/// corrupts a large fraction of every transfer it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowComparison {
    /// The first disagreeing record, if any.
    pub symptom: Option<Symptom>,
    /// Records on which DUT and redundant outputs disagreed.
    pub mismatches: u32,
    /// Records compared.
    pub compared: u32,
}

/// Compares a window of DUT records against re-execution on a redundant
/// stage, where `replay` produces the redundant stage's output for a
/// record — the substrate-generic checker primitive
/// ([`crate::substrate::ReliabilitySubstrate::replay_output`]). Returns
/// the first symptom, if any.
pub fn compare_window_by(
    window: &[StageRecord],
    replay: impl FnMut(&StageRecord) -> u32,
) -> Option<Symptom> {
    compare_window_counted(window, replay).symptom
}

/// [`compare_window_by`] plus mismatch accounting over the whole window.
/// Every record is replayed regardless of where the first symptom falls,
/// so the mismatch density is comparable across windows.
pub fn compare_window_counted(
    window: &[StageRecord],
    mut replay: impl FnMut(&StageRecord) -> u32,
) -> WindowComparison {
    let mut symptom = None;
    let mut mismatches = 0u32;
    for record in window {
        let redundant_output = replay(record);
        if redundant_output != record.actual_output {
            mismatches += 1;
            if symptom.is_none() {
                symptom = Some(Symptom { record: *record, redundant_output });
            }
        }
    }
    WindowComparison { symptom, mismatches, compared: window.len() as u32 }
}

/// Compares a window of DUT records against re-execution on a behavioral
/// redundant stage with (optional) permanent fault `redundant_effect`.
/// Returns the first symptom, if any.
#[must_use]
pub fn compare_window(
    window: &[StageRecord],
    redundant_effect: Option<FaultEffect>,
) -> Option<Symptom> {
    compare_window_by(window, |record| stage_output(redundant_effect, record.golden_output))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(golden: u32, actual: u32) -> StageRecord {
        StageRecord { cycle: 0, input_sig: 1, golden_output: golden, actual_output: actual }
    }

    #[test]
    fn healthy_pair_never_fires() {
        let window = [rec(5, 5), rec(9, 9)];
        assert_eq!(compare_window(&window, None), None);
    }

    #[test]
    fn faulty_dut_detected_when_fault_manifests() {
        // DUT has SA1 on bit 0: only the even golden value manifests it.
        let window = [rec(1, 1), rec(2, 3)];
        let s = compare_window(&window, None).expect("must detect");
        assert_eq!(s.record.golden_output, 2);
        assert_eq!(s.redundant_output, 2);
    }

    #[test]
    fn faulty_leftover_also_fires() {
        // DUT healthy, leftover has SA0 on bit 1.
        let window = [rec(2, 2)];
        let eff = FaultEffect { bit: 1, stuck: false };
        let s = compare_window(&window, Some(eff)).expect("must detect");
        assert_eq!(s.redundant_output, 0);
        assert_eq!(s.record.actual_output, 2);
    }

    #[test]
    fn identical_faults_mask_each_other() {
        // Both stages share the same stuck-at: undetectable by comparison
        // (the checkers' known blind spot; a third stage in the TMR replay
        // breaks the tie when a symptom does surface elsewhere).
        let eff = FaultEffect { bit: 0, stuck: true };
        let window = [rec(2, 3)]; // DUT actual corrupted by eff
        assert_eq!(compare_window(&window, Some(eff)), None);
    }

    #[test]
    fn nonmanifesting_fault_is_silent() {
        // Golden already has bit 0 set: SA1 on bit 0 never shows.
        let window = [rec(3, 3), rec(7, 7)];
        assert_eq!(compare_window(&window, None), None);
    }
}
