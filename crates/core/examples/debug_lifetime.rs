use r2d3_core::lifetime::*;
use r2d3_core::policy::PolicyKind;
use r2d3_thermal::GridConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let months: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(96);
    let base: f64 = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(0.0022);
    let scale: f64 = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(0.055);
    let demand: f64 = args.get(4).and_then(|v| v.parse().ok()).unwrap_or(0.75);
    let mut last: Vec<(String, f64, f64, f64)> = Vec::new();
    for policy in [PolicyKind::NoRecon, PolicyKind::Static, PolicyKind::Lite, PolicyKind::Pro] {
        let cfg = LifetimeConfig {
            months,
            replicas: std::env::var("REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(8),
            mttf_trials: 300,
            grid: GridConfig { nx: 8, ny: 6, ..Default::default() },
            reliability: ReliabilityParams {
                base_rate_per_month: base,
                vth_accel_scale: scale,
                fault_ea_ev: std::env::var("FAULT_EA")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.35),
                ..Default::default()
            },
            ..LifetimeConfig::new(policy, demand, 0.85)
        };
        let out = LifetimeSim::new(cfg).run().unwrap();
        let s = &out.series;
        print!("{:9} mttf:", policy.name());
        for m in (0..months).step_by(24).chain([months - 1]) {
            print!(" {:6.1}", s.mttf_months[m]);
        }
        print!("  ipc:");
        for m in (0..months).step_by(24).chain([months - 1]) {
            print!(" {:4.2}", s.norm_ipc[m]);
        }
        println!("  maxVth={:.3}", s.max_vth.last().unwrap());
        let avg_ipc: f64 = s.norm_ipc.iter().sum::<f64>() / s.norm_ipc.len() as f64;
        last.push((
            policy.name().to_string(),
            *s.mttf_months.last().unwrap(),
            *s.norm_ipc.last().unwrap(),
            avg_ipc,
        ));
    }
    let nr = &last[0];
    println!("ratios at end: MTTF Lite/NR={:.2} Pro/NR={:.2} | IPC Static/NR={:.2} Lite/NR={:.2} Pro/NR={:.2}",
        last[2].1/nr.1, last[3].1/nr.1, last[1].2/nr.2, last[2].2/nr.2, last[3].2/nr.2);
    println!(
        "time-avg IPC: NR={:.3} St={:.3} Li={:.3} Pro={:.3}  Pro/NR={:.2} Pro/St={:.2} Li/St={:.2}",
        last[0].3,
        last[1].3,
        last[2].3,
        last[3].3,
        last[3].3 / last[0].3,
        last[3].3 / last[1].3,
        last[2].3 / last[1].3
    );
}
