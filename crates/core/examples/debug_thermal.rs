use r2d3_isa::Unit;
use r2d3_thermal::*;
fn main() {
    let fp = Floorplan::opensparc_3d(8);
    let grid = ThermalGrid::new(&fp, &GridConfig { nx: 8, ny: 6, ..Default::default() });
    let mut p = PowerMap::new(&fp);
    let unit_w = [0.115, 0.023, 0.044, 0.010, 0.003];
    for layer in 0..8 {
        for (i, u) in Unit::ALL.iter().enumerate() {
            p.set_block(layer, *u, unit_w[i]);
        }
    }
    match grid.steady_state(&p) {
        Ok(t) => {
            for l in [0, 7] {
                println!("layer {l}: avg {:.1} max {:.1}", t.layer_avg(l), t.layer_max(l));
            }
        }
        Err(e) => println!("ERR {e}"),
    }
}
