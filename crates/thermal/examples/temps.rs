use r2d3_isa::Unit;
use r2d3_thermal::*;
fn main() {
    let fp = Floorplan::opensparc_3d(8);
    let grid = ThermalGrid::new(&fp, &GridConfig::default());
    let mut p = PowerMap::new(&fp);
    // Table III unit powers (W): IFU .115, EXU .023, LSU .044, TLU .010, FFU .003 => 0.195/core (+caches excluded)
    let unit_w = [0.115, 0.023, 0.044, 0.010, 0.003];
    for layer in 0..8 {
        for (i, u) in Unit::ALL.iter().enumerate() {
            p.set_block(layer, *u, unit_w[i]);
        }
    }
    let t = grid.steady_state(&p).unwrap();
    for layer in 0..8 {
        println!("layer {layer}: avg {:.1} max {:.1}", t.layer_avg(layer), t.layer_max(layer));
    }
    println!("total power {:.2} W", p.total());
}
