//! Floorplans: per-layer block placements for the 3D stack.

use r2d3_isa::Unit;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle in chip coordinates (meters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl Rect {
    /// Width of the rectangle.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height of the rectangle.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area in m².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Overlap area with another rectangle.
    #[must_use]
    pub fn overlap(&self, other: &Rect) -> f64 {
        let w = (self.x1.min(other.x1) - self.x0.max(other.x0)).max(0.0);
        let h = (self.y1.min(other.y1) - self.y0.max(other.y0)).max(0.0);
        w * h
    }
}

/// Identifies one block: a pipeline unit on a given vertical layer.
///
/// Layer 0 is the tier closest to the heat sink (the paper inserts the
/// reconfiguration controller at that layer); higher layers are farther
/// from the sink and run hotter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId {
    /// Vertical tier index (0 = closest to heat sink).
    pub layer: usize,
    /// Which pipeline unit.
    pub unit: Unit,
}

/// A complete 3D floorplan: the same per-tier unit placement replicated on
/// every layer (the paper stacks *corresponding* pipeline stages
/// vertically so the crossbars span minimal distance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    layers: usize,
    chip_width: f64,
    chip_height: f64,
    blocks: Vec<(Unit, Rect)>,
}

impl Floorplan {
    /// Builds the OpenSPARC T1 3D floorplan used throughout the paper:
    /// `layers` identical tiers, each carrying the five pipeline units
    /// with Table III area proportions on a 0.387 mm² die.
    ///
    /// The per-tier layout is a two-row arrangement:
    ///
    /// ```text
    /// +--------+-----+------+
    /// |  LSU   | TLU | FFU  |   (top row)
    /// +--------+--+--+------+
    /// |  IFU      |  EXU    |   (bottom row)
    /// +-----------+---------+
    /// ```
    #[must_use]
    pub fn opensparc_3d(layers: usize) -> Self {
        // Table III areas (mm²): IFU .056 EXU .036 LSU .067 TLU .040 FFU .014.
        // The remaining die area (register files, caches, routing) is
        // thermally passive background; we scale the chip so the five
        // units cover their real fraction of the 0.387 mm² core.
        let die_area_m2: f64 = 0.387e-6; // 0.387 mm² in m²
        let aspect = 4.0_f64 / 3.0;
        let chip_w = (die_area_m2 * aspect).sqrt();
        let chip_h = die_area_m2 / chip_w;

        // Two-row layout over the full die; row heights split the die so
        // each unit's rect area is proportional to (unit area + its share
        // of the passive background), keeping unit power densities
        // realistic without modeling every SRAM macro.
        let bottom = [Unit::Ifu, Unit::Exu];
        let top = [Unit::Lsu, Unit::Tlu, Unit::Ffu];
        let unit_area = |u: Unit| crate::grid::UNIT_AREA_MM2[u.index()];
        let bottom_area: f64 = bottom.iter().map(|&u| unit_area(u)).sum();
        let top_area: f64 = top.iter().map(|&u| unit_area(u)).sum();
        let total = bottom_area + top_area;
        let bottom_h = chip_h * bottom_area / total;

        let mut blocks = Vec::with_capacity(5);
        let mut x = 0.0;
        for &u in &bottom {
            let w = chip_w * unit_area(u) / bottom_area;
            blocks.push((u, Rect { x0: x, y0: 0.0, x1: x + w, y1: bottom_h }));
            x += w;
        }
        let mut x = 0.0;
        for &u in &top {
            let w = chip_w * unit_area(u) / top_area;
            blocks.push((u, Rect { x0: x, y0: bottom_h, x1: x + w, y1: chip_h }));
            x += w;
        }

        Floorplan { layers, chip_width: chip_w, chip_height: chip_h, blocks }
    }

    /// Number of vertical tiers.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Die width in meters.
    #[must_use]
    pub fn chip_width(&self) -> f64 {
        self.chip_width
    }

    /// Die height in meters.
    #[must_use]
    pub fn chip_height(&self) -> f64 {
        self.chip_height
    }

    /// The per-tier unit rectangles (identical on every layer).
    #[must_use]
    pub fn blocks(&self) -> &[(Unit, Rect)] {
        &self.blocks
    }

    /// The rectangle of `unit` on any tier, or `None` if absent.
    #[must_use]
    pub fn unit_rect(&self, unit: Unit) -> Option<Rect> {
        self.blocks.iter().find(|(u, _)| *u == unit).map(|(_, r)| *r)
    }

    /// All block identifiers across all layers.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.layers).flat_map(move |layer| {
            self.blocks.iter().map(move |(unit, _)| BlockId { layer, unit: *unit })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_geometry() {
        let r = Rect { x0: 0.0, y0: 0.0, x1: 2.0, y1: 3.0 };
        assert_eq!(r.area(), 6.0);
        let s = Rect { x0: 1.0, y0: 1.0, x1: 4.0, y1: 2.0 };
        assert_eq!(r.overlap(&s), 1.0);
        let t = Rect { x0: 5.0, y0: 5.0, x1: 6.0, y1: 6.0 };
        assert_eq!(r.overlap(&t), 0.0);
    }

    #[test]
    fn floorplan_covers_die_exactly() {
        let fp = Floorplan::opensparc_3d(8);
        let total: f64 = fp.blocks().iter().map(|(_, r)| r.area()).sum();
        let die = fp.chip_width() * fp.chip_height();
        assert!((total - die).abs() / die < 1e-9, "blocks must tile the die");
        assert_eq!(fp.layers(), 8);
        assert_eq!(fp.blocks().len(), 5);
    }

    #[test]
    fn blocks_do_not_overlap() {
        let fp = Floorplan::opensparc_3d(4);
        for (i, (_, a)) in fp.blocks().iter().enumerate() {
            for (_, b) in fp.blocks().iter().skip(i + 1) {
                assert!(a.overlap(b) < 1e-18, "blocks overlap");
            }
        }
    }

    #[test]
    fn unit_areas_keep_table_iii_ordering() {
        let fp = Floorplan::opensparc_3d(1);
        let area = |u: Unit| fp.unit_rect(u).unwrap().area();
        assert!(area(Unit::Lsu) > area(Unit::Ifu));
        assert!(area(Unit::Ifu) > area(Unit::Exu));
        assert!(area(Unit::Ffu) < area(Unit::Tlu));
    }

    #[test]
    fn block_ids_enumerate_all() {
        let fp = Floorplan::opensparc_3d(3);
        assert_eq!(fp.block_ids().count(), 15);
    }
}
