//! Steady-state and transient solvers over the thermal grid.

use crate::grid::{SweepOrdering, ThermalGrid};
use crate::map::TemperatureField;
use crate::power::PowerMap;
use crate::ThermalError;

/// Result of a steady-state solve: the converged field plus how many SOR
/// sweeps it took (the warm-start figure of merit).
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Converged temperature field.
    pub field: TemperatureField,
    /// SOR sweeps spent reaching the tolerance.
    pub sweeps: usize,
}

impl ThermalGrid {
    /// Spreads block powers onto grid cells (watts per cell).
    fn cell_powers(&self, power: &PowerMap) -> Vec<f64> {
        let per_layer = self.nx() * self.ny();
        let mut p = vec![0.0; self.cell_count()];
        let blocks = power.as_slice();
        for (bi, &watts) in blocks.iter().enumerate() {
            if watts == 0.0 {
                continue;
            }
            let layer = bi / self.blocks_per_layer();
            if layer >= self.layers() {
                break;
            }
            for &(cell, frac) in self.coverage(bi) {
                p[layer * per_layer + cell] += watts * frac;
            }
        }
        p
    }

    /// One SOR sweep; returns the maximum temperature change.
    fn sweep(&self, temps: &mut [f64], cell_power: &[f64], omega: f64) -> f64 {
        let (gx, gy, gz) = self.g_xyz();
        let g_sink = self.g_sink();
        let ambient = self.ambient();
        let (nx, ny, layers) = (self.nx(), self.ny(), self.layers());
        let per_layer = nx * ny;
        let mut max_delta = 0.0f64;

        for z in 0..layers {
            for y in 0..ny {
                for x in 0..nx {
                    let i = z * per_layer + y * nx + x;
                    let mut num = cell_power[i];
                    let mut den = 0.0;
                    if x > 0 {
                        num += gx * temps[i - 1];
                        den += gx;
                    }
                    if x + 1 < nx {
                        num += gx * temps[i + 1];
                        den += gx;
                    }
                    if y > 0 {
                        num += gy * temps[i - nx];
                        den += gy;
                    }
                    if y + 1 < ny {
                        num += gy * temps[i + nx];
                        den += gy;
                    }
                    if z > 0 {
                        num += gz * temps[i - per_layer];
                        den += gz;
                    }
                    if z + 1 < layers {
                        num += gz * temps[i + per_layer];
                        den += gz;
                    }
                    if z == 0 {
                        num += g_sink * ambient;
                        den += g_sink;
                    }
                    let new = num / den;
                    let relaxed = temps[i] + omega * (new - temps[i]);
                    max_delta = max_delta.max((relaxed - temps[i]).abs());
                    temps[i] = relaxed;
                }
            }
        }
        max_delta
    }

    /// Computes this color's relaxed values for the layer slab starting at
    /// `z0` into `out` (slab-local indexing), reading only the *current*
    /// `temps`: the 7-point stencil couples opposite colors exclusively,
    /// so every read is a stale other-color value no matter how many
    /// threads run this concurrently.
    #[allow(clippy::too_many_arguments)]
    fn relax_color_into(
        &self,
        temps: &[f64],
        cell_power: &[f64],
        omega: f64,
        out: &mut [f64],
        color: usize,
        z0: usize,
    ) {
        let (gx, gy, gz) = self.g_xyz();
        let g_sink = self.g_sink();
        let ambient = self.ambient();
        let (nx, ny, layers) = (self.nx(), self.ny(), self.layers());
        let per_layer = nx * ny;
        let z1 = (z0 + out.len() / per_layer).min(layers);

        for z in z0..z1 {
            for y in 0..ny {
                for x in 0..nx {
                    if (x + y + z) % 2 != color {
                        continue;
                    }
                    let i = z * per_layer + y * nx + x;
                    let mut num = cell_power[i];
                    let mut den = 0.0;
                    if x > 0 {
                        num += gx * temps[i - 1];
                        den += gx;
                    }
                    if x + 1 < nx {
                        num += gx * temps[i + 1];
                        den += gx;
                    }
                    if y > 0 {
                        num += gy * temps[i - nx];
                        den += gy;
                    }
                    if y + 1 < ny {
                        num += gy * temps[i + nx];
                        den += gy;
                    }
                    if z > 0 {
                        num += gz * temps[i - per_layer];
                        den += gz;
                    }
                    if z + 1 < layers {
                        num += gz * temps[i + per_layer];
                        den += gz;
                    }
                    if z == 0 {
                        num += g_sink * ambient;
                        den += g_sink;
                    }
                    let new = num / den;
                    out[i - z0 * per_layer] = temps[i] + omega * (new - temps[i]);
                }
            }
        }
    }

    /// One red-black SOR sweep (an even then an odd half-sweep); returns
    /// the maximum temperature change. `updates` is caller-owned scratch
    /// of `cell_count` length. Each half-sweep computes its color from
    /// the current field and only then applies, so the result is bitwise
    /// identical whether the compute phase runs on 1 thread or many.
    fn sweep_red_black(
        &self,
        temps: &mut [f64],
        cell_power: &[f64],
        omega: f64,
        updates: &mut [f64],
        threads: usize,
    ) -> f64 {
        let (nx, ny, layers) = (self.nx(), self.ny(), self.layers());
        let per_layer = nx * ny;
        let mut max_delta = 0.0f64;

        for color in 0..2usize {
            if threads <= 1 || layers < 2 {
                self.relax_color_into(temps, cell_power, omega, updates, color, 0);
            } else {
                let slab = layers.div_ceil(threads) * per_layer;
                let temps_view: &[f64] = temps;
                crossbeam::scope(|scope| {
                    for (ci, chunk) in updates.chunks_mut(slab).enumerate() {
                        scope.spawn(move |_| {
                            self.relax_color_into(
                                temps_view,
                                cell_power,
                                omega,
                                chunk,
                                color,
                                ci * slab / per_layer,
                            );
                        });
                    }
                })
                .expect("red-black sweep scope failed");
            }
            // Apply phase: write this color back and track the residual.
            for z in 0..layers {
                for y in 0..ny {
                    for x in 0..nx {
                        if (x + y + z) % 2 != color {
                            continue;
                        }
                        let i = z * per_layer + y * nx + x;
                        max_delta = max_delta.max((updates[i] - temps[i]).abs());
                        temps[i] = updates[i];
                    }
                }
            }
        }
        max_delta
    }

    /// Solves for the steady-state temperature field under `power`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NoConvergence`] if SOR does not reach the
    /// configured tolerance within `max_sweeps`.
    pub fn steady_state(&self, power: &PowerMap) -> Result<TemperatureField, ThermalError> {
        self.steady_state_warm(power, None).map(|o| o.field)
    }

    /// [`steady_state`](ThermalGrid::steady_state) with an optional warm
    /// start: SOR iterates from `init` instead of the ambient guess.
    ///
    /// Successive solves along a slowly-varying power trajectory (e.g. the
    /// lifetime loop's monthly duty patterns) converge in far fewer sweeps
    /// when seeded with the previous solution; the returned
    /// [`SolveOutcome::sweeps`] quantifies that saving.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NoConvergence`] if SOR does not reach the
    /// configured tolerance within `max_sweeps`, and
    /// [`ThermalError::CellCountMismatch`] if `init` has a different cell
    /// count than this grid.
    pub fn steady_state_warm(
        &self,
        power: &PowerMap,
        init: Option<&TemperatureField>,
    ) -> Result<SolveOutcome, ThermalError> {
        let cell_power = self.cell_powers(power);
        let mut temps = match init {
            Some(field) => {
                if field.cells().len() != self.cell_count() {
                    return Err(ThermalError::CellCountMismatch {
                        expected: self.cell_count(),
                        got: field.cells().len(),
                    });
                }
                field.cells().to_vec()
            }
            None => vec![self.ambient(); self.cell_count()],
        };
        let cfg = self.config();
        let mut scratch = match cfg.ordering {
            SweepOrdering::RedBlack => vec![0.0; self.cell_count()],
            SweepOrdering::Lexicographic => Vec::new(),
        };
        let mut residual = f64::INFINITY;
        for sweep in 0..cfg.max_sweeps {
            residual = match cfg.ordering {
                SweepOrdering::Lexicographic => self.sweep(&mut temps, &cell_power, cfg.sor_omega),
                SweepOrdering::RedBlack => self.sweep_red_black(
                    &mut temps,
                    &cell_power,
                    cfg.sor_omega,
                    &mut scratch,
                    cfg.threads.max(1),
                ),
            };
            if residual < cfg.tolerance {
                return Ok(SolveOutcome {
                    field: TemperatureField::new(self, temps),
                    sweeps: sweep + 1,
                });
            }
        }
        Err(ThermalError::NoConvergence { iterations: cfg.max_sweeps, residual })
    }

    /// Advances a transient solution by `dt` seconds with backward Euler,
    /// starting from `state` (or ambient if `None`).
    ///
    /// Each step solves the implicit system with SOR using the same
    /// tolerance as the steady-state solver.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NoConvergence`] if the implicit solve
    /// fails to converge.
    pub fn transient_step(
        &self,
        state: Option<&TemperatureField>,
        power: &PowerMap,
        dt: f64,
    ) -> Result<TemperatureField, ThermalError> {
        let cell_power = self.cell_powers(power);
        let c_dt = self.capacitance() / dt.max(f64::MIN_POSITIVE);
        let old: Vec<f64> = match state {
            Some(s) => s.cells().to_vec(),
            None => vec![self.ambient(); self.cell_count()],
        };
        let mut temps = old.clone();
        // Backward Euler: (C/dt)·T + Σ G (T - Tn) = P + (C/dt)·T_old.
        // Reuse the SOR sweep by folding C/dt into a virtual conductance
        // to a "previous temperature" bath per cell.
        let effective_power: Vec<f64> =
            cell_power.iter().zip(&old).map(|(p, t)| p + c_dt * t).collect();
        let cfg = self.config();
        let mut residual = f64::INFINITY;
        for _ in 0..cfg.max_sweeps {
            residual = self.sweep_with_bath(&mut temps, &effective_power, c_dt, cfg.sor_omega);
            if residual < cfg.tolerance {
                return Ok(TemperatureField::new(self, temps));
            }
        }
        Err(ThermalError::NoConvergence { iterations: cfg.max_sweeps, residual })
    }

    /// SOR sweep with an extra per-cell conductance `g_bath` whose bath
    /// temperature is folded into `effective_power` (backward Euler).
    fn sweep_with_bath(
        &self,
        temps: &mut [f64],
        effective_power: &[f64],
        g_bath: f64,
        omega: f64,
    ) -> f64 {
        let (gx, gy, gz) = self.g_xyz();
        let g_sink = self.g_sink();
        let ambient = self.ambient();
        let (nx, ny, layers) = (self.nx(), self.ny(), self.layers());
        let per_layer = nx * ny;
        let mut max_delta = 0.0f64;

        for z in 0..layers {
            for y in 0..ny {
                for x in 0..nx {
                    let i = z * per_layer + y * nx + x;
                    let mut num = effective_power[i];
                    let mut den = g_bath;
                    if x > 0 {
                        num += gx * temps[i - 1];
                        den += gx;
                    }
                    if x + 1 < nx {
                        num += gx * temps[i + 1];
                        den += gx;
                    }
                    if y > 0 {
                        num += gy * temps[i - nx];
                        den += gy;
                    }
                    if y + 1 < ny {
                        num += gy * temps[i + nx];
                        den += gy;
                    }
                    if z > 0 {
                        num += gz * temps[i - per_layer];
                        den += gz;
                    }
                    if z + 1 < layers {
                        num += gz * temps[i + per_layer];
                        den += gz;
                    }
                    if z == 0 {
                        num += g_sink * ambient;
                        den += g_sink;
                    }
                    let new = num / den;
                    let relaxed = temps[i] + omega * (new - temps[i]);
                    max_delta = max_delta.max((relaxed - temps[i]).abs());
                    temps[i] = relaxed;
                }
            }
        }
        max_delta
    }
}

/// Per-block temperature swing under periodic power cycling.
///
/// Alternates `half_period_s` of `power_on` and `power_off` for `cycles`
/// full periods using the transient solver, then reports each block's
/// peak-to-trough swing ΔT (K) over the final period — the input the
/// Coffin–Manson thermal-cycling model needs.
#[must_use = "the swing map is the result"]
pub struct CyclingProfile {
    /// Per-block swing in kelvin (layer-major, floorplan block order).
    pub swing: Vec<f64>,
    /// Peak block temperature observed (°C).
    pub peak: f64,
}

impl ThermalGrid {
    /// Computes the power-cycling temperature swing per block.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NoConvergence`] if a transient step fails.
    pub fn cycling_profile(
        &self,
        power_on: &PowerMap,
        power_off: &PowerMap,
        half_period_s: f64,
        cycles: usize,
    ) -> Result<CyclingProfile, ThermalError> {
        let steps_per_half = 8usize;
        let dt = half_period_s / steps_per_half as f64;
        let blocks = self.layers() * self.blocks_per_layer();
        let mut state: Option<TemperatureField> = None;
        let mut min_t = vec![f64::INFINITY; blocks];
        let mut max_t = vec![f64::NEG_INFINITY; blocks];
        let mut peak = f64::NEG_INFINITY;

        for cycle in 0..cycles.max(1) {
            let last = cycle + 1 == cycles.max(1);
            for (phase, power) in [(0, power_on), (1, power_off)] {
                let _ = phase;
                for _ in 0..steps_per_half {
                    let next = self.transient_step(state.as_ref(), power, dt)?;
                    if last {
                        for (bi, (lo, hi)) in min_t.iter_mut().zip(max_t.iter_mut()).enumerate() {
                            let layer = bi / self.blocks_per_layer();
                            let per = self.nx() * self.ny();
                            let base = layer * per;
                            let mut acc = 0.0;
                            for &(cell, frac) in self.coverage(bi) {
                                acc += next.cells()[base + cell] * frac;
                            }
                            *lo = lo.min(acc);
                            *hi = hi.max(acc);
                            peak = peak.max(acc);
                        }
                    }
                    state = Some(next);
                }
            }
        }
        let swing = min_t.iter().zip(&max_t).map(|(lo, hi)| (hi - lo).max(0.0)).collect();
        Ok(CyclingProfile { swing, peak })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Floorplan, GridConfig, PowerMap};
    use r2d3_isa::Unit;

    fn uniform_power(fp: &Floorplan, watts_per_unit: f64) -> PowerMap {
        let mut p = PowerMap::new(fp);
        for layer in 0..fp.layers() {
            for unit in Unit::ALL {
                p.set_block(layer, unit, watts_per_unit);
            }
        }
        p
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let fp = Floorplan::opensparc_3d(4);
        let grid = ThermalGrid::new(&fp, &GridConfig::default());
        let t = grid.steady_state(&PowerMap::new(&fp)).unwrap();
        for layer in 0..4 {
            assert!((t.layer_avg(layer) - grid.ambient()).abs() < 1e-2);
        }
    }

    #[test]
    fn far_layers_run_hotter() {
        let fp = Floorplan::opensparc_3d(8);
        let grid = ThermalGrid::new(&fp, &GridConfig::default());
        let t = grid.steady_state(&uniform_power(&fp, 0.05)).unwrap();
        let mut prev = 0.0;
        for layer in 0..8 {
            let avg = t.layer_avg(layer);
            assert!(avg > prev, "layer {layer} ({avg:.1}) not hotter than below ({prev:.1})");
            prev = avg;
        }
    }

    #[test]
    fn temperature_scales_with_power() {
        let fp = Floorplan::opensparc_3d(4);
        let grid = ThermalGrid::new(&fp, &GridConfig::default());
        let t1 = grid.steady_state(&uniform_power(&fp, 0.02)).unwrap();
        let t2 = grid.steady_state(&uniform_power(&fp, 0.04)).unwrap();
        let rise1 = t1.layer_avg(3) - grid.ambient();
        let rise2 = t2.layer_avg(3) - grid.ambient();
        assert!((rise2 / rise1 - 2.0).abs() < 0.02, "linear RC network: rise doubles");
    }

    #[test]
    fn transient_approaches_steady_state() {
        let fp = Floorplan::opensparc_3d(2);
        let grid = ThermalGrid::new(&fp, &GridConfig::default());
        let p = uniform_power(&fp, 0.05);
        let steady = grid.steady_state(&p).unwrap();
        let mut state = None;
        for _ in 0..50 {
            let next = grid.transient_step(state.as_ref(), &p, 1e-3).unwrap();
            state = Some(next);
        }
        let t = state.unwrap();
        let diff = (t.layer_avg(1) - steady.layer_avg(1)).abs();
        assert!(diff < 1.0, "transient should settle near steady state (diff {diff:.3})");
    }

    #[test]
    fn transient_heats_monotonically_from_ambient() {
        let fp = Floorplan::opensparc_3d(2);
        let grid = ThermalGrid::new(&fp, &GridConfig::default());
        let p = uniform_power(&fp, 0.05);
        let t1 = grid.transient_step(None, &p, 1e-4).unwrap();
        let t2 = grid.transient_step(Some(&t1), &p, 1e-4).unwrap();
        assert!(t1.layer_avg(1) > grid.ambient());
        assert!(t2.layer_avg(1) > t1.layer_avg(1));
    }

    #[test]
    fn cycling_profile_swings_more_with_longer_periods() {
        let fp = Floorplan::opensparc_3d(2);
        let grid = ThermalGrid::new(&fp, &GridConfig::default());
        let on = uniform_power(&fp, 0.08);
        let off = PowerMap::new(&fp);
        let fast = grid.cycling_profile(&on, &off, 5e-4, 3).unwrap();
        let slow = grid.cycling_profile(&on, &off, 5e-3, 3).unwrap();
        let fast_max = fast.swing.iter().cloned().fold(0.0f64, f64::max);
        let slow_max = slow.swing.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            slow_max > fast_max,
            "longer thermal cycles must swing harder: {slow_max:.2} vs {fast_max:.2}"
        );
        assert!(slow.peak > grid.ambient());
    }

    #[test]
    fn warm_start_converges_faster_to_the_same_field() {
        let fp = Floorplan::opensparc_3d(4);
        let grid = ThermalGrid::new(&fp, &GridConfig::default());
        let cold = grid.steady_state_warm(&uniform_power(&fp, 0.05), None).unwrap();
        // Slightly perturbed power, seeded with the previous solution —
        // the trajectory case the lifetime loop hits every month.
        let near = uniform_power(&fp, 0.052);
        let warm = grid.steady_state_warm(&near, Some(&cold.field)).unwrap();
        let scratch = grid.steady_state_warm(&near, None).unwrap();
        assert!(
            warm.sweeps < scratch.sweeps,
            "warm start must need fewer sweeps ({} vs {})",
            warm.sweeps,
            scratch.sweeps
        );
        // Re-solving the *same* power from its own solution is near-free.
        let resolve = grid.steady_state_warm(&uniform_power(&fp, 0.05), Some(&cold.field)).unwrap();
        assert!(
            resolve.sweeps * 10 <= cold.sweeps,
            "restart at the solution should be ~free ({} vs {})",
            resolve.sweeps,
            cold.sweeps
        );
        // Both converge to the same tolerance band.
        for layer in 0..4 {
            assert!((warm.field.layer_avg(layer) - scratch.field.layer_avg(layer)).abs() < 0.1);
        }
    }

    #[test]
    fn warm_start_rejects_mismatched_field() {
        let fp2 = Floorplan::opensparc_3d(2);
        let fp4 = Floorplan::opensparc_3d(4);
        let g2 = ThermalGrid::new(&fp2, &GridConfig::default());
        let g4 = ThermalGrid::new(&fp4, &GridConfig::default());
        let f2 = g2.steady_state(&PowerMap::new(&fp2)).unwrap();
        let err = g4.steady_state_warm(&PowerMap::new(&fp4), Some(&f2)).unwrap_err();
        assert!(matches!(err, ThermalError::CellCountMismatch { .. }));
    }

    #[test]
    fn red_black_converges_to_the_lexicographic_field() {
        let fp = Floorplan::opensparc_3d(4);
        let mut p = uniform_power(&fp, 0.04);
        p.set_block(2, Unit::Lsu, 0.15); // break symmetry
        let lex = ThermalGrid::new(&fp, &GridConfig::default()).steady_state(&p).unwrap();
        let rb = ThermalGrid::new(
            &fp,
            &GridConfig { ordering: crate::SweepOrdering::RedBlack, ..Default::default() },
        )
        .steady_state(&p)
        .unwrap();
        let max_diff =
            lex.cells().iter().zip(rb.cells()).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(max_diff < 0.05, "orderings disagree by {max_diff:.4} K beyond the tolerance band");
    }

    #[test]
    fn red_black_is_bit_identical_across_thread_counts() {
        let fp = Floorplan::opensparc_3d(8);
        let mut p = uniform_power(&fp, 0.05);
        p.set_block(5, Unit::Exu, 0.12);
        let mk = |threads| GridConfig {
            ordering: crate::SweepOrdering::RedBlack,
            threads,
            ..Default::default()
        };
        let serial = ThermalGrid::new(&fp, &mk(1)).steady_state_warm(&p, None).unwrap();
        let par = ThermalGrid::new(&fp, &mk(4)).steady_state_warm(&p, None).unwrap();
        assert_eq!(serial.sweeps, par.sweeps, "thread count changed convergence");
        assert_eq!(
            serial.field.cells(),
            par.field.cells(),
            "parallel half-sweeps must be bitwise identical to serial"
        );
    }

    #[test]
    fn hot_block_is_hotter_than_idle_block() {
        let fp = Floorplan::opensparc_3d(2);
        let grid = ThermalGrid::new(&fp, &GridConfig::default());
        let mut p = PowerMap::new(&fp);
        p.set_block(1, Unit::Lsu, 0.2);
        let t = grid.steady_state(&p).unwrap();
        let hot = t.block_avg(crate::BlockId { layer: 1, unit: Unit::Lsu }).unwrap();
        let idle = t.block_avg(crate::BlockId { layer: 1, unit: Unit::Ffu }).unwrap();
        assert!(hot > idle + 1.0, "hot {hot:.1} vs idle {idle:.1}");
    }
}
