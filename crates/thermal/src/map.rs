//! Temperature fields: extraction and rendering.

use crate::floorplan::BlockId;
use crate::grid::ThermalGrid;
use crate::ThermalError;
use r2d3_isa::Unit;
use serde::{Deserialize, Serialize};

/// A solved temperature field (°C per grid cell) with the grid metadata
/// needed to extract block and layer statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureField {
    nx: usize,
    ny: usize,
    layers: usize,
    blocks_per_layer: usize,
    unit_order: Vec<Unit>,
    /// Block coverage copied from the grid (layer-major block order).
    block_cells: Vec<Vec<(usize, f64)>>,
    cells: Vec<f64>,
}

impl TemperatureField {
    pub(crate) fn new(grid: &ThermalGrid, cells: Vec<f64>) -> Self {
        let blocks = grid.layers() * grid.blocks_per_layer();
        TemperatureField {
            nx: grid.nx(),
            ny: grid.ny(),
            layers: grid.layers(),
            blocks_per_layer: grid.blocks_per_layer(),
            unit_order: grid.unit_order().to_vec(),
            block_cells: (0..blocks).map(|b| grid.coverage(b).to_vec()).collect(),
            cells,
        }
    }

    /// Rebuilds a field from a grid and raw per-cell temperatures, e.g.
    /// when restoring a run snapshot that captured [`cells`](Self::cells).
    /// The grid must be the one the field was originally solved on; the
    /// cell count is checked, everything else (block coverage, unit
    /// order) is re-derived from the grid.
    pub fn from_cells(grid: &ThermalGrid, cells: Vec<f64>) -> Result<Self, ThermalError> {
        let expected = grid.nx() * grid.ny() * grid.layers();
        if cells.len() != expected {
            return Err(ThermalError::CellCountMismatch { expected, got: cells.len() });
        }
        Ok(TemperatureField::new(grid, cells))
    }

    /// Raw per-cell temperatures (layer-major, row-major within a layer).
    #[must_use]
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// Number of tiers.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Average temperature of one tier.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn layer_avg(&self, layer: usize) -> f64 {
        let per = self.nx * self.ny;
        let slice = &self.cells[layer * per..(layer + 1) * per];
        slice.iter().sum::<f64>() / per as f64
    }

    /// Peak temperature of one tier.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn layer_max(&self, layer: usize) -> f64 {
        let per = self.nx * self.ny;
        self.cells[layer * per..(layer + 1) * per].iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Index of the hottest tier (the layer farthest from the heat sink in
    /// a uniformly-loaded stack — the layer Fig. 6 maps).
    #[must_use]
    pub fn hottest_layer(&self) -> usize {
        (0..self.layers)
            .max_by(|a, b| self.layer_avg(*a).total_cmp(&self.layer_avg(*b)))
            .unwrap_or(0)
    }

    /// Area-weighted average temperature of a block.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownBlock`] for out-of-range layers.
    pub fn block_avg(&self, id: BlockId) -> Result<f64, ThermalError> {
        if id.layer >= self.layers {
            return Err(ThermalError::UnknownBlock { layer: id.layer, layers: self.layers });
        }
        let pos =
            self.unit_order.iter().position(|u| *u == id.unit).expect("unit present in floorplan");
        let bi = id.layer * self.blocks_per_layer + pos;
        let per = self.nx * self.ny;
        let base = id.layer * per;
        let mut acc = 0.0;
        for &(cell, frac) in &self.block_cells[bi] {
            acc += self.cells[base + cell] * frac;
        }
        Ok(acc)
    }

    /// Renders one tier as an ASCII heat map (rows top-to-bottom), using
    /// the given temperature range for the character ramp.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn render_layer(&self, layer: usize, t_min: f64, t_max: f64) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let per = self.nx * self.ny;
        let slice = &self.cells[layer * per..(layer + 1) * per];
        let span = (t_max - t_min).max(1e-9);
        let mut out = String::with_capacity((self.nx + 1) * self.ny);
        for y in (0..self.ny).rev() {
            for x in 0..self.nx {
                let t = slice[y * self.nx + x];
                let idx = (((t - t_min) / span) * (RAMP.len() - 1) as f64)
                    .clamp(0.0, (RAMP.len() - 1) as f64) as usize;
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

impl TemperatureField {
    /// Renders one tier as a binary PPM (P6) image with a blue→red ramp,
    /// suitable for viewing the Fig. 6-style maps outside the terminal.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn render_layer_ppm(&self, layer: usize, t_min: f64, t_max: f64) -> Vec<u8> {
        let per = self.nx * self.ny;
        let slice = &self.cells[layer * per..(layer + 1) * per];
        let span = (t_max - t_min).max(1e-9);
        let mut out = format!("P6\n{} {}\n255\n", self.nx, self.ny).into_bytes();
        for y in (0..self.ny).rev() {
            for x in 0..self.nx {
                let t = ((slice[y * self.nx + x] - t_min) / span).clamp(0.0, 1.0);
                // Blue (cold) → red (hot) through green.
                let r = (255.0 * t) as u8;
                let g = (255.0 * (1.0 - (2.0 * t - 1.0).abs())) as u8;
                let b = (255.0 * (1.0 - t)) as u8;
                out.extend_from_slice(&[r, g, b]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Floorplan, GridConfig, PowerMap};

    fn solved_field() -> TemperatureField {
        let fp = Floorplan::opensparc_3d(2);
        let grid = ThermalGrid::new(&fp, &GridConfig::default());
        let mut p = PowerMap::new(&fp);
        p.set_block(1, Unit::Exu, 0.1);
        grid.steady_state(&p).unwrap()
    }

    #[test]
    fn layer_stats_consistent() {
        let t = solved_field();
        assert!(t.layer_max(1) >= t.layer_avg(1));
        assert_eq!(t.hottest_layer(), 1);
    }

    #[test]
    fn block_avg_checks_range() {
        let t = solved_field();
        assert!(t.block_avg(BlockId { layer: 7, unit: Unit::Ifu }).is_err());
        assert!(t.block_avg(BlockId { layer: 1, unit: Unit::Exu }).is_ok());
    }

    #[test]
    fn ppm_has_header_and_pixel_payload() {
        let t = solved_field();
        let ppm = t.render_layer_ppm(1, 45.0, 120.0);
        assert!(ppm.starts_with(b"P6\n16 12\n255\n"));
        let header_len = b"P6\n16 12\n255\n".len();
        assert_eq!(ppm.len(), header_len + 16 * 12 * 3);
    }

    #[test]
    fn render_has_expected_shape() {
        let t = solved_field();
        let s = t.render_layer(1, 45.0, 120.0);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 12);
        assert!(lines.iter().all(|l| l.len() == 16));
    }
}
