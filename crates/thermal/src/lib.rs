#![warn(missing_docs)]

//! 3D thermal modeling for the R2D3 reproduction.
//!
//! The paper uses HotSpot v6.0 in grid mode to obtain per-block
//! temperatures of the 8-layer monolithic-3D OpenSPARC stack (§IV,
//! Fig. 6). This crate implements the same abstraction HotSpot's grid
//! mode uses: the die stack is discretized into a 3D grid of thermal RC
//! cells with lateral conductances within each silicon tier, vertical
//! conductances through the inter-layer dielectric, and a heat-sink
//! boundary on one face. Block powers (unit power × activity) are spread
//! over the cells each block covers, and a steady-state (SOR) or
//! transient (backward-Euler) solve produces per-block temperatures.
//!
//! The key physical behaviour the reproduction relies on: *layers far
//! from the heat sink run hotter*, which is what makes R2D3-Pro's
//! temperature-aware activity assignment outperform round-robin
//! (R2D3-Lite).
//!
//! # Example
//!
//! ```
//! use r2d3_thermal::{Floorplan, GridConfig, PowerMap, ThermalGrid};
//! use r2d3_isa::Unit;
//!
//! # fn main() -> Result<(), r2d3_thermal::ThermalError> {
//! let fp = Floorplan::opensparc_3d(8);
//! let grid = ThermalGrid::new(&fp, &GridConfig::default());
//! let mut power = PowerMap::new(&fp);
//! for layer in 0..8 {
//!     for unit in Unit::ALL {
//!         power.add_block(layer, unit, 0.05); // 50 mW per unit
//!     }
//! }
//! let temps = grid.steady_state(&power)?;
//! // The layer farthest from the heat sink is the hottest.
//! assert!(temps.layer_avg(7) > temps.layer_avg(0));
//! # Ok(())
//! # }
//! ```

pub mod floorplan;
pub mod grid;
pub mod map;
pub mod power;
pub mod solver;

pub use floorplan::{BlockId, Floorplan, Rect};
pub use grid::{GridConfig, MaterialParams, SweepOrdering, ThermalGrid};
pub use map::TemperatureField;
pub use power::PowerMap;
pub use solver::{CyclingProfile, SolveOutcome};

use std::fmt;

/// Errors raised by the thermal solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// The iterative solver did not converge within its iteration cap.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual (max per-cell temperature change) at the last sweep.
        residual: f64,
    },
    /// A block reference was outside the floorplan.
    UnknownBlock {
        /// Requested layer.
        layer: usize,
        /// Number of layers in the floorplan.
        layers: usize,
    },
    /// A warm-start field was built for a different grid.
    CellCountMismatch {
        /// Cells in this grid.
        expected: usize,
        /// Cells in the supplied field.
        got: usize,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::NoConvergence { iterations, residual } => {
                write!(f, "thermal solve did not converge after {iterations} sweeps (residual {residual:.3e})")
            }
            ThermalError::UnknownBlock { layer, layers } => {
                write!(f, "layer {layer} outside floorplan with {layers} layers")
            }
            ThermalError::CellCountMismatch { expected, got } => {
                write!(f, "warm-start field has {got} cells, grid has {expected}")
            }
        }
    }
}

impl std::error::Error for ThermalError {}
