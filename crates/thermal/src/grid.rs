//! Thermal grid construction (geometry, materials, conductances).

use crate::floorplan::{Floorplan, Rect};
use serde::{Deserialize, Serialize};

/// Per-unit silicon area in mm² (paper Table III), used by the floorplan.
pub const UNIT_AREA_MM2: [f64; 5] = [0.056, 0.036, 0.067, 0.040, 0.014];

/// Material and boundary parameters for the stack.
///
/// Defaults are calibrated so an 8-layer stack dissipating the paper's
/// 250 mW/core reaches the Fig. 6 temperature range (~110–150 °C on the
/// hottest layer with a 45 °C ambient): monolithic tiers are thin, the
/// inter-layer dielectric conducts poorly, and the heat path to the sink
/// is long — the paper's motivating observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaterialParams {
    /// Silicon thermal conductivity (W/m·K) at operating temperature.
    pub k_silicon: f64,
    /// Inter-layer dielectric conductivity (W/m·K).
    pub k_ild: f64,
    /// Active-tier silicon thickness (m).
    pub t_silicon: f64,
    /// Inter-layer dielectric thickness (m).
    pub t_ild: f64,
    /// Volumetric heat capacity of silicon (J/m³·K).
    pub c_volumetric: f64,
    /// Specific heat-sink resistance at the sink-side face (m²·K/W).
    pub r_sink_specific: f64,
    /// Ambient (coolant) temperature in °C.
    pub ambient: f64,
}

impl Default for MaterialParams {
    fn default() -> Self {
        MaterialParams {
            k_silicon: 110.0,
            k_ild: 0.25,
            t_silicon: 5.0e-6,
            t_ild: 1.5e-6,
            c_volumetric: 1.6e6,
            r_sink_specific: 4.0e-6,
            ambient: 45.0,
        }
    }
}

/// Cell-update ordering of the steady-state SOR solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SweepOrdering {
    /// Classic in-place lexicographic Gauss–Seidel/SOR order (serial).
    #[default]
    Lexicographic,
    /// Two-color checkerboard: all `(x + y + z)`-even cells update first,
    /// then all odd cells. The 7-point stencil only couples cells of
    /// opposite colors, so within one half-sweep no cell reads another of
    /// the same color — the half-sweep is embarrassingly parallel and its
    /// result is bitwise independent of thread count.
    RedBlack,
}

/// Grid resolution and materials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Cells along the die width.
    pub nx: usize,
    /// Cells along the die height.
    pub ny: usize,
    /// Material and boundary parameters.
    pub materials: MaterialParams,
    /// SOR over-relaxation factor (1.0 = Gauss–Seidel).
    pub sor_omega: f64,
    /// Convergence threshold: max per-cell change per sweep (K).
    pub tolerance: f64,
    /// Sweep cap for the steady-state solver.
    pub max_sweeps: usize,
    /// Cell-update ordering of the steady-state solver.
    pub ordering: SweepOrdering,
    /// Worker threads for red-black half-sweeps (1 = serial; ignored by
    /// the lexicographic ordering). Any count produces the same field.
    pub threads: usize,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            nx: 16,
            ny: 12,
            materials: MaterialParams::default(),
            sor_omega: 1.85,
            tolerance: 1e-4,
            max_sweeps: 20_000,
            ordering: SweepOrdering::Lexicographic,
            threads: 1,
        }
    }
}

/// The discretized RC network for a floorplan: per-cell conductances plus
/// the block→cell coverage map used to spread block power and extract
/// block temperatures.
#[derive(Debug, Clone)]
pub struct ThermalGrid {
    nx: usize,
    ny: usize,
    layers: usize,
    /// Lateral conductance in x / y (uniform per direction).
    g_x: f64,
    g_y: f64,
    /// Vertical conductance between adjacent tiers (per cell).
    g_z: f64,
    /// Sink conductance for layer-0 cells.
    g_sink: f64,
    /// Thermal capacitance per cell (J/K).
    cap: f64,
    ambient: f64,
    config: GridConfig,
    /// Per block (layer-major, floorplan block order): list of
    /// `(cell_index_in_layer, fraction_of_block_area)`.
    block_cells: Vec<Vec<(usize, f64)>>,
    blocks_per_layer: usize,
    unit_order: Vec<r2d3_isa::Unit>,
}

impl ThermalGrid {
    /// Discretizes `floorplan` with `config`.
    ///
    /// # Panics
    ///
    /// Panics if the grid resolution or floorplan is degenerate (zero
    /// cells or layers).
    #[must_use]
    pub fn new(floorplan: &Floorplan, config: &GridConfig) -> Self {
        assert!(config.nx > 0 && config.ny > 0, "grid must have cells");
        assert!(floorplan.layers() > 0, "floorplan must have layers");
        let m = &config.materials;
        let dx = floorplan.chip_width() / config.nx as f64;
        let dy = floorplan.chip_height() / config.ny as f64;
        let dz = m.t_silicon;

        let g_x = m.k_silicon * (dy * dz) / dx;
        let g_y = m.k_silicon * (dx * dz) / dy;
        // Vertical path between tiers: half a tier of silicon on each side
        // plus the ILD, in series, over the cell footprint.
        let area = dx * dy;
        let r_z = m.t_silicon / (m.k_silicon * area) + m.t_ild / (m.k_ild * area);
        let g_z = 1.0 / r_z;
        let g_sink = area / m.r_sink_specific;
        let cap = m.c_volumetric * dx * dy * dz;

        // Block coverage: fraction of each block's area in each cell.
        let mut block_cells = Vec::new();
        for layer in 0..floorplan.layers() {
            let _ = layer;
            for (_, rect) in floorplan.blocks() {
                block_cells.push(cell_coverage(rect, config.nx, config.ny, dx, dy));
            }
        }

        ThermalGrid {
            nx: config.nx,
            ny: config.ny,
            layers: floorplan.layers(),
            g_x,
            g_y,
            g_z,
            g_sink,
            cap,
            ambient: m.ambient,
            config: *config,
            block_cells,
            blocks_per_layer: floorplan.blocks().len(),
            unit_order: floorplan.blocks().iter().map(|(u, _)| *u).collect(),
        }
    }

    /// Cells along the die width.
    #[must_use]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Cells along the die height.
    #[must_use]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of tiers.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Blocks per tier (floorplan block order).
    #[must_use]
    pub fn blocks_per_layer(&self) -> usize {
        self.blocks_per_layer
    }

    /// Ambient temperature (°C).
    #[must_use]
    pub fn ambient(&self) -> f64 {
        self.ambient
    }

    /// Solver configuration.
    #[must_use]
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    pub(crate) fn cell_count(&self) -> usize {
        self.nx * self.ny * self.layers
    }

    pub(crate) fn g_xyz(&self) -> (f64, f64, f64) {
        (self.g_x, self.g_y, self.g_z)
    }

    pub(crate) fn g_sink(&self) -> f64 {
        self.g_sink
    }

    pub(crate) fn capacitance(&self) -> f64 {
        self.cap
    }

    /// Coverage list for a block index (layer-major).
    pub(crate) fn coverage(&self, block_index: usize) -> &[(usize, f64)] {
        &self.block_cells[block_index]
    }

    /// Unit placement order within each tier.
    #[must_use]
    pub fn unit_order(&self) -> &[r2d3_isa::Unit] {
        &self.unit_order
    }
}

/// Computes `(cell_in_layer, fraction_of_block_area)` coverage of a rect.
fn cell_coverage(rect: &Rect, nx: usize, ny: usize, dx: f64, dy: f64) -> Vec<(usize, f64)> {
    let mut cover = Vec::new();
    let block_area = rect.area().max(f64::MIN_POSITIVE);
    let ix0 = (rect.x0 / dx).floor() as usize;
    let ix1 = ((rect.x1 / dx).ceil() as usize).min(nx);
    let iy0 = (rect.y0 / dy).floor() as usize;
    let iy1 = ((rect.y1 / dy).ceil() as usize).min(ny);
    for iy in iy0..iy1 {
        for ix in ix0..ix1 {
            let cell = Rect {
                x0: ix as f64 * dx,
                y0: iy as f64 * dy,
                x1: (ix + 1) as f64 * dx,
                y1: (iy + 1) as f64 * dy,
            };
            let ov = rect.overlap(&cell);
            if ov > 0.0 {
                cover.push((iy * nx + ix, ov / block_area));
            }
        }
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Floorplan;

    #[test]
    fn coverage_fractions_sum_to_one() {
        let fp = Floorplan::opensparc_3d(2);
        let grid = ThermalGrid::new(&fp, &GridConfig::default());
        for b in 0..grid.block_cells.len() {
            let sum: f64 = grid.coverage(b).iter().map(|(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9, "block {b} coverage sums to {sum}");
        }
    }

    #[test]
    fn conductances_positive() {
        let fp = Floorplan::opensparc_3d(8);
        let grid = ThermalGrid::new(&fp, &GridConfig::default());
        let (gx, gy, gz) = grid.g_xyz();
        assert!(gx > 0.0 && gy > 0.0 && gz > 0.0);
        assert!(grid.g_sink() > 0.0);
        assert!(grid.capacitance() > 0.0);
        // The vertical path crosses the ILD, so it is far more resistive
        // than lateral conduction within silicon relative to geometry.
        assert_eq!(grid.cell_count(), 16 * 12 * 8);
    }

    #[test]
    fn field_block_lookup_bounds_checked() {
        let fp = Floorplan::opensparc_3d(2);
        let grid = ThermalGrid::new(&fp, &GridConfig::default());
        let field = grid.steady_state(&crate::PowerMap::new(&fp)).expect("zero-power solve");
        let id = crate::floorplan::BlockId { layer: 5, unit: r2d3_isa::Unit::Ifu };
        assert!(field.block_avg(id).is_err());
    }
}
