//! Power maps: per-block dissipation for a thermal solve.

use crate::floorplan::{BlockId, Floorplan};
use r2d3_isa::Unit;
use serde::{Deserialize, Serialize};

/// Per-block power assignment (watts), layer-major in floorplan block
/// order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerMap {
    layers: usize,
    unit_order: Vec<Unit>,
    watts: Vec<f64>,
}

impl PowerMap {
    /// Creates an all-zero power map for `floorplan`.
    #[must_use]
    pub fn new(floorplan: &Floorplan) -> Self {
        let unit_order: Vec<Unit> = floorplan.blocks().iter().map(|(u, _)| *u).collect();
        PowerMap {
            layers: floorplan.layers(),
            watts: vec![0.0; floorplan.layers() * unit_order.len()],
            unit_order,
        }
    }

    fn index(&self, layer: usize, unit: Unit) -> Option<usize> {
        if layer >= self.layers {
            return None;
        }
        let pos = self.unit_order.iter().position(|u| *u == unit)?;
        Some(layer * self.unit_order.len() + pos)
    }

    /// Adds `watts` to a block's power (silently ignores out-of-range
    /// layers, which simplifies policy loops over heterogeneous stacks).
    pub fn add_block(&mut self, layer: usize, unit: Unit, watts: f64) {
        if let Some(i) = self.index(layer, unit) {
            self.watts[i] += watts;
        }
    }

    /// Sets a block's power.
    pub fn set_block(&mut self, layer: usize, unit: Unit, watts: f64) {
        if let Some(i) = self.index(layer, unit) {
            self.watts[i] = watts;
        }
    }

    /// A block's power in watts (0 if out of range).
    #[must_use]
    pub fn block(&self, layer: usize, unit: Unit) -> f64 {
        self.index(layer, unit).map_or(0.0, |i| self.watts[i])
    }

    /// A block's power by [`BlockId`].
    #[must_use]
    pub fn block_id(&self, id: BlockId) -> f64 {
        self.block(id.layer, id.unit)
    }

    /// Total power in watts.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.watts.iter().sum()
    }

    /// Number of layers covered.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Raw per-block powers (layer-major, floorplan order).
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.watts
    }

    /// Scales all powers by a factor (e.g. a global activity derating).
    pub fn scale(&mut self, factor: f64) {
        for w in &mut self.watts {
            *w *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_get() {
        let fp = Floorplan::opensparc_3d(2);
        let mut p = PowerMap::new(&fp);
        p.set_block(0, Unit::Exu, 0.1);
        p.add_block(0, Unit::Exu, 0.05);
        assert!((p.block(0, Unit::Exu) - 0.15).abs() < 1e-12);
        assert_eq!(p.block(1, Unit::Exu), 0.0);
        assert!((p.total() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_is_noop() {
        let fp = Floorplan::opensparc_3d(2);
        let mut p = PowerMap::new(&fp);
        p.set_block(9, Unit::Ifu, 1.0);
        assert_eq!(p.total(), 0.0);
    }

    #[test]
    fn scale_scales_everything() {
        let fp = Floorplan::opensparc_3d(1);
        let mut p = PowerMap::new(&fp);
        for u in Unit::ALL {
            p.set_block(0, u, 1.0);
        }
        p.scale(0.5);
        assert!((p.total() - 2.5).abs() < 1e-12);
    }
}
