//! Aggregation of campaign outcomes into the paper's Fig. 4 categories.

use crate::campaign::{CampaignOutcome, FaultStatus};
use serde::{Deserialize, Serialize};

/// Detection-latency buckets from Fig. 4(c), in test instructions
/// (one random pattern models one test instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatencyBucket {
    /// Detected within 50 instructions.
    Lt50,
    /// Detected within 500 instructions.
    Lt500,
    /// Detected within 5 000 instructions.
    Lt5k,
    /// Detected, but only after more than 5 000 instructions.
    Gt5k,
}

impl LatencyBucket {
    /// All buckets in Fig. 4(c) order.
    pub const ALL: [LatencyBucket; 4] =
        [LatencyBucket::Lt50, LatencyBucket::Lt500, LatencyBucket::Lt5k, LatencyBucket::Gt5k];

    /// Classifies a detection pattern index.
    #[must_use]
    pub fn for_pattern(pattern: usize) -> LatencyBucket {
        match pattern {
            0..=49 => LatencyBucket::Lt50,
            50..=499 => LatencyBucket::Lt500,
            500..=4999 => LatencyBucket::Lt5k,
            _ => LatencyBucket::Gt5k,
        }
    }

    /// Human-readable label matching the figure legend.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LatencyBucket::Lt50 => "<50",
            LatencyBucket::Lt500 => "<500",
            LatencyBucket::Lt5k => "<5K",
            LatencyBucket::Gt5k => ">5K",
        }
    }
}

/// Fig. 4(b)-style summary for one unit (or aggregate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitReport {
    /// Label: a unit name, "Total" or "Core-Level".
    pub label: String,
    /// Total faults in the universe.
    pub total: usize,
    /// Detected within the budget.
    pub detected: usize,
    /// Detectable but not detected within the budget.
    pub undetected: usize,
    /// Provably undetectable.
    pub undetectable: usize,
    /// Detected-fault latency histogram (Fig. 4(c)), per bucket.
    pub latency: [usize; 4],
}

impl UnitReport {
    /// Percentage of all faults that are detectable (Fig. 4(b) coverage).
    #[must_use]
    pub fn detectable_pct(&self) -> f64 {
        100.0 * (self.detected + self.undetected) as f64 / self.total.max(1) as f64
    }

    /// Percentage of detectable faults detected within the budget.
    #[must_use]
    pub fn detected_of_detectable_pct(&self) -> f64 {
        let detectable = self.detected + self.undetected;
        100.0 * self.detected as f64 / detectable.max(1) as f64
    }

    /// Percentage of detectable faults detected within `bucket` *or any
    /// faster bucket* (cumulative; the paper quotes "96 % within 5 k").
    #[must_use]
    pub fn cumulative_detected_pct(&self, bucket: LatencyBucket) -> f64 {
        let detectable = (self.detected + self.undetected).max(1);
        let upto = LatencyBucket::ALL
            .iter()
            .take_while(|b| **b != bucket)
            .chain(std::iter::once(&bucket))
            .map(|b| self.latency[*b as usize])
            .sum::<usize>();
        100.0 * upto as f64 / detectable as f64
    }

    /// Merges another report into an aggregate (used for "Total").
    pub fn merge(&mut self, other: &UnitReport) {
        self.total += other.total;
        self.detected += other.detected;
        self.undetected += other.undetected;
        self.undetectable += other.undetectable;
        for (a, b) in self.latency.iter_mut().zip(other.latency) {
            *a += b;
        }
    }
}

/// Builds a [`UnitReport`] from a campaign outcome.
#[must_use]
pub fn unit_report(label: impl Into<String>, outcome: &CampaignOutcome) -> UnitReport {
    let mut report = UnitReport {
        label: label.into(),
        total: outcome.statuses().len(),
        detected: 0,
        undetected: 0,
        undetectable: 0,
        latency: [0; 4],
    };
    for status in outcome.statuses() {
        match status {
            FaultStatus::Detected { pattern } => {
                report.detected += 1;
                report.latency[LatencyBucket::for_pattern(*pattern) as usize] += 1;
            }
            FaultStatus::Undetected => report.undetected += 1,
            FaultStatus::Undetectable => report.undetectable += 1,
        }
    }
    report
}

/// Latency histogram over detected faults as fractions of detectable
/// faults, in [`LatencyBucket::ALL`] order.
#[must_use]
pub fn latency_histogram(outcome: &CampaignOutcome) -> [f64; 4] {
    let report = unit_report("", outcome);
    let detectable = (report.detected + report.undetected).max(1) as f64;
    let mut h = [0.0; 4];
    for (i, count) in report.latency.iter().enumerate() {
        h[i] = *count as f64 / detectable;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use crate::fault::all_faults;
    use r2d3_netlist::NetlistBuilder;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LatencyBucket::for_pattern(0), LatencyBucket::Lt50);
        assert_eq!(LatencyBucket::for_pattern(49), LatencyBucket::Lt50);
        assert_eq!(LatencyBucket::for_pattern(50), LatencyBucket::Lt500);
        assert_eq!(LatencyBucket::for_pattern(4999), LatencyBucket::Lt5k);
        assert_eq!(LatencyBucket::for_pattern(5000), LatencyBucket::Gt5k);
    }

    #[test]
    fn report_sums_to_total() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(8);
        let t = b.and_tree(&i);
        let x = b.xor_tree(&i);
        b.output(t);
        b.output(x);
        let nl = b.finish();
        let out = run_campaign(&nl, &all_faults(&nl), &CampaignConfig::default());
        let r = unit_report("test", &out);
        assert_eq!(r.detected + r.undetected + r.undetectable, r.total);
        assert_eq!(r.latency.iter().sum::<usize>(), r.detected);
        assert!(r.detectable_pct() <= 100.0);
    }

    #[test]
    fn cumulative_is_monotone() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(16);
        let t = b.and_tree(&i);
        b.output(t);
        let nl = b.finish();
        let out = run_campaign(
            &nl,
            &all_faults(&nl),
            &CampaignConfig { max_patterns: 1 << 14, ..Default::default() },
        );
        let r = unit_report("t", &out);
        let mut prev = 0.0;
        for bucket in LatencyBucket::ALL {
            let c = r.cumulative_detected_pct(bucket);
            assert!(c >= prev, "cumulative must be monotone");
            prev = c;
        }
    }

    #[test]
    fn merge_accumulates() {
        let mut a = UnitReport {
            label: "Total".into(),
            total: 10,
            detected: 5,
            undetected: 3,
            undetectable: 2,
            latency: [5, 0, 0, 0],
        };
        let b = UnitReport {
            label: "x".into(),
            total: 4,
            detected: 4,
            undetected: 0,
            undetectable: 0,
            latency: [2, 2, 0, 0],
        };
        a.merge(&b);
        assert_eq!(a.total, 14);
        assert_eq!(a.detected, 9);
        assert_eq!(a.latency, [7, 2, 0, 0]);
    }
}
