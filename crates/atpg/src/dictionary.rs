//! Fault dictionaries: syndrome-based diagnosis.
//!
//! R2D3 "localizes faults at the granularity of a pipeline unit"
//! (contribution 2). At manufacturing/bring-up time the classical tool
//! for localization is a *fault dictionary*: simulate every fault under a
//! fixed pattern set, record each fault's output syndrome, and look up
//! observed silicon responses in the table. This module provides that
//! flow over the gate-level stage netlists, including the resolution
//! statistics (how many candidate faults share a syndrome) that bound
//! how precisely a symptom can be localized.

use crate::fault::Fault;
use r2d3_netlist::{pack_blocks, FaultCone, FaultSim, Netlist, SimBlock, WideScratch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A built dictionary: pattern set plus syndrome → candidate-fault map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultDictionary {
    /// Input blocks (64 patterns each), one `Vec<u64>` per block.
    patterns: Vec<Vec<u64>>,
    faults: Vec<Fault>,
    /// Syndrome hash → indices into `faults`.
    classes: HashMap<u64, Vec<usize>>,
    /// Syndrome of the fault-free circuit (hash of all-zero diffs).
    clean_hash: u64,
}

fn hash_words(h: &mut u64, words: impl IntoIterator<Item = u64>) {
    for w in words {
        *h ^= w;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

impl FaultDictionary {
    /// Builds a dictionary for `faults` under `blocks` blocks of 64
    /// deterministic pseudo-random patterns.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    #[must_use]
    pub fn build(netlist: &Netlist, faults: &[Fault], blocks: usize, seed: u64) -> Self {
        assert!(blocks > 0, "dictionary needs patterns");
        let mut rng = StdRng::seed_from_u64(seed);
        let patterns: Vec<Vec<u64>> =
            (0..blocks).map(|_| (0..netlist.num_inputs()).map(|_| rng.gen()).collect()).collect();

        // Full net-value vectors per block: the incremental engine
        // simulates each fault's fanout cone against these cached goods
        // instead of re-evaluating the whole netlist per (fault, block).
        let goods: Vec<Vec<u64>> = patterns.iter().map(|p| netlist.eval_all(p)).collect();
        let mut clean_hash = 0xcbf2_9ce4_8422_2325u64;
        for _ in &goods {
            hash_words(&mut clean_hash, netlist.outputs().iter().map(|_| 0u64));
        }

        // Fuse blocks into 512-lane groups and walk each fault's cone
        // once per group with the value-exact wide kernel. Hashing the
        // per-output diff of each *real* block in global block order
        // yields hashes identical to a block-at-a-time walk — lanes are
        // independent, so the wide diffs match the narrow ones bit for
        // bit, and padded lanes are never hashed.
        const DICT_LANES: usize = 8;
        let groups: Vec<(Vec<SimBlock<DICT_LANES>>, usize)> = goods
            .chunks(DICT_LANES)
            .map(|chunk| {
                let refs: Vec<&[u64]> = chunk.iter().map(Vec::as_slice).collect();
                (pack_blocks::<DICT_LANES>(&refs), chunk.len())
            })
            .collect();

        let engine = FaultSim::new(netlist);
        let mut cone = FaultCone::new();
        let mut wide = WideScratch::<DICT_LANES>::new();
        let mut classes: HashMap<u64, Vec<usize>> = HashMap::new();
        for (fi, fault) in faults.iter().enumerate() {
            engine.cone_into(fault.net, &mut cone);
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for (packed, real) in &groups {
                engine.eval_stuck_wide(packed, (fault.net, fault.stuck), &cone, &mut wide);
                for g in 0..*real {
                    hash_words(
                        &mut h,
                        netlist
                            .outputs()
                            .iter()
                            .map(|&o| wide.value(packed, o)[g] ^ packed[o.index()][g]),
                    );
                }
            }
            classes.entry(h).or_default().push(fi);
        }

        FaultDictionary { patterns, faults: faults.to_vec(), classes, clean_hash }
    }

    /// The pattern blocks the dictionary was built with (apply these to
    /// the device under diagnosis).
    #[must_use]
    pub fn patterns(&self) -> &[Vec<u64>] {
        &self.patterns
    }

    /// Diagnoses a device: `respond` receives each pattern block and must
    /// return the device's primary-output values. Returns the candidate
    /// faults whose dictionary syndrome matches (empty when the response
    /// matches no known single stuck-at fault; the exact clean response
    /// returns the faults whose syndrome is empty, i.e. undetected ones).
    #[must_use]
    pub fn diagnose(
        &self,
        netlist: &Netlist,
        mut respond: impl FnMut(&[u64]) -> Vec<u64>,
    ) -> Vec<Fault> {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for pattern in &self.patterns {
            let good = netlist.eval(pattern);
            let observed = respond(pattern);
            hash_words(&mut h, observed.iter().zip(&good).map(|(o, g)| o ^ g));
        }
        self.classes
            .get(&h)
            .map(|idxs| idxs.iter().map(|&i| self.faults[i]).collect())
            .unwrap_or_default()
    }

    /// Whether a response hash equals the fault-free syndrome.
    #[must_use]
    pub fn is_clean_syndrome(
        &self,
        netlist: &Netlist,
        mut respond: impl FnMut(&[u64]) -> Vec<u64>,
    ) -> bool {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for pattern in &self.patterns {
            let good = netlist.eval(pattern);
            let observed = respond(pattern);
            hash_words(&mut h, observed.iter().zip(&good).map(|(o, g)| o ^ g));
        }
        h == self.clean_hash
    }

    /// Diagnostic resolution: mean number of candidate faults per
    /// equivalence class (1.0 = every fault uniquely identifiable).
    #[must_use]
    pub fn resolution(&self) -> f64 {
        if self.classes.is_empty() {
            return 0.0;
        }
        self.faults.len() as f64 / self.classes.len() as f64
    }

    /// Number of distinguishable syndrome classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::collapsed_faults;
    use r2d3_netlist::stages::{stage_netlist, StageSizing};
    use r2d3_netlist::NetlistBuilder;

    #[test]
    fn diagnosis_recovers_the_injected_fault() {
        let sizing = StageSizing { gates_per_mm2: 1_000.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Exu, &sizing);
        let nl = sn.netlist();
        let faults = collapsed_faults(nl);
        let dict = FaultDictionary::build(nl, &faults, 4, 42);

        // Inject every 13th fault and check the dictionary finds it.
        for fault in faults.iter().step_by(13) {
            let candidates = dict.diagnose(nl, |pattern| {
                let v = nl.eval_all_stuck(pattern, (fault.net, fault.stuck));
                nl.output_values(&v)
            });
            assert!(
                candidates.contains(fault),
                "dictionary missed {fault}: candidates {candidates:?}"
            );
        }
    }

    #[test]
    fn clean_device_matches_clean_syndrome() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(6);
        let x = b.xor_tree(&i);
        let y = b.and_tree(&i);
        b.output(x);
        b.output(y);
        let nl = b.finish();
        let faults = crate::fault::all_faults(&nl);
        let dict = FaultDictionary::build(&nl, &faults, 2, 7);
        assert!(dict.is_clean_syndrome(&nl, |p| nl.eval(p)));
    }

    #[test]
    fn resolution_improves_with_more_patterns() {
        let sizing = StageSizing { gates_per_mm2: 800.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Tlu, &sizing);
        let nl = sn.netlist();
        let faults = collapsed_faults(nl);
        let small = FaultDictionary::build(nl, &faults, 1, 5);
        let large = FaultDictionary::build(nl, &faults, 8, 5);
        assert!(
            large.class_count() >= small.class_count(),
            "more patterns must distinguish at least as many classes ({} vs {})",
            large.class_count(),
            small.class_count()
        );
        assert!(large.resolution() <= small.resolution());
        assert!(large.resolution() >= 1.0);
    }

    #[test]
    fn equivalent_faults_share_a_class() {
        // SA0 on the output of an AND and SA0 on either single-fanout
        // input are classically equivalent — the dictionary must not
        // separate them.
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let a = b.and2(i[0], i[1]);
        b.output(a);
        let nl = b.finish();
        let faults = vec![Fault::sa0(i[0]), Fault::sa0(i[1]), Fault::sa0(a)];
        let dict = FaultDictionary::build(&nl, &faults, 4, 3);
        assert_eq!(dict.class_count(), 1, "all three SA0s are equivalent");
        assert!((dict.resolution() - 3.0).abs() < 1e-12);
    }
}
