//! PODEM — deterministic test-pattern generation.
//!
//! Random patterns leave a tail of hard-to-sensitize faults undetected
//! (deep AND/OR structures, reconvergent masking). Commercial ATPG —
//! TetraMAX in the paper — closes that tail with deterministic search.
//! This module implements PODEM (Path-Oriented DEcision Making, Goel
//! 1981): a branch-and-bound search over *primary-input* assignments
//! that either produces a test vector for a stuck-at fault, proves the
//! fault untestable, or gives up after a backtrack budget.
//!
//! The engine works on the five-valued D-algebra: `0`, `1`, `X`,
//! `D` (good 1 / faulty 0) and `D̄` (good 0 / faulty 1).
//!
//! # Example
//!
//! ```
//! use r2d3_netlist::NetlistBuilder;
//! use r2d3_atpg::podem::{podem, PodemResult};
//! use r2d3_atpg::fault::Fault;
//!
//! // A 4-input AND tree: SA0 at the root needs the all-ones pattern —
//! // hard for random patterns, one backtrace for PODEM.
//! let mut b = NetlistBuilder::new();
//! let i = b.inputs(4);
//! let root = b.and_tree(&i);
//! b.output(root);
//! let nl = b.finish();
//!
//! match podem(&nl, Fault::sa0(root), 1000) {
//!     PodemResult::Test(pattern) => {
//!         assert!(pattern.iter().all(|v| *v == Some(true)));
//!     }
//!     other => panic!("expected a test, got {other:?}"),
//! }
//! ```

use crate::fault::Fault;
use r2d3_netlist::{Gate, GateKind, NetId, Netlist};
use serde::{Deserialize, Serialize};

/// Five-valued D-algebra value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum V5 {
    /// Logic 0 in both good and faulty circuit.
    Zero,
    /// Logic 1 in both circuits.
    One,
    /// Unassigned / unknown.
    X,
    /// Good 1, faulty 0 (the fault effect).
    D,
    /// Good 0, faulty 1.
    Db,
}

impl V5 {
    /// Good-circuit component (`None` = unknown).
    #[must_use]
    pub fn good(self) -> Option<bool> {
        match self {
            V5::Zero | V5::Db => Some(false),
            V5::One | V5::D => Some(true),
            V5::X => None,
        }
    }

    /// Faulty-circuit component (`None` = unknown).
    #[must_use]
    pub fn faulty(self) -> Option<bool> {
        match self {
            V5::Zero | V5::D => Some(false),
            V5::One | V5::Db => Some(true),
            V5::X => None,
        }
    }

    /// Whether the value carries a fault effect.
    #[must_use]
    pub fn is_d(self) -> bool {
        matches!(self, V5::D | V5::Db)
    }

    fn from_parts(good: Option<bool>, faulty: Option<bool>) -> V5 {
        match (good, faulty) {
            (Some(false), Some(false)) => V5::Zero,
            (Some(true), Some(true)) => V5::One,
            (Some(true), Some(false)) => V5::D,
            (Some(false), Some(true)) => V5::Db,
            _ => V5::X,
        }
    }

    fn not(self) -> V5 {
        V5::from_parts(self.good().map(|b| !b), self.faulty().map(|b| !b))
    }
}

fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn xor3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x ^ y),
        _ => None,
    }
}

fn v5_and(a: V5, b: V5) -> V5 {
    V5::from_parts(and3(a.good(), b.good()), and3(a.faulty(), b.faulty()))
}

fn v5_or(a: V5, b: V5) -> V5 {
    V5::from_parts(or3(a.good(), b.good()), or3(a.faulty(), b.faulty()))
}

fn v5_xor(a: V5, b: V5) -> V5 {
    V5::from_parts(xor3(a.good(), b.good()), xor3(a.faulty(), b.faulty()))
}

fn v5_mux(s: V5, a: V5, b: V5) -> V5 {
    // out = (s & a) | (!s & b), componentwise.
    v5_or(v5_and(s, a), v5_and(s.not(), b))
}

fn eval_gate(gate: &Gate, values: &[V5]) -> V5 {
    let input = |i: usize| values[gate.inputs[i].index()];
    match gate.kind {
        GateKind::Buf => input(0),
        GateKind::Not => input(0).not(),
        GateKind::And => v5_and(input(0), input(1)),
        GateKind::Or => v5_or(input(0), input(1)),
        GateKind::Nand => v5_and(input(0), input(1)).not(),
        GateKind::Nor => v5_or(input(0), input(1)).not(),
        GateKind::Xor => v5_xor(input(0), input(1)),
        GateKind::Xnor => v5_xor(input(0), input(1)).not(),
        GateKind::Mux => v5_mux(input(0), input(1), input(2)),
        GateKind::Const0 => V5::Zero,
        GateKind::Const1 => V5::One,
    }
}

/// Outcome of a PODEM run for one fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PodemResult {
    /// A test vector: per-PI assignment (`None` = don't care).
    Test(Vec<Option<bool>>),
    /// The fault is provably untestable: the search space is exhausted.
    Untestable,
    /// The backtrack budget ran out before a verdict.
    Aborted,
}

/// Runs PODEM for one stuck-at fault.
///
/// `max_backtracks` bounds the search; commercial tools use budgets in
/// the tens of thousands. Returns [`PodemResult::Untestable`] only after
/// exhausting the decision space, so that verdict is a proof.
#[must_use]
pub fn podem(netlist: &Netlist, fault: Fault, max_backtracks: usize) -> PodemResult {
    debug_assert!(
        r2d3_netlist::ir::validate(netlist).is_ok(),
        "PODEM requires a valid IR netlist: {:?}",
        r2d3_netlist::ir::validate(netlist)
    );
    let mut engine = Podem::new(netlist, fault);
    engine.run(max_backtracks)
}

struct Podem<'a> {
    netlist: &'a Netlist,
    fault: Fault,
    /// Current PI assignments.
    pi: Vec<Option<bool>>,
    /// Net values from the last implication pass.
    values: Vec<V5>,
    /// Decision stack: (pi index, value tried first, flipped already?).
    stack: Vec<(usize, bool, bool)>,
    /// `driver[net] = index of the gate driving it` (PIs have none).
    driver: Vec<Option<usize>>,
}

impl<'a> Podem<'a> {
    fn new(netlist: &'a Netlist, fault: Fault) -> Self {
        let mut driver = vec![None; netlist.num_nets()];
        for (gi, gate) in netlist.gates().iter().enumerate() {
            driver[gate.output.index()] = Some(gi);
        }
        Podem {
            netlist,
            fault,
            pi: vec![None; netlist.num_inputs()],
            values: vec![V5::X; netlist.num_nets()],
            stack: Vec::new(),
            driver,
        }
    }

    fn run(&mut self, max_backtracks: usize) -> PodemResult {
        let mut backtracks = 0usize;
        self.imply();
        loop {
            if self.test_found() {
                return PodemResult::Test(self.pi.clone());
            }
            // Choose the next objective and backtrace it to a PI.
            let next = self.objective().and_then(|(net, val)| self.backtrace(net, val));
            match next {
                Some((pi, val)) => {
                    self.pi[pi] = Some(val);
                    self.stack.push((pi, val, false));
                    self.imply();
                }
                None => {
                    // Dead end: undo decisions until an unflipped one.
                    loop {
                        match self.stack.pop() {
                            Some((pi, first, flipped)) if !flipped => {
                                backtracks += 1;
                                if backtracks > max_backtracks {
                                    return PodemResult::Aborted;
                                }
                                self.pi[pi] = Some(!first);
                                self.stack.push((pi, first, true));
                                self.imply();
                                break;
                            }
                            Some((pi, _, _)) => {
                                self.pi[pi] = None;
                            }
                            None => return PodemResult::Untestable,
                        }
                    }
                }
            }
        }
    }

    /// Forward implication: five-valued simulation with the fault
    /// injected at its site.
    fn imply(&mut self) {
        for (i, v) in self.pi.iter().enumerate() {
            let mut val = match v {
                Some(true) => V5::One,
                Some(false) => V5::Zero,
                None => V5::X,
            };
            if self.fault.net.index() == i {
                val = inject(val, self.fault.stuck);
            }
            self.values[i] = val;
        }
        for gate in self.netlist.gates() {
            let mut val = eval_gate(gate, &self.values);
            if gate.output == self.fault.net {
                val = inject(val, self.fault.stuck);
            }
            self.values[gate.output.index()] = val;
        }
    }

    fn test_found(&self) -> bool {
        self.netlist.outputs().iter().any(|o| self.values[o.index()].is_d())
    }

    /// Whether the fault site currently carries (or could carry) the
    /// activating value.
    fn activation_state(&self) -> Activation {
        let v = self.values[self.fault.net.index()];
        if v.is_d() {
            Activation::Active
        } else {
            match v.good() {
                None => Activation::Possible,
                // Good value equals the stuck value: no effect visible.
                Some(g) if g == self.fault.stuck => Activation::Blocked,
                // Good value differs but no D appeared: can only happen
                // at a site whose faulty component is equally fixed —
                // treat as blocked.
                Some(_) => Activation::Blocked,
            }
        }
    }

    /// Next objective `(net, value)`.
    fn objective(&self) -> Option<(NetId, bool)> {
        match self.activation_state() {
            Activation::Blocked => None,
            Activation::Possible => Some((self.fault.net, !self.fault.stuck)),
            Activation::Active => {
                // Propagate: pick a D-frontier gate and set one of its X
                // inputs to the gate's non-controlling value.
                for gate in self.netlist.gates() {
                    if self.values[gate.output.index()] != V5::X {
                        continue;
                    }
                    let has_d = gate.inputs.iter().any(|i| self.values[i.index()].is_d());
                    if !has_d {
                        continue;
                    }
                    let x_input = gate.inputs.iter().find(|i| self.values[i.index()] == V5::X)?;
                    let val = non_controlling(gate.kind)?;
                    return Some((*x_input, val));
                }
                None
            }
        }
    }

    /// Backtraces an objective to an unassigned primary input.
    fn backtrace(&self, mut net: NetId, mut val: bool) -> Option<(usize, bool)> {
        loop {
            match self.driver[net.index()] {
                None => {
                    // Primary input.
                    let idx = net.index();
                    if idx >= self.pi.len() || self.pi[idx].is_some() {
                        return None;
                    }
                    return Some((idx, val));
                }
                Some(gi) => {
                    let gate = &self.netlist.gates()[gi];
                    match gate.kind {
                        GateKind::Const0 | GateKind::Const1 => return None,
                        GateKind::Buf => net = gate.inputs[0],
                        GateKind::Not => {
                            net = gate.inputs[0];
                            val = !val;
                        }
                        GateKind::Nand | GateKind::Nor => {
                            let inner = pick_x_input(gate, &self.values)?;
                            net = inner;
                            val = !val;
                        }
                        GateKind::And | GateKind::Or | GateKind::Xor | GateKind::Xnor => {
                            net = pick_x_input(gate, &self.values)?;
                            // For XOR/XNOR the needed input value depends on
                            // the other input; guessing `val` is fine — PODEM
                            // corrects wrong guesses by backtracking.
                        }
                        GateKind::Mux => {
                            // Prefer steering the select if it is free.
                            let sel = gate.inputs[0];
                            net = if self.values[sel.index()] == V5::X {
                                sel
                            } else {
                                pick_x_input(gate, &self.values)?
                            };
                        }
                    }
                }
            }
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Activation {
    Active,
    Possible,
    Blocked,
}

/// Injects a stuck value into a site's five-valued state.
fn inject(v: V5, stuck: bool) -> V5 {
    V5::from_parts(v.good(), Some(stuck))
}

fn non_controlling(kind: GateKind) -> Option<bool> {
    match kind {
        GateKind::And | GateKind::Nand => Some(true),
        GateKind::Or | GateKind::Nor => Some(false),
        // XOR-family and MUX propagate for either value.
        GateKind::Xor | GateKind::Xnor | GateKind::Mux => Some(false),
        GateKind::Buf | GateKind::Not => Some(true),
        GateKind::Const0 | GateKind::Const1 => None,
    }
}

fn pick_x_input(gate: &Gate, values: &[V5]) -> Option<NetId> {
    gate.inputs.iter().copied().find(|i| values[i.index()] == V5::X)
}

/// Verifies a PODEM test vector by two-valued simulation: the fault must
/// be observable at a primary output with the pattern applied (don't-care
/// inputs set to 0).
#[must_use]
pub fn verify_test(netlist: &Netlist, fault: Fault, pattern: &[Option<bool>]) -> bool {
    let inputs: Vec<u64> =
        pattern.iter().map(|v| if v.unwrap_or(false) { !0u64 } else { 0u64 }).collect();
    let good = netlist.eval_all(&inputs);
    let bad = netlist.eval_all_stuck(&inputs, (fault.net, fault.stuck));
    netlist.outputs().iter().any(|o| (good[o.index()] ^ bad[o.index()]) & 1 != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d3_netlist::NetlistBuilder;

    #[test]
    fn v5_algebra_basics() {
        assert_eq!(v5_and(V5::D, V5::One), V5::D);
        assert_eq!(v5_and(V5::D, V5::Zero), V5::Zero);
        assert_eq!(v5_and(V5::D, V5::Db), V5::Zero, "D & D̄ = (1&0, 0&1) = 0");
        assert_eq!(v5_or(V5::Db, V5::Zero), V5::Db);
        assert_eq!(v5_xor(V5::D, V5::One), V5::Db);
        assert_eq!(V5::D.not(), V5::Db);
        assert_eq!(v5_and(V5::X, V5::Zero), V5::Zero, "controlling beats X");
        assert_eq!(v5_or(V5::X, V5::One), V5::One);
        assert_eq!(v5_and(V5::X, V5::One), V5::X);
    }

    #[test]
    fn finds_test_for_deep_and_tree() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(16);
        let root = b.and_tree(&i);
        b.output(root);
        let nl = b.finish();
        let fault = Fault::sa0(root);
        match podem(&nl, fault, 10_000) {
            PodemResult::Test(p) => {
                assert!(verify_test(&nl, fault, &p), "returned vector must detect");
                assert!(p.iter().all(|v| *v == Some(true)));
            }
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn proves_redundant_fault_untestable() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let z = b.redundant_zero(i[0]); // a & !a == 0 always
        let live = b.or2(i[1], z);
        b.output(live);
        let nl = b.finish();
        assert_eq!(podem(&nl, Fault::sa0(z), 10_000), PodemResult::Untestable);
        // The opposite polarity IS testable (forces the OR high).
        match podem(&nl, Fault::sa1(z), 10_000) {
            PodemResult::Test(p) => assert!(verify_test(&nl, Fault::sa1(z), &p)),
            other => panic!("sa1 should be testable, got {other:?}"),
        }
    }

    #[test]
    fn unobservable_fault_untestable() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let dead = b.and2(i[0], i[1]);
        let live = b.xor2(i[0], i[1]);
        let _ = dead;
        b.output(live);
        let nl = b.finish();
        assert_eq!(podem(&nl, Fault::sa1(dead), 10_000), PodemResult::Untestable);
    }

    #[test]
    fn every_test_verifies_on_stage_netlists() {
        use r2d3_netlist::stages::{stage_netlist, StageSizing};
        let sizing = StageSizing { gates_per_mm2: 1_500.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Tlu, &sizing);
        let nl = sn.netlist();
        let faults = crate::fault::collapsed_faults(nl);
        let mut tested = 0;
        let mut untestable = 0;
        let mut aborted = 0;
        for fault in faults.iter().step_by(7) {
            match podem(nl, *fault, 2_000) {
                PodemResult::Test(p) => {
                    tested += 1;
                    assert!(
                        verify_test(nl, *fault, &p),
                        "PODEM vector for {fault} fails simulation"
                    );
                }
                PodemResult::Untestable => untestable += 1,
                PodemResult::Aborted => aborted += 1,
            }
        }
        assert!(tested > 0, "PODEM generated no tests");
        // Ground-truth redundant faults exist in the generated stage, so
        // some untestable verdicts should appear over a broad sample.
        assert!(
            tested + untestable + aborted > 0 && aborted <= tested,
            "tested {tested}, untestable {untestable}, aborted {aborted}"
        );
    }

    #[test]
    fn untestable_verdicts_agree_with_ground_truth() {
        use r2d3_netlist::stages::{stage_netlist, StageSizing};
        let sizing = StageSizing { gates_per_mm2: 1_500.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Ffu, &sizing);
        let nl = sn.netlist();
        for &(net, val) in nl.redundant_constants() {
            // Stuck at the constant value is provably undetectable.
            let fault = Fault { net, stuck: val };
            match podem(nl, fault, 5_000) {
                PodemResult::Untestable | PodemResult::Aborted => {}
                PodemResult::Test(p) => {
                    assert!(
                        !verify_test(nl, fault, &p),
                        "PODEM 'detected' a provably redundant fault {fault}"
                    );
                    panic!("PODEM returned a test for redundant fault {fault}");
                }
            }
        }
    }

    #[test]
    fn mux_propagation_works() {
        // Fault behind a mux: PODEM must steer the select.
        let mut b = NetlistBuilder::new();
        let i = b.inputs(3); // sel, a, b
        let inner = b.and2(i[1], i[2]);
        let out = b.mux2(i[0], inner, i[2]);
        b.output(out);
        let nl = b.finish();
        let fault = Fault::sa0(inner);
        match podem(&nl, fault, 10_000) {
            PodemResult::Test(p) => assert!(verify_test(&nl, fault, &p)),
            other => panic!("expected test, got {other:?}"),
        }
    }
}
