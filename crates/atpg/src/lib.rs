#![warn(missing_docs)]

//! Stuck-at ATPG engine for the R2D3 reproduction.
//!
//! The paper (§IV) uses Synopsys TetraMAX to generate stuck-at test
//! patterns for the synthesized netlist and classifies every fault as
//! *detected*, *undetected* (within a 10 M-instruction budget) or
//! *undetectable* (Fig. 4(b)), plus a detection-latency histogram
//! (Fig. 4(c)). This crate reproduces that flow on the generated stage
//! netlists from [`r2d3_netlist`]:
//!
//! * [`fault`] — the stuck-at fault universe,
//! * [`collapse`] — function-exact structural equivalence classes; the
//!   campaign simulates one representative per class and expands
//!   verdicts back byte-identically,
//! * [`observe`] — stage-boundary vs core-boundary observation models,
//!   including structural-observability analysis (reverse reachability
//!   from the observed outputs),
//! * [`campaign`] — the random-pattern fault-simulation campaign with
//!   64-way bit-parallel evaluation, fault dropping, and per-fault
//!   detection-latency recording,
//! * [`report`] — per-unit aggregation into the paper's Fig. 4(b)/4(c)
//!   categories.
//!
//! # Example
//!
//! ```
//! use r2d3_netlist::{NetlistBuilder};
//! use r2d3_atpg::{campaign::{run_campaign, CampaignConfig}, fault::all_faults};
//!
//! let mut b = NetlistBuilder::new();
//! let i = b.inputs(4);
//! let x = b.xor_tree(&i);
//! b.output(x);
//! let nl = b.finish();
//!
//! let outcome = run_campaign(&nl, &all_faults(&nl), &CampaignConfig::default());
//! // Every fault in a parity tree is detectable by random patterns.
//! assert_eq!(outcome.detected().count(), outcome.results().len());
//! ```

pub mod campaign;
pub mod collapse;
pub mod compact;
pub mod dictionary;
pub mod fault;
pub mod flow;
pub mod observe;
pub mod podem;
pub mod report;

pub use campaign::{
    run_campaign, run_campaign_reference, run_campaign_rewritten, CampaignConfig, CampaignOutcome,
    FaultStatus,
};
pub use collapse::{collapse_active, FaultClasses};
pub use compact::{compact, Compacted};
pub use dictionary::FaultDictionary;
pub use fault::{all_faults, collapsed_faults, Fault};
pub use flow::{run_full_flow, FlowConfig};
pub use observe::{
    core_level_campaign, core_level_campaign_rewritten, structurally_observable, CoreCampaignError,
};
pub use podem::{podem, PodemResult};
pub use report::{latency_histogram, unit_report, LatencyBucket, UnitReport};
