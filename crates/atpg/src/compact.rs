//! Static test-set compaction.
//!
//! A production test set is applied on every manufactured die (or, in
//! R2D3's online setting, on every epoch-boundary scan), so its *length*
//! is cost. Classic reverse-order fault-simulation compaction drops
//! patterns that detect nothing new when the set is replayed backwards —
//! typically shrinking random-generated sets severalfold at equal
//! coverage.
//!
//! Patterns are packed 64-per-block into the simulator's bit-parallel
//! lanes, so the detection matrix costs one incremental walk per fault
//! per *block* rather than per pattern. Lane `l` of a block's detect
//! word is exactly the single-pattern detect bit for pattern
//! `block * 64 + l` (lanes are independent in bit-parallel simulation),
//! so the greedy reverse-order decisions — which read one `(block,
//! lane)` bit per pattern — are identical to the unpacked walk.

use crate::fault::Fault;
use r2d3_netlist::{FaultCone, FaultSim, Netlist, SimScratch};
use std::collections::HashSet;

/// A single test pattern: one `bool` per primary input.
pub type Pattern = Vec<bool>;

/// Packs patterns 64-per-block into bit-parallel input lanes: lane `l`
/// of block `b` carries pattern `b * 64 + l`. Padding lanes of a
/// trailing partial block are all-false; callers must mask them out of
/// detect words before treating them as coverage.
fn pattern_blocks(patterns: &[Pattern], width: usize) -> Vec<Vec<u64>> {
    patterns
        .chunks(64)
        .map(|chunk| {
            let mut inputs = vec![0u64; width];
            for (lane, pattern) in chunk.iter().enumerate() {
                for (i, &bit) in pattern.iter().enumerate() {
                    inputs[i] |= u64::from(bit) << lane;
                }
            }
            inputs
        })
        .collect()
}

/// Detect word for the trailing partial block's real lanes only.
fn real_mask(n_real: usize) -> u64 {
    if n_real >= 64 {
        !0
    } else {
        (1u64 << n_real) - 1
    }
}

/// Full detection matrix: `det[block][fault]` is the 64-lane detect word
/// of `fault` under that block's packed patterns (padding lanes
/// unmasked). One value-exact incremental walk per `(fault, block)`.
fn detection_matrix(netlist: &Netlist, faults: &[Fault], patterns: &[Pattern]) -> Vec<Vec<u64>> {
    let engine = FaultSim::new(netlist);
    let mut cone = FaultCone::new();
    let mut scratch = SimScratch::new();
    pattern_blocks(patterns, netlist.num_inputs())
        .iter()
        .map(|inputs| {
            let good = netlist.eval_all(inputs);
            faults
                .iter()
                .map(|fault| {
                    engine.cone_into(fault.net, &mut cone);
                    engine.eval_stuck(&good, (fault.net, fault.stuck), &cone, &mut scratch);
                    engine.detect_word(&good, &scratch)
                })
                .collect()
        })
        .collect()
}

/// Result of a compaction pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compacted {
    /// Indices (into the original set) of the kept patterns, in replay
    /// order.
    pub kept: Vec<usize>,
    /// Faults (indices) covered by the kept set.
    pub covered: HashSet<usize>,
}

/// Reverse-order fault-simulation compaction: walk the pattern set from
/// the end, keeping a pattern only if it detects a fault no later-kept
/// pattern detects.
///
/// The kept set provably covers exactly the faults the full set covers
/// (tested below).
#[must_use]
pub fn compact(netlist: &Netlist, faults: &[Fault], patterns: &[Pattern]) -> Compacted {
    let det = detection_matrix(netlist, faults, patterns);
    let mut covered: HashSet<usize> = HashSet::new();
    let mut kept = Vec::new();
    for idx in (0..patterns.len()).rev() {
        let (block, lane) = (idx / 64, idx % 64);
        let bit = 1u64 << lane;
        let hits: Vec<usize> = (0..faults.len()).filter(|&f| det[block][f] & bit != 0).collect();
        if hits.iter().any(|h| !covered.contains(h)) {
            covered.extend(hits);
            kept.push(idx);
        }
    }
    kept.reverse();
    Compacted { kept, covered }
}

/// Coverage of an arbitrary pattern set (fault indices detected).
#[must_use]
pub fn coverage(netlist: &Netlist, faults: &[Fault], patterns: &[Pattern]) -> HashSet<usize> {
    let det = detection_matrix(netlist, faults, patterns);
    let mut covered = HashSet::new();
    for (block, row) in det.iter().enumerate() {
        let mask = real_mask(patterns.len() - block * 64);
        covered.extend((0..faults.len()).filter(|&f| row[f] & mask != 0));
    }
    covered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::collapsed_faults;
    use r2d3_netlist::stages::{stage_netlist, StageSizing};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_patterns(n: usize, width: usize, seed: u64) -> Vec<Pattern> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..width).map(|_| rng.gen()).collect()).collect()
    }

    #[test]
    fn compaction_preserves_coverage_and_shrinks() {
        let sizing = StageSizing { gates_per_mm2: 800.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Exu, &sizing);
        let nl = sn.netlist();
        let faults = collapsed_faults(nl);
        let patterns = random_patterns(128, nl.num_inputs(), 4);

        let full = coverage(nl, &faults, &patterns);
        let compacted = compact(nl, &faults, &patterns);
        assert_eq!(compacted.covered, full, "compaction must not lose coverage");
        assert!(
            compacted.kept.len() < patterns.len() / 2,
            "random sets compact well: kept {} of {}",
            compacted.kept.len(),
            patterns.len()
        );
        // The kept subset alone really covers everything.
        let kept_patterns: Vec<Pattern> =
            compacted.kept.iter().map(|&i| patterns[i].clone()).collect();
        assert_eq!(coverage(nl, &faults, &kept_patterns), full);
    }

    #[test]
    fn kept_order_is_replay_order() {
        let sizing = StageSizing { gates_per_mm2: 500.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Ffu, &sizing);
        let nl = sn.netlist();
        let faults = collapsed_faults(nl);
        let patterns = random_patterns(32, nl.num_inputs(), 9);
        let c = compact(nl, &faults, &patterns);
        for w in c.kept.windows(2) {
            assert!(w[0] < w[1], "kept indices must be ascending");
        }
    }

    #[test]
    fn empty_inputs_behave() {
        let sizing = StageSizing { gates_per_mm2: 500.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Tlu, &sizing);
        let nl = sn.netlist();
        let faults = collapsed_faults(nl);
        let c = compact(nl, &faults, &[]);
        assert!(c.kept.is_empty());
        assert!(c.covered.is_empty());
    }

    #[test]
    fn packed_matrix_matches_one_pattern_per_block() {
        // The packed detection matrix's (block, lane) bits must equal the
        // old one-pattern-per-walk scheme: replaying each pattern alone in
        // lane 0 of its own block.
        let sizing = StageSizing { gates_per_mm2: 400.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Lsu, &sizing);
        let nl = sn.netlist();
        let faults = collapsed_faults(nl);
        let patterns = random_patterns(70, nl.num_inputs(), 11);

        let det = detection_matrix(nl, &faults, &patterns);
        for (idx, pattern) in patterns.iter().enumerate() {
            let solo = detection_matrix(nl, &faults, std::slice::from_ref(pattern));
            for (f, &word) in solo[0].iter().enumerate() {
                let packed_bit = det[idx / 64][f] >> (idx % 64) & 1;
                assert_eq!(packed_bit, word & 1, "pattern {idx} fault {f}");
            }
        }
    }
}
