//! Static test-set compaction.
//!
//! A production test set is applied on every manufactured die (or, in
//! R2D3's online setting, on every epoch-boundary scan), so its *length*
//! is cost. Classic reverse-order fault-simulation compaction drops
//! patterns that detect nothing new when the set is replayed backwards —
//! typically shrinking random-generated sets severalfold at equal
//! coverage.

use crate::fault::Fault;
use r2d3_netlist::{FaultCone, FaultSim, Netlist, SimScratch};
use std::collections::HashSet;

/// A single test pattern: one `bool` per primary input.
pub type Pattern = Vec<bool>;

/// Expands a pattern to the bit-parallel input encoding (all 64 lanes
/// carry the same pattern).
fn lanes(pattern: &Pattern) -> Vec<u64> {
    pattern.iter().map(|&b| if b { !0u64 } else { 0 }).collect()
}

/// Per-fault fanout cones, derived once and replayed for every pattern.
fn fault_cones(engine: &FaultSim<'_>, faults: &[Fault]) -> Vec<FaultCone> {
    let mut cones = Vec::with_capacity(faults.len());
    for fault in faults {
        cones.push(engine.cone(fault.net));
    }
    cones
}

/// Faults of `faults` detected by `pattern` (indices).
fn detected_by(
    engine: &FaultSim<'_>,
    faults: &[Fault],
    cones: &[FaultCone],
    pattern: &Pattern,
    scratch: &mut SimScratch,
) -> Vec<usize> {
    let inputs = lanes(pattern);
    let good = engine.netlist().eval_all(&inputs);
    let mut hits = Vec::new();
    for (i, (fault, cone)) in faults.iter().zip(cones).enumerate() {
        engine.eval_stuck(&good, (fault.net, fault.stuck), cone, scratch);
        if engine.detect_word(&good, scratch) & 1 != 0 {
            hits.push(i);
        }
    }
    hits
}

/// Result of a compaction pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compacted {
    /// Indices (into the original set) of the kept patterns, in replay
    /// order.
    pub kept: Vec<usize>,
    /// Faults (indices) covered by the kept set.
    pub covered: HashSet<usize>,
}

/// Reverse-order fault-simulation compaction: walk the pattern set from
/// the end, keeping a pattern only if it detects a fault no later-kept
/// pattern detects.
///
/// The kept set provably covers exactly the faults the full set covers
/// (tested below).
#[must_use]
pub fn compact(netlist: &Netlist, faults: &[Fault], patterns: &[Pattern]) -> Compacted {
    let engine = FaultSim::new(netlist);
    let cones = fault_cones(&engine, faults);
    let mut scratch = SimScratch::new();
    let mut covered: HashSet<usize> = HashSet::new();
    let mut kept = Vec::new();
    for (idx, pattern) in patterns.iter().enumerate().rev() {
        let hits = detected_by(&engine, faults, &cones, pattern, &mut scratch);
        if hits.iter().any(|h| !covered.contains(h)) {
            covered.extend(hits);
            kept.push(idx);
        }
    }
    kept.reverse();
    Compacted { kept, covered }
}

/// Coverage of an arbitrary pattern set (fault indices detected).
#[must_use]
pub fn coverage(netlist: &Netlist, faults: &[Fault], patterns: &[Pattern]) -> HashSet<usize> {
    let engine = FaultSim::new(netlist);
    let cones = fault_cones(&engine, faults);
    let mut scratch = SimScratch::new();
    let mut covered = HashSet::new();
    for pattern in patterns {
        covered.extend(detected_by(&engine, faults, &cones, pattern, &mut scratch));
    }
    covered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::collapsed_faults;
    use r2d3_netlist::stages::{stage_netlist, StageSizing};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_patterns(n: usize, width: usize, seed: u64) -> Vec<Pattern> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..width).map(|_| rng.gen()).collect()).collect()
    }

    #[test]
    fn compaction_preserves_coverage_and_shrinks() {
        let sizing = StageSizing { gates_per_mm2: 800.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Exu, &sizing);
        let nl = sn.netlist();
        let faults = collapsed_faults(nl);
        let patterns = random_patterns(128, nl.num_inputs(), 4);

        let full = coverage(nl, &faults, &patterns);
        let compacted = compact(nl, &faults, &patterns);
        assert_eq!(compacted.covered, full, "compaction must not lose coverage");
        assert!(
            compacted.kept.len() < patterns.len() / 2,
            "random sets compact well: kept {} of {}",
            compacted.kept.len(),
            patterns.len()
        );
        // The kept subset alone really covers everything.
        let kept_patterns: Vec<Pattern> =
            compacted.kept.iter().map(|&i| patterns[i].clone()).collect();
        assert_eq!(coverage(nl, &faults, &kept_patterns), full);
    }

    #[test]
    fn kept_order_is_replay_order() {
        let sizing = StageSizing { gates_per_mm2: 500.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Ffu, &sizing);
        let nl = sn.netlist();
        let faults = collapsed_faults(nl);
        let patterns = random_patterns(32, nl.num_inputs(), 9);
        let c = compact(nl, &faults, &patterns);
        for w in c.kept.windows(2) {
            assert!(w[0] < w[1], "kept indices must be ascending");
        }
    }

    #[test]
    fn empty_inputs_behave() {
        let sizing = StageSizing { gates_per_mm2: 500.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Tlu, &sizing);
        let nl = sn.netlist();
        let faults = collapsed_faults(nl);
        let c = compact(nl, &faults, &[]);
        assert!(c.kept.is_empty());
        assert!(c.covered.is_empty());
    }
}
