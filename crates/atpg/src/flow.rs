//! The full ATPG flow: random-pattern phase plus deterministic cleanup.
//!
//! Commercial flows (TetraMAX in the paper) fault-simulate cheap random
//! patterns first, then spend deterministic search only on the resistant
//! tail. [`run_full_flow`] reproduces that: every fault the random
//! campaign left `Undetected` goes through PODEM, which either produces
//! a witness vector (upgrading the fault to `Detected`), proves it
//! `Undetectable`, or leaves it `Undetected` on budget exhaustion.

use crate::campaign::{run_campaign, CampaignConfig, CampaignOutcome, FaultStatus};
use crate::fault::Fault;
use crate::podem::{podem, verify_test, PodemResult};
use r2d3_netlist::Netlist;
use serde::{Deserialize, Serialize};

/// Configuration of the combined flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Random-pattern phase parameters.
    pub random: CampaignConfig,
    /// PODEM backtrack budget per resistant fault.
    pub podem_backtracks: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig { random: CampaignConfig::default(), podem_backtracks: 5_000 }
    }
}

/// Statistics of the deterministic phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CleanupStats {
    /// Faults handed to PODEM.
    pub attempted: usize,
    /// Upgraded to detected (witness vector found and verified).
    pub proven_testable: usize,
    /// Proven untestable (search space exhausted).
    pub proven_untestable: usize,
    /// Budget exhausted without a verdict.
    pub aborted: usize,
}

/// Runs the random campaign followed by PODEM cleanup of the resistant
/// tail. Returns the upgraded outcome and the cleanup statistics.
///
/// Detected-by-PODEM faults get a detection latency of
/// `patterns_applied` (they would be caught by the deterministic vector
/// appended after the random set), preserving Fig. 4(c)'s bucket
/// semantics.
#[must_use]
pub fn run_full_flow(
    netlist: &Netlist,
    faults: &[Fault],
    config: &FlowConfig,
) -> (CampaignOutcome, CleanupStats) {
    let outcome = run_campaign(netlist, faults, &config.random);
    let mut statuses = outcome.statuses().to_vec();
    let mut stats = CleanupStats::default();

    for (i, fault) in faults.iter().enumerate() {
        if statuses[i] != FaultStatus::Undetected {
            continue;
        }
        stats.attempted += 1;
        match podem(netlist, *fault, config.podem_backtracks) {
            PodemResult::Test(pattern) => {
                debug_assert!(verify_test(netlist, *fault, &pattern));
                statuses[i] = FaultStatus::Detected { pattern: outcome.patterns_applied() };
                stats.proven_testable += 1;
            }
            PodemResult::Untestable => {
                statuses[i] = FaultStatus::Undetectable;
                stats.proven_untestable += 1;
            }
            PodemResult::Aborted => stats.aborted += 1,
        }
    }

    let upgraded =
        CampaignOutcome::from_raw_parts(faults.to_vec(), statuses, outcome.patterns_applied());
    (upgraded, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::collapsed_faults;
    use r2d3_netlist::stages::{stage_netlist, StageSizing};
    use r2d3_netlist::NetlistBuilder;

    #[test]
    fn cleanup_closes_the_random_resistant_tail() {
        // 24-input AND root: hopeless for 64 random patterns, trivial for
        // PODEM.
        let mut b = NetlistBuilder::new();
        let i = b.inputs(24);
        let root = b.and_tree(&i);
        b.output(root);
        let nl = b.finish();
        let faults = crate::fault::all_faults(&nl);
        let config = FlowConfig {
            random: CampaignConfig { max_patterns: 64, seed: 1, threads: 1 },
            podem_backtracks: 5_000,
        };
        let (outcome, stats) = run_full_flow(&nl, &faults, &config);
        let (_, undetected, _) = outcome.counts();
        assert_eq!(undetected, 0, "PODEM must settle every fault of a pure AND tree");
        assert!(stats.proven_testable > 0);
        assert_eq!(stats.aborted, 0);
    }

    #[test]
    fn flow_never_downgrades_random_results() {
        let sizing = StageSizing { gates_per_mm2: 1_200.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Exu, &sizing);
        let faults = collapsed_faults(sn.netlist());
        let random = CampaignConfig { max_patterns: 512, seed: 2, threads: 2 };
        let base = run_campaign(sn.netlist(), &faults, &random);
        let (upgraded, stats) =
            run_full_flow(sn.netlist(), &faults, &FlowConfig { random, podem_backtracks: 1_000 });
        let (d0, u0, _) = base.counts();
        let (d1, u1, _) = upgraded.counts();
        assert!(d1 >= d0, "detected must not shrink");
        assert!(u1 <= u0, "undetected must not grow");
        assert_eq!(u1, stats.aborted, "every surviving Undetected must be a PODEM abort");
    }

    #[test]
    fn proven_untestable_faults_are_never_simulatable() {
        // The flow's Undetectable verdicts must be consistent with long
        // random simulation: rerun with 64× the budget and check that
        // none of them got detected.
        let sizing = StageSizing { gates_per_mm2: 800.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Tlu, &sizing);
        let faults = collapsed_faults(sn.netlist());
        let (upgraded, _) = run_full_flow(
            sn.netlist(),
            &faults,
            &FlowConfig {
                random: CampaignConfig { max_patterns: 256, seed: 3, threads: 1 },
                podem_backtracks: 20_000,
            },
        );
        let long = run_campaign(
            sn.netlist(),
            &faults,
            &CampaignConfig { max_patterns: 16_384, seed: 99, threads: 4 },
        );
        for (i, status) in upgraded.statuses().iter().enumerate() {
            if *status == FaultStatus::Undetectable {
                assert!(
                    !long.statuses()[i].is_detected(),
                    "fault {} proven untestable but detected by simulation",
                    faults[i]
                );
            }
        }
    }
}
