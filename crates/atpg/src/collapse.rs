//! Structural stuck-at fault collapsing: equivalence classes, one
//! simulated representative per class, verdicts expanded back to members.
//!
//! Two stuck-at faults are *equivalent* when the two faulty circuits
//! compute the same function on every input — no test can tell them
//! apart, so simulating one answers for both. This module builds the
//! classical gate-level equivalence classes with a union-find over fault
//! keys, using only rules that are **function-exact** (never dominance,
//! which preserves detectability but not detection words):
//!
//! * `Buf`: `i/v ≡ o/v` — the buffer copies the forced value.
//! * `Not`: `i/v ≡ o/!v`.
//! * `And`: `i/0 ≡ o/0` — a controlling 0 forces the output everywhere.
//! * `Nand`: `i/0 ≡ o/1`; `Or`: `i/1 ≡ o/1`; `Nor`: `i/1 ≡ o/0`.
//! * `Xor`/`Xnor`/`Mux`/constants: no input fault forces the output —
//!   no rule.
//!
//! Every rule additionally requires the input net to have **fanout 1**
//! (exactly one gate read, no primary-output use): if the net feeds
//! anything else, the input fault disturbs that second path too and the
//! faulty functions differ. Under that guard the rules are exact, so
//! union-find transitivity is sound (e.g. a buffer chain collapses to
//! one class per polarity, and `a AND b` yields `{a/0, b/0, out/0}`).
//!
//! # Determinism contract
//!
//! [`FaultClasses::build`] is a pure function of netlist structure; the
//! representative of each class is the member with the smallest fault
//! key (net-major, SA0 before SA1), so collapsing is deterministic and
//! stable across runs, platforms, and thread counts. Because members of
//! a class have byte-identical detection words on every pattern block,
//! a campaign that simulates only representatives and copies each
//! verdict to the class members reproduces the uncollapsed campaign's
//! statuses, first-detection pattern indices, and applied-pattern
//! counts **byte-identically** — `campaign::run_campaign` relies on
//! exactly this, and the proptest suite in `tests/` pins it against the
//! uncollapsed oracle.

use crate::fault::Fault;
use r2d3_netlist::{GateKind, NetId, Netlist};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Equivalence classes over the full stuck-at fault universe of one
/// netlist (two keys per net: `net * 2 + stuck`).
///
/// After [`build`](FaultClasses::build), every key points directly at
/// its class representative — the smallest key in the class — so
/// queries are `O(1)` with no interior mutability.
#[derive(Debug, Clone)]
pub struct FaultClasses {
    /// `rep[key]` = smallest key in `key`'s class (== `key` for
    /// representatives and singletons).
    rep: Vec<u32>,
}

/// Union-find `find` with path halving over a mutable parent table.
fn find(parent: &mut [u32], mut k: u32) -> u32 {
    while parent[k as usize] != k {
        parent[k as usize] = parent[parent[k as usize] as usize];
        k = parent[k as usize];
    }
    k
}

impl FaultClasses {
    /// Builds the equivalence classes for `netlist`'s fault universe.
    #[must_use]
    pub fn build(netlist: &Netlist) -> Self {
        debug_assert!(
            r2d3_netlist::ir::validate(netlist).is_ok(),
            "fault collapsing requires a valid IR netlist: {:?}",
            r2d3_netlist::ir::validate(netlist)
        );
        let num_nets = netlist.num_nets();
        let mut parent: Vec<u32> = (0..2 * num_nets as u32).collect();

        // Fanout = gate reads + primary-output uses. The rules below only
        // fire on fanout-1 nets, whose single use is the gate read at
        // hand (a gate reading the same net twice counts twice, so such
        // nets are excluded too).
        let mut fanout = vec![0usize; num_nets];
        for gate in netlist.gates() {
            for input in &gate.inputs {
                fanout[input.index()] += 1;
            }
        }
        for out in netlist.outputs() {
            fanout[out.index()] += 1;
        }

        let key = |net: NetId, stuck: bool| net.0 * 2 + u32::from(stuck);
        let union = |parent: &mut Vec<u32>, a: u32, b: u32| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                // Root at the smaller key so the final pass below meets
                // each class's minimum first.
                let (lo, hi) = (ra.min(rb), ra.max(rb));
                parent[hi as usize] = lo;
            }
        };

        for gate in netlist.gates() {
            let out = gate.output;
            for &input in &gate.inputs {
                if fanout[input.index()] != 1 {
                    continue;
                }
                match gate.kind {
                    GateKind::Buf => {
                        union(&mut parent, key(input, false), key(out, false));
                        union(&mut parent, key(input, true), key(out, true));
                    }
                    GateKind::Not => {
                        union(&mut parent, key(input, false), key(out, true));
                        union(&mut parent, key(input, true), key(out, false));
                    }
                    GateKind::And => union(&mut parent, key(input, false), key(out, false)),
                    GateKind::Nand => union(&mut parent, key(input, false), key(out, true)),
                    GateKind::Or => union(&mut parent, key(input, true), key(out, true)),
                    GateKind::Nor => union(&mut parent, key(input, true), key(out, false)),
                    // No input value forces the output of XOR-family or
                    // MUX gates; constants read nothing.
                    GateKind::Xor
                    | GateKind::Xnor
                    | GateKind::Mux
                    | GateKind::Const0
                    | GateKind::Const1 => {}
                }
            }
        }

        // Flatten: point every key at its class minimum. `union` always
        // roots the larger key under the smaller, so by induction every
        // tree's root is its class minimum already.
        let mut rep = vec![0u32; 2 * num_nets];
        for k in 0..2 * num_nets as u32 {
            rep[k as usize] = find(&mut parent, k);
        }

        FaultClasses { rep }
    }

    /// The representative of `fault`'s equivalence class: the class
    /// member with the smallest key (net-major, SA0 before SA1).
    #[must_use]
    pub fn representative(&self, fault: Fault) -> Fault {
        let r = self.rep[fault.net.index() * 2 + usize::from(fault.stuck)];
        Fault { net: NetId(r / 2), stuck: r % 2 == 1 }
    }

    /// Whether `fault` is its own class representative.
    #[must_use]
    pub fn is_representative(&self, fault: Fault) -> bool {
        let k = fault.net.index() * 2 + usize::from(fault.stuck);
        self.rep[k] == k as u32
    }

    /// Whether two faults are equivalent (same faulty function on every
    /// input, hence byte-identical detection words on every block).
    #[must_use]
    pub fn are_equivalent(&self, a: Fault, b: Fault) -> bool {
        self.rep[a.net.index() * 2 + usize::from(a.stuck)]
            == self.rep[b.net.index() * 2 + usize::from(b.stuck)]
    }

    /// Number of distinct classes across the full universe.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.rep.iter().enumerate().filter(|&(k, &r)| k as u32 == r).count()
    }
}

/// Collapses an *active* subset of a fault list for simulation: groups
/// the indices in `active` (ascending indices into `faults`) by
/// equivalence class and returns `(reps, expansions)` where `reps` are
/// the indices to simulate (the first — smallest — active index of each
/// class, in their original order) and `expansions` maps every remaining
/// active index to its class's chosen rep index.
///
/// Grouping is restricted to `active` on purpose: a fault preclassified
/// without simulation (ground-truth redundant, structurally
/// unobservable) must not donate or receive a verdict through a class,
/// so the collapsed campaign stays byte-identical to the uncollapsed
/// one — each expanded member takes exactly the status, detection
/// pattern, and block usage its own simulation would have produced.
#[must_use]
pub fn collapse_active(
    classes: &FaultClasses,
    faults: &[Fault],
    active: &[usize],
) -> (Vec<usize>, Vec<(usize, usize)>) {
    let mut rep_by_class: HashMap<u32, usize> = HashMap::new();
    let mut reps = Vec::with_capacity(active.len());
    let mut expansions = Vec::new();
    for &i in active {
        let f = faults[i];
        let root = classes.rep[f.net.index() * 2 + usize::from(f.stuck)];
        match rep_by_class.entry(root) {
            Entry::Vacant(v) => {
                v.insert(i);
                reps.push(i);
            }
            Entry::Occupied(o) => expansions.push((i, *o.get())),
        }
    }
    (reps, expansions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::all_faults;
    use r2d3_netlist::{FaultCone, FaultSim, NetlistBuilder, SimScratch};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn and_gate_collapses_controlling_zeros() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let a = b.and2(i[0], i[1]);
        b.output(a);
        let nl = b.finish();
        let c = FaultClasses::build(&nl);
        // {i0/0, i1/0, a/0} is one class, represented by i0/0.
        assert!(c.are_equivalent(Fault::sa0(i[0]), Fault::sa0(i[1])));
        assert!(c.are_equivalent(Fault::sa0(i[0]), Fault::sa0(a)));
        assert_eq!(c.representative(Fault::sa0(a)), Fault::sa0(i[0]));
        // SA1s stay apart: a 1 on one AND input does not force anything.
        assert!(!c.are_equivalent(Fault::sa1(i[0]), Fault::sa1(a)));
        assert!(c.is_representative(Fault::sa1(i[0])));
    }

    #[test]
    fn inverter_chain_collapses_with_polarity_flips() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(1);
        let n1 = b.not(i[0]);
        let n2 = b.not(n1);
        b.output(n2);
        let nl = b.finish();
        let c = FaultClasses::build(&nl);
        // i/0 ≡ n1/1 ≡ n2/0 and i/1 ≡ n1/0 ≡ n2/1: two classes total
        // across the three nets.
        assert!(c.are_equivalent(Fault::sa0(i[0]), Fault::sa1(n1)));
        assert!(c.are_equivalent(Fault::sa0(i[0]), Fault::sa0(n2)));
        assert!(c.are_equivalent(Fault::sa1(i[0]), Fault::sa0(n1)));
        assert!(!c.are_equivalent(Fault::sa0(i[0]), Fault::sa1(i[0])));
        assert_eq!(c.class_count(), 2);
    }

    #[test]
    fn fanout_stems_never_collapse() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let stem = b.or2(i[0], i[1]);
        let a1 = b.and2(stem, i[0]);
        let a2 = b.and2(stem, i[1]);
        b.output(a1);
        b.output(a2);
        let nl = b.finish();
        let c = FaultClasses::build(&nl);
        // `stem`, `i0`, `i1` all have fanout ≥ 2: every rule is gated off.
        assert!(!c.are_equivalent(Fault::sa0(stem), Fault::sa0(a1)));
        assert!(!c.are_equivalent(Fault::sa1(i[0]), Fault::sa1(stem)));
        assert!(c.is_representative(Fault::sa0(stem)));
        assert!(c.is_representative(Fault::sa1(stem)));
    }

    #[test]
    fn collapse_active_picks_first_active_index() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let a = b.and2(i[0], i[1]);
        b.output(a);
        let nl = b.finish();
        let c = FaultClasses::build(&nl);
        let faults = all_faults(&nl);
        let active: Vec<usize> = (0..faults.len()).collect();
        let (reps, expansions) = collapse_active(&c, &faults, &active);
        // Class {i0/0, i1/0, a/0}: rep is i0/0's index; the other two
        // expand to it.
        let i0_sa0 = faults.iter().position(|&f| f == Fault::sa0(i[0])).unwrap();
        let i1_sa0 = faults.iter().position(|&f| f == Fault::sa0(i[1])).unwrap();
        let a_sa0 = faults.iter().position(|&f| f == Fault::sa0(a)).unwrap();
        assert!(reps.contains(&i0_sa0));
        assert!(!reps.contains(&i1_sa0));
        assert!(!reps.contains(&a_sa0));
        assert!(expansions.contains(&(i1_sa0, i0_sa0)));
        assert!(expansions.contains(&(a_sa0, i0_sa0)));
        assert_eq!(reps.len() + expansions.len(), faults.len());
        // Restricting `active` re-elects a rep from what remains.
        let restricted: Vec<usize> = active.iter().copied().filter(|&x| x != i0_sa0).collect();
        let (reps2, _) = collapse_active(&c, &faults, &restricted);
        assert!(reps2.contains(&i1_sa0));
    }

    /// Brute-force ground truth: every pair the classes call equivalent
    /// has byte-identical detection words on random pattern blocks, on a
    /// netlist mixing every collapsible gate kind with fanout stems.
    #[test]
    fn equivalent_faults_share_detection_words() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(6);
        let a = b.and2(i[0], i[1]);
        let na = b.gate(GateKind::Nand, &[a, i[2]]);
        let o = b.or2(na, i[3]);
        let no = b.gate(GateKind::Nor, &[o, i[4]]);
        let buf = b.gate(GateKind::Buf, &[no]);
        let inv = b.not(buf);
        let x = b.xor2(inv, i[5]);
        b.output(x);
        let nl = b.finish();
        let classes = FaultClasses::build(&nl);
        let faults = all_faults(&nl);
        assert!(classes.class_count() < faults.len(), "something must collapse");

        let sim = FaultSim::new(&nl);
        let mut cone = FaultCone::new();
        let mut scratch = SimScratch::new();
        let mut rng = StdRng::seed_from_u64(0xC011A);
        for _ in 0..8 {
            let inputs: Vec<u64> = (0..nl.num_inputs()).map(|_| rng.gen()).collect();
            let good = nl.eval_all(&inputs);
            let words: Vec<u64> = faults
                .iter()
                .map(|f| {
                    sim.cone_into(f.net, &mut cone);
                    sim.eval_stuck(&good, (f.net, f.stuck), &cone, &mut scratch);
                    sim.detect_word(&good, &scratch)
                })
                .collect();
            for (fi, fa) in faults.iter().enumerate() {
                for (fj, fb) in faults.iter().enumerate().skip(fi + 1) {
                    if classes.are_equivalent(*fa, *fb) {
                        assert_eq!(
                            words[fi], words[fj],
                            "class {{{fa}, {fb}}} split on a detection word"
                        );
                    }
                }
            }
        }
    }
}
