//! The stuck-at fault universe.

use r2d3_netlist::{NetId, Netlist};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single stuck-at fault: `net` permanently at logic `stuck`.
///
/// This is the industry-standard fault model the paper uses ("It assumes
/// that a circuit defect behaves as a node stuck at 0 or 1").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fault {
    /// The faulted net.
    pub net: NetId,
    /// The stuck value (`false` = SA0, `true` = SA1).
    pub stuck: bool,
}

impl Fault {
    /// Stuck-at-0 on `net`.
    #[must_use]
    pub fn sa0(net: NetId) -> Self {
        Fault { net, stuck: false }
    }

    /// Stuck-at-1 on `net`.
    #[must_use]
    pub fn sa1(net: NetId) -> Self {
        Fault { net, stuck: true }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/sa{}", self.net, u8::from(self.stuck))
    }
}

/// The uncollapsed fault universe: SA0 and SA1 on every net.
#[must_use]
pub fn all_faults(netlist: &Netlist) -> Vec<Fault> {
    (0..netlist.num_nets() as u32)
        .flat_map(|n| [Fault::sa0(NetId(n)), Fault::sa1(NetId(n))])
        .collect()
}

/// Equivalence-collapsed fault universe: one representative (the
/// smallest fault key, net-major with SA0 before SA1) per structural
/// equivalence class of [`crate::collapse::FaultClasses`].
///
/// The classes are function-exact — members share detection words on
/// every pattern block — so a campaign over the collapsed set loses no
/// information, and coverage percentages over it equal those over the
/// full set up to class weighting, which is how commercial tools report
/// coverage. (Campaigns over *uncollapsed* lists collapse internally
/// anyway; this set is for callers who want the smaller universe as
/// their unit of account, e.g. dictionaries and compaction.)
#[must_use]
pub fn collapsed_faults(netlist: &Netlist) -> Vec<Fault> {
    let classes = crate::collapse::FaultClasses::build(netlist);
    all_faults(netlist).into_iter().filter(|&f| classes.is_representative(f)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d3_netlist::NetlistBuilder;

    #[test]
    fn universe_size_is_two_per_net() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let x = b.and2(i[0], i[1]);
        b.output(x);
        let nl = b.finish();
        assert_eq!(all_faults(&nl).len(), 2 * nl.num_nets());
    }

    #[test]
    fn collapsing_reduces_universe() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(4);
        let a = b.and2(i[0], i[1]);
        let o = b.or2(a, i[2]);
        let n = b.not(o);
        let x = b.xor2(n, i[3]);
        b.output(x);
        let nl = b.finish();
        let full = all_faults(&nl);
        let collapsed = collapsed_faults(&nl);
        assert!(collapsed.len() < full.len());
        // The NOT's output faults must be gone.
        assert!(!collapsed.iter().any(|f| f.net == n));
    }

    #[test]
    fn collapsing_preserves_fanout_stems() {
        // A net with fanout 2 must keep both faults even when feeding an AND.
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let stem = b.or2(i[0], i[1]);
        let a1 = b.and2(stem, i[0]);
        let a2 = b.and2(stem, i[1]);
        b.output(a1);
        b.output(a2);
        let nl = b.finish();
        let collapsed = collapsed_faults(&nl);
        assert!(collapsed.contains(&Fault::sa0(stem)));
        assert!(collapsed.contains(&Fault::sa1(stem)));
    }
}
