//! Observation models: stage-boundary vs core-boundary checkers.
//!
//! R2D3 observes every pipeline-stage boundary through the vertical
//! crossbars, so a stage-level campaign observes each unit netlist's own
//! outputs. A conventional core-level checker only sees the core's
//! architectural outputs, i.e. a fault effect must propagate functionally
//! through every downstream unit. [`core_level_campaign`] models this by
//! composing the five unit netlists into a chain and re-running the same
//! fault universe against the final outputs only.

use crate::campaign::{run_campaign, CampaignConfig, CampaignOutcome, FaultStatus};
use crate::fault::Fault;
use r2d3_netlist::netlist::ComposeOptions;
use r2d3_netlist::{compose_chain_with, IrError, NetId, Netlist, NetlistError, RewriteOutcome};
use std::fmt;

/// Computes, for every net, whether a structural path exists from the net
/// to any of the `observed` outputs (reverse reachability over gate
/// edges). Faults on unreachable nets are undetectable by any pattern.
#[must_use]
pub fn structurally_observable(netlist: &Netlist, observed: &[NetId]) -> Vec<bool> {
    let mut reach = vec![false; netlist.num_nets()];
    for o in observed {
        reach[o.index()] = true;
    }
    // Gates are topologically ordered, so one reverse sweep suffices.
    for gate in netlist.gates().iter().rev() {
        if reach[gate.output.index()] {
            for input in &gate.inputs {
                reach[input.index()] = true;
            }
        }
    }
    reach
}

/// Runs the fault campaign under *core-level* observation.
///
/// `stage_netlists` are the per-unit netlists in pipeline order;
/// `stage_faults[i]` is the fault list for stage `i` expressed in that
/// stage's local net numbering. The stages are composed into a single
/// chain circuit (stage outputs feed the next stage's inputs) and each
/// fault is mapped into the composition, so detection requires functional
/// propagation through all downstream stages.
///
/// Returns one [`CampaignOutcome`] per stage, each aligned with its input
/// fault list.
///
/// # Errors
///
/// Returns [`NetlistError::EmptyChain`] if `stage_netlists` is empty.
///
/// # Panics
///
/// Panics if `stage_faults.len() != stage_netlists.len()`.
pub fn core_level_campaign(
    stage_netlists: &[&Netlist],
    stage_faults: &[Vec<Fault>],
    config: &CampaignConfig,
) -> Result<Vec<CampaignOutcome>, NetlistError> {
    core_level_campaign_with(stage_netlists, stage_faults, config, &ComposeOptions::default())
}

/// [`core_level_campaign`] with explicit width-adaptation options for the
/// stage composition (see [`ComposeOptions`]).
///
/// # Errors
///
/// Returns [`NetlistError::EmptyChain`] if `stage_netlists` is empty.
///
/// # Panics
///
/// Panics if `stage_faults.len() != stage_netlists.len()`.
pub fn core_level_campaign_with(
    stage_netlists: &[&Netlist],
    stage_faults: &[Vec<Fault>],
    config: &CampaignConfig,
    options: &ComposeOptions,
) -> Result<Vec<CampaignOutcome>, NetlistError> {
    assert_eq!(stage_netlists.len(), stage_faults.len(), "one fault list per stage");
    let (composed, maps) = compose_chain_with(stage_netlists, options)?;

    // Map stage-local fault sites into the composed netlist. Stage-local
    // primary inputs of stage i > 0 are *driven nets* of the composition
    // (previous stage outputs); faults on them map to those driver nets.
    let mut mapped: Vec<Fault> = Vec::new();
    let mut spans: Vec<(usize, usize)> = Vec::new(); // (start, len) per stage
    for (si, faults) in stage_faults.iter().enumerate() {
        let start = mapped.len();
        let map = &maps[si];
        for f in faults {
            mapped.push(Fault { net: map[f.net.index()], stuck: f.stuck });
        }
        spans.push((start, faults.len()));
    }

    let outcome = run_campaign(&composed, &mapped, config);

    // Split the flat outcome back into per-stage outcomes, restoring the
    // stage-local fault identities.
    let statuses = outcome.statuses();
    let mut per_stage = Vec::with_capacity(stage_faults.len());
    for (si, (start, len)) in spans.iter().enumerate() {
        let sts = statuses[*start..start + len].to_vec();
        per_stage.push(CampaignOutcome::from_raw_parts(
            stage_faults[si].clone(),
            sts,
            outcome.patterns_applied(),
        ));
    }
    Ok(per_stage)
}

/// Errors from [`core_level_campaign_rewritten`]: either the stage
/// composition failed or the composed netlist failed IR validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreCampaignError {
    /// Stage composition failed.
    Compose(NetlistError),
    /// The composed chain violated an IR invariant.
    Ir(IrError),
}

impl fmt::Display for CoreCampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreCampaignError::Compose(e) => write!(f, "stage composition: {e}"),
            CoreCampaignError::Ir(e) => write!(f, "composed chain: {e}"),
        }
    }
}

impl std::error::Error for CoreCampaignError {}

impl From<NetlistError> for CoreCampaignError {
    fn from(e: NetlistError) -> Self {
        CoreCampaignError::Compose(e)
    }
}

impl From<IrError> for CoreCampaignError {
    fn from(e: IrError) -> Self {
        CoreCampaignError::Ir(e)
    }
}

/// [`core_level_campaign_with`] over the **rewritten** composed chain:
/// the stage chain is composed, run through the standard IR rewrite
/// pipeline, and the fault universe is enumerated against the
/// post-rewrite netlist.
///
/// Stage-local fault sites are carried across the rewrite via
/// [`RewriteOutcome::net_map`]. A site the rewrite eliminates (dead
/// cone removed by DCE, or a constant net that no longer exists) has no
/// physical counterpart in the optimized circuit, so its fault is
/// classified [`FaultStatus::Undetectable`] without simulation; sites
/// merged with an equivalent net are simulated at the surviving net,
/// which computes the identical function for both polarities.
///
/// Returns the rewrite outcome alongside one [`CampaignOutcome`] per
/// stage (aligned with the input fault lists, like
/// [`core_level_campaign`]).
///
/// # Errors
///
/// Returns [`CoreCampaignError`] if composition fails or the composed
/// chain violates IR invariants.
///
/// # Panics
///
/// Panics if `stage_faults.len() != stage_netlists.len()`.
pub fn core_level_campaign_rewritten(
    stage_netlists: &[&Netlist],
    stage_faults: &[Vec<Fault>],
    config: &CampaignConfig,
    options: &ComposeOptions,
) -> Result<(RewriteOutcome, Vec<CampaignOutcome>), CoreCampaignError> {
    assert_eq!(stage_netlists.len(), stage_faults.len(), "one fault list per stage");
    let (composed, maps) = compose_chain_with(stage_netlists, options)?;
    let rewritten = r2d3_netlist::rewrite(&composed)?;

    // stage-local net → composed net → rewritten net.
    let mut sim_faults: Vec<Fault> = Vec::new();
    let mut slots: Vec<Vec<Option<usize>>> = Vec::with_capacity(stage_faults.len());
    for (si, faults) in stage_faults.iter().enumerate() {
        let map = &maps[si];
        let mut stage_slots = Vec::with_capacity(faults.len());
        for fault in faults {
            let composed_net = map[fault.net.index()];
            let survives = if composed_net == NetId(u32::MAX) {
                None
            } else {
                rewritten.net_map[composed_net.index()]
            };
            match survives {
                Some(net) => {
                    stage_slots.push(Some(sim_faults.len()));
                    sim_faults.push(Fault { net, stuck: fault.stuck });
                }
                None => stage_slots.push(None),
            }
        }
        slots.push(stage_slots);
    }

    let outcome = run_campaign(&rewritten.netlist, &sim_faults, config);

    let statuses = outcome.statuses();
    let mut per_stage = Vec::with_capacity(stage_faults.len());
    for (si, faults) in stage_faults.iter().enumerate() {
        let stage_statuses: Vec<FaultStatus> = slots[si]
            .iter()
            .map(|slot| match slot {
                Some(k) => statuses[*k],
                None => FaultStatus::Undetectable,
            })
            .collect();
        per_stage.push(CampaignOutcome::from_raw_parts(
            faults.clone(),
            stage_statuses,
            outcome.patterns_applied(),
        ));
    }
    Ok((rewritten, per_stage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::all_faults;
    use r2d3_netlist::NetlistBuilder;

    fn small_stage() -> Netlist {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(4);
        let x = b.xor2(i[0], i[1]);
        let y = b.and2(i[2], i[3]);
        let z = b.or2(x, y);
        let w = b.xor2(x, i[2]);
        b.output(z);
        b.output(w);
        b.output(x);
        b.output(y);
        b.finish()
    }

    #[test]
    fn observability_reaches_inputs() {
        let nl = small_stage();
        let obs = structurally_observable(&nl, nl.outputs());
        for i in nl.inputs() {
            assert!(obs[i.index()], "input {i} should reach outputs");
        }
    }

    #[test]
    fn observability_excludes_dead_logic() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let dead = b.and2(i[0], i[1]);
        let live = b.or2(i[0], i[1]);
        b.output(live);
        let nl = b.finish();
        let obs = structurally_observable(&nl, nl.outputs());
        assert!(!obs[dead.index()]);
        assert!(obs[live.index()]);
    }

    #[test]
    fn core_level_coverage_not_higher_than_stage_level() {
        let s1 = small_stage();
        let s2 = small_stage();
        let s3 = small_stage();
        let faults: Vec<Vec<Fault>> = [&s1, &s2, &s3].iter().map(|n| all_faults(n)).collect();
        let config = CampaignConfig { max_patterns: 4096, seed: 3, threads: 1 };

        // Stage-level: each stage observed at its own boundary.
        let stage_detected: usize = [&s1, &s2, &s3]
            .iter()
            .zip(&faults)
            .map(|(n, f)| run_campaign(n, f, &config).counts().0)
            .sum();

        let core = core_level_campaign(&[&s1, &s2, &s3], &faults, &config).unwrap();
        let core_detected: usize = core.iter().map(|o| o.counts().0).sum();

        assert!(
            core_detected <= stage_detected,
            "core-level {core_detected} must not exceed stage-level {stage_detected}"
        );
        // Structure is preserved.
        assert_eq!(core.len(), 3);
        for (o, f) in core.iter().zip(&faults) {
            assert_eq!(o.faults().len(), f.len());
        }
    }

    #[test]
    fn rewritten_core_campaign_aligns_with_fault_lists() {
        let s1 = small_stage();
        let s2 = small_stage();
        let faults: Vec<Vec<Fault>> = [&s1, &s2].iter().map(|n| all_faults(n)).collect();
        let config = CampaignConfig { max_patterns: 4096, seed: 5, threads: 1 };
        let (rewritten, core) = core_level_campaign_rewritten(
            &[&s1, &s2],
            &faults,
            &config,
            &ComposeOptions::default(),
        )
        .unwrap();
        assert!(rewritten.stats.gates_after <= rewritten.stats.gates_before);
        assert_eq!(core.len(), 2);
        for (outcome, stage_faults) in core.iter().zip(&faults) {
            assert_eq!(outcome.faults().len(), stage_faults.len());
        }
        // The directly observed final stage still detects a majority.
        let (d, _, _) = core[1].counts();
        assert!(d * 2 > faults[1].len(), "detected {d} of {}", faults[1].len());
    }

    #[test]
    fn core_level_empty_chain_is_error() {
        assert!(core_level_campaign(&[], &[], &CampaignConfig::default()).is_err());
    }

    #[test]
    fn last_stage_faults_still_detectable_at_core_level() {
        let s1 = small_stage();
        let s2 = small_stage();
        let faults: Vec<Vec<Fault>> = [&s1, &s2].iter().map(|n| all_faults(n)).collect();
        let config = CampaignConfig { max_patterns: 4096, seed: 5, threads: 1 };
        let core = core_level_campaign(&[&s1, &s2], &faults, &config).unwrap();
        // The final stage is directly observed, so a healthy majority of its
        // faults must be detected.
        let (d, _, _) = core[1].counts();
        assert!(d * 2 > faults[1].len(), "detected {d} of {}", faults[1].len());
        let _ = FaultStatus::Undetected;
    }
}
