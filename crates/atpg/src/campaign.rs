//! Random-pattern fault-simulation campaigns.

use crate::collapse::{collapse_active, FaultClasses};
use crate::fault::Fault;
use crate::observe::structurally_observable;
use r2d3_netlist::{pack_blocks, FaultCone, FaultSim, Netlist, SimBlock, SimScratch, WideScratch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Pattern blocks whose good-value vectors are held in memory at once.
/// Bounds peak memory at `BLOCK_BATCH * num_nets * 8` bytes while still
/// amortizing each fault's cone derivation over many blocks.
const BLOCK_BATCH: usize = 32;

/// 64-pattern blocks fused into one 512-lane walk ([`WideScratch`]) —
/// a full cache line of lanes per net, matching the SIMD kernels'
/// widest (AVX-512) chunk.
const LANE_GROUP: usize = 8;

/// Faults simulated per 2D tile: the inner fault loop re-walks the same
/// lane group's good values while they are hot in cache, and faults are
/// sorted by site first so tile members have overlapping cones.
const FAULT_TILE: usize = 64;

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Total test patterns to apply (rounded up to a multiple of 64, the
    /// bit-parallel block width). The paper's budget is 10 M ATPG
    /// instructions; one pattern models one test instruction.
    pub max_patterns: usize,
    /// RNG seed for pattern generation.
    pub seed: u64,
    /// Number of worker threads for the fault loop (1 = serial). Thread
    /// count never changes results: faults are simulated independently
    /// over the same pattern sequence.
    pub threads: usize,
}

impl CampaignConfig {
    /// Default worker count: the machine's available parallelism, capped
    /// at 8 (the fault loop saturates memory bandwidth beyond that).
    #[must_use]
    pub fn default_threads() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            max_patterns: 8192,
            seed: 0xA7C6,
            threads: CampaignConfig::default_threads(),
        }
    }
}

/// Classification of one fault after the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultStatus {
    /// Fault effect observed; `pattern` is the first detecting pattern
    /// index (a proxy for detection latency in test instructions).
    Detected {
        /// First detecting pattern index.
        pattern: usize,
    },
    /// Detectable in principle but not detected within the pattern budget.
    Undetected,
    /// Provably undetectable: the site is redundant by construction or has
    /// no structural path to any observed output.
    Undetectable,
}

impl FaultStatus {
    /// `true` for [`FaultStatus::Detected`].
    #[must_use]
    pub fn is_detected(self) -> bool {
        matches!(self, FaultStatus::Detected { .. })
    }
}

/// Result of a campaign: per-fault classifications in input order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignOutcome {
    faults: Vec<Fault>,
    statuses: Vec<FaultStatus>,
    patterns_applied: usize,
}

impl CampaignOutcome {
    /// Reassembles an outcome from parts (used by
    /// [`crate::observe::core_level_campaign`] to split a composed-chain
    /// outcome back into per-stage views).
    pub(crate) fn from_raw_parts(
        faults: Vec<Fault>,
        statuses: Vec<FaultStatus>,
        patterns_applied: usize,
    ) -> Self {
        CampaignOutcome { faults, statuses, patterns_applied }
    }

    /// The faults, in the order supplied to [`run_campaign`].
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Per-fault statuses, parallel to [`faults`](CampaignOutcome::faults).
    #[must_use]
    pub fn statuses(&self) -> &[FaultStatus] {
        &self.statuses
    }

    /// `(fault, status)` pairs.
    pub fn results(&self) -> Vec<(Fault, FaultStatus)> {
        self.faults.iter().copied().zip(self.statuses.iter().copied()).collect()
    }

    /// Iterator over detected faults with their detection pattern index.
    pub fn detected(&self) -> impl Iterator<Item = (Fault, usize)> + '_ {
        self.faults.iter().zip(&self.statuses).filter_map(|(f, s)| match s {
            FaultStatus::Detected { pattern } => Some((*f, *pattern)),
            _ => None,
        })
    }

    /// Number of faults in each class: `(detected, undetected, undetectable)`.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for s in &self.statuses {
            match s {
                FaultStatus::Detected { .. } => c.0 += 1,
                FaultStatus::Undetected => c.1 += 1,
                FaultStatus::Undetectable => c.2 += 1,
            }
        }
        c
    }

    /// Fraction of *all* faults that are detectable (detected + undetected),
    /// the quantity the paper reports as coverage in Fig. 4(b).
    #[must_use]
    pub fn detectable_fraction(&self) -> f64 {
        let (d, u, _) = self.counts();
        (d + u) as f64 / self.statuses.len().max(1) as f64
    }

    /// Fraction of detectable faults that were detected within the budget.
    #[must_use]
    pub fn detected_of_detectable(&self) -> f64 {
        let (d, u, _) = self.counts();
        d as f64 / (d + u).max(1) as f64
    }

    /// Patterns actually applied.
    #[must_use]
    pub fn patterns_applied(&self) -> usize {
        self.patterns_applied
    }
}

/// Classifies provably undetectable faults (redundant by construction or
/// structurally unobservable); returns the indices that need simulation.
fn preclassify(netlist: &Netlist, faults: &[Fault], statuses: &mut [FaultStatus]) -> Vec<usize> {
    let observable = structurally_observable(netlist, netlist.outputs());
    let mut active = Vec::with_capacity(faults.len());
    for (i, fault) in faults.iter().enumerate() {
        let redundant = netlist
            .redundant_constants()
            .iter()
            .any(|&(net, val)| net == fault.net && val == fault.stuck);
        if redundant || !observable[fault.net.index()] {
            statuses[i] = FaultStatus::Undetectable;
        } else {
            active.push(i);
        }
    }
    active
}

/// Generates the campaign's pattern blocks up front (one `Vec<u64>` of
/// input lanes per 64-pattern block), drawing from the same RNG stream
/// the campaign has always used so results stay seed-compatible.
fn pattern_blocks(netlist: &Netlist, blocks: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..blocks).map(|_| (0..netlist.num_inputs()).map(|_| rng.gen()).collect()).collect()
}

/// Runs a random-pattern stuck-at campaign over `faults` on `netlist`,
/// observing the netlist's primary outputs.
///
/// Faults that are ground-truth redundant
/// ([`Netlist::redundant_constants`]) or structurally unobservable from
/// the outputs are classified [`FaultStatus::Undetectable`] without
/// simulation. The rest are **collapsed** into structural equivalence
/// classes ([`FaultClasses`]) and only one representative per class is
/// simulated; class members receive the representative's verdict at the
/// end. Because the classes are function-exact, the expanded statuses,
/// first-detection pattern indices, and applied-pattern counts are
/// byte-identical to simulating every fault.
///
/// Representatives are fault-simulated incrementally ([`FaultSim`]):
/// pattern blocks are processed in batches whose good-value vectors are
/// cached and fused into 512-lane groups of eight blocks
/// ([`pack_blocks`]), then walked with the engine's runtime-dispatched
/// SIMD kernel. Work is tiled in two dimensions — lane group outer,
/// faults (sorted by site, so their cones overlap) inner — so each
/// group's good values stay cache-hot across a whole fault tile.
/// Detection accounting stays block-exact: within a group the earliest
/// block with a nonzero detection word wins, and its `trailing_zeros`
/// picks the lane, so classifications, first-detection pattern indices,
/// and applied-pattern counts are identical to walking the 64-lane
/// blocks one at a time. Detected faults are dropped from later batches.
///
/// Results are bit-identical to [`run_campaign_reference`] for any seed
/// and any thread count.
#[must_use]
pub fn run_campaign(
    netlist: &Netlist,
    faults: &[Fault],
    config: &CampaignConfig,
) -> CampaignOutcome {
    debug_assert!(
        r2d3_netlist::ir::validate(netlist).is_ok(),
        "campaign requires a valid IR netlist: {:?}",
        r2d3_netlist::ir::validate(netlist)
    );
    let blocks = config.max_patterns.div_ceil(64).max(1);
    let mut statuses = vec![FaultStatus::Undetected; faults.len()];
    let active = preclassify(netlist, faults, &mut statuses);

    // Collapse the active faults: simulate one representative per
    // equivalence class, expand verdicts to members afterwards.
    let classes = FaultClasses::build(netlist);
    let (reps, expansions) = collapse_active(&classes, faults, &active);
    let mut remaining = reps;

    let engine = FaultSim::new(netlist);
    let inputs = pattern_blocks(netlist, blocks, config.seed);
    let threads = config.threads.max(1);
    let mut blocks_applied = 0usize;

    // With cone bitsets available, workers walk each fault's cone row in
    // place (`eval_stuck_detect_wide`) — no cones are ever materialized.
    // On netlists too large for the bitset budget, workers fall back to
    // deriving cones per batch.
    let use_rows = engine.cheap_cones();
    let mut goods: Vec<Vec<u64>> = Vec::new();

    for batch_start in (0..blocks).step_by(BLOCK_BATCH) {
        if remaining.is_empty() {
            break;
        }
        let batch = &inputs[batch_start..blocks.min(batch_start + BLOCK_BATCH)];
        goods.truncate(batch.len());
        goods.resize_with(batch.len(), Vec::new);
        for (buf, pattern) in goods.iter_mut().zip(batch) {
            netlist.eval_all_into(pattern, buf);
        }
        // Fuse the batch's good vectors into 512-lane groups, shared by
        // every fault (and every worker) this batch. The first batch's
        // first block is covered by the narrow probe in
        // `simulate_batch` — most detectable faults die there — so its
        // groups start at the second block. Later batches hold only
        // hard-to-detect survivors, for which a narrow probe almost
        // always misses; they go straight to the wide groups. A trailing
        // partial group pads by repeating its last block; `real` marks
        // how many lane groups carry genuine patterns.
        let probe = batch_start == 0;
        let grouped = if probe { &goods[1..] } else { &goods[..] };
        let groups: Vec<(Vec<SimBlock<LANE_GROUP>>, usize)> = grouped
            .chunks(LANE_GROUP)
            .map(|chunk| {
                let refs: Vec<&[u64]> = chunk.iter().map(Vec::as_slice).collect();
                (pack_blocks::<LANE_GROUP>(&refs), chunk.len())
            })
            .collect();

        let results = if threads == 1 || remaining.len() < 128 {
            simulate_batch(&engine, faults, &remaining, &goods, &groups, batch_start, use_rows)
        } else {
            let chunk_len = remaining.len().div_ceil(threads);
            crossbeam::scope(|scope| {
                let handles: Vec<_> = remaining
                    .chunks(chunk_len)
                    .map(|chunk| {
                        let (engine, goods, groups) = (&engine, &goods, &groups);
                        scope.spawn(move |_| {
                            simulate_batch(
                                engine,
                                faults,
                                chunk,
                                goods,
                                groups,
                                batch_start,
                                use_rows,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("campaign worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("campaign thread scope failed")
        };

        // Workers cover disjoint chunks of `remaining` in order, so the
        // concatenated results are parallel to `remaining`.
        let mut next = Vec::with_capacity(remaining.len());
        for (fi, detected, blocks_used) in results {
            blocks_applied = blocks_applied.max(blocks_used);
            match detected {
                Some(status) => statuses[fi] = status,
                None => next.push(fi),
            }
        }
        remaining = next;
    }

    // Expand class verdicts: every member inherits its representative's
    // status (byte-identical to simulating the member — the classes are
    // function-exact, so detect words match block for block).
    for (member, rep) in expansions {
        statuses[member] = statuses[rep];
    }

    CampaignOutcome { faults: faults.to_vec(), statuses, patterns_applied: blocks_applied * 64 }
}

/// Simulates each fault in `chunk` over one batch of cached 512-lane
/// good-value groups. Returns `(fault_index, detection, last block
/// reached + 1)` per fault, parallel to `chunk`; the cone and scratch
/// buffers are reused across faults.
///
/// Work is tiled in two dimensions: faults are sorted by site (so tile
/// members have overlapping cones), and for each [`FAULT_TILE`]-sized
/// tile the lane groups run *outer* and the faults *inner* — a group's
/// good values are walked by the whole tile while they are cache-hot.
/// This only reorders independent (fault, group) evaluations, so the
/// accounting below yields exactly what the fault-outer loop would:
/// a fault detected in group `g` skips groups after `g` (its entry is
/// frozen once `detected` is set), and within a group the *earliest*
/// block with a nonzero detection word is the detecting block, with
/// `trailing_zeros` picking the lane. Only that block plus its
/// predecessors count as applied; padded lanes of a trailing partial
/// group (`real < LANE_GROUP`) are ignored entirely.
fn simulate_batch(
    engine: &FaultSim,
    faults: &[Fault],
    chunk: &[usize],
    goods: &[Vec<u64>],
    groups: &[(Vec<SimBlock<LANE_GROUP>>, usize)],
    batch_start: usize,
    use_rows: bool,
) -> Vec<(usize, Option<FaultStatus>, usize)> {
    // The probe only runs on the campaign's first batch; later batches
    // hold hard-to-detect survivors and go straight to the wide groups
    // (mirrors the group slicing in `run_campaign`).
    let probe = batch_start == 0;
    let mut cone = FaultCone::new();
    let mut narrow = SimScratch::new();
    let mut scratch = WideScratch::<LANE_GROUP>::new();

    // Results are kept parallel to `chunk` (callers rely on that order);
    // the tile traversal uses a site-sorted view of the indices.
    let mut results: Vec<(usize, Option<FaultStatus>, usize)> =
        chunk.iter().map(|&fi| (fi, None, batch_start)).collect();
    let mut order: Vec<usize> = (0..chunk.len()).collect();
    order.sort_by_key(|&ri| {
        let f = faults[chunk[ri]];
        (f.net.index(), f.stuck)
    });

    for tile in order.chunks(FAULT_TILE) {
        // Narrow first-block probe: most detectable faults are caught in
        // the campaign's very first 64-pattern block, so a single-block
        // narrow walk here — one *flip* walk per fault site, covering
        // both polarities — spares them the full `LANE_GROUP`-wide
        // group walk below. The probe block *is* the
        // batch's first block and the wide groups then start at the
        // second, so a hit pins exactly the pattern a block-by-block
        // walk would have found (earliest block wins, `trailing_zeros`
        // lane), and a miss still charges the probe block to the
        // accounting before the group loop takes over. Later batches
        // (`probe == false`) skip straight to the groups: their
        // survivors rarely die in any single block, so a narrow walk
        // there is almost pure overhead.
        if probe {
            let consume = |results: &mut [(usize, Option<FaultStatus>, usize)],
                           ri: usize,
                           word: u64| {
                let (_, detected, blocks_used) = &mut results[ri];
                *blocks_used = batch_start + 1;
                if word != 0 {
                    let lane = word.trailing_zeros() as usize;
                    *detected = Some(FaultStatus::Detected { pattern: batch_start * 64 + lane });
                }
            };
            let mut i = 0;
            while i < tile.len() {
                let ri = tile[i];
                let fault = faults[results[ri].0];
                // Site-sorted order puts a net's two polarities next to
                // each other; one flip walk classifies both (each
                // polarity's detect word is the flip word masked by its
                // excitation lanes — bit-identical to a dedicated walk).
                if let Some(&rj) = tile.get(i + 1) {
                    let other = faults[results[rj].0];
                    if other.net == fault.net {
                        engine.eval_flip_detect(&goods[0], fault.net, &mut narrow);
                        let word = engine.detect_word(&goods[0], &narrow);
                        let g = goods[0][fault.net.index()];
                        consume(&mut results, ri, word & if fault.stuck { !g } else { g });
                        consume(&mut results, rj, word & if other.stuck { !g } else { g });
                        i += 2;
                        continue;
                    }
                }
                engine.eval_stuck_detect(&goods[0], (fault.net, fault.stuck), &mut narrow);
                let word = engine.detect_word(&goods[0], &narrow);
                consume(&mut results, ri, word);
                i += 1;
            }
        }
        for (gi, (good, real)) in groups.iter().enumerate() {
            let group_start = batch_start + usize::from(probe) + gi * LANE_GROUP;
            for &ri in tile {
                let (fi, detected, blocks_used) = &mut results[ri];
                if detected.is_some() {
                    continue;
                }
                let fault = faults[*fi];
                if use_rows {
                    engine.eval_stuck_detect_wide(good, (fault.net, fault.stuck), &mut scratch);
                } else {
                    // Cones are cheap to re-derive relative to the walk
                    // itself on the (large) netlists that overflow the
                    // bitset budget, and the stamp cache makes repeats
                    // for the same site nearly free.
                    engine.cone_into(fault.net, &mut cone);
                    engine.eval_stuck_wide(good, (fault.net, fault.stuck), &cone, &mut scratch);
                }
                let words = scratch.detect_words();
                if let Some(g) = (0..*real).find(|&g| words[g] != 0) {
                    let lane = words[g].trailing_zeros() as usize;
                    *detected =
                        Some(FaultStatus::Detected { pattern: (group_start + g) * 64 + lane });
                    *blocks_used = group_start + g + 1;
                } else {
                    *blocks_used = group_start + real;
                }
            }
        }
    }
    results
}

/// Reference campaign: full-netlist re-evaluation per fault per block via
/// [`Netlist::eval_all_stuck_into`], serial, block-outer. Kept as the
/// correctness oracle and performance baseline for [`run_campaign`]'s
/// incremental engine — both must classify every fault identically, with
/// identical detection pattern indices, for any seed.
#[must_use]
pub fn run_campaign_reference(
    netlist: &Netlist,
    faults: &[Fault],
    config: &CampaignConfig,
) -> CampaignOutcome {
    let blocks = config.max_patterns.div_ceil(64).max(1);
    let mut statuses = vec![FaultStatus::Undetected; faults.len()];
    let mut remaining = preclassify(netlist, faults, &mut statuses);
    let inputs = pattern_blocks(netlist, blocks, config.seed);

    let mut faulty_values: Vec<u64> = Vec::with_capacity(netlist.num_nets());
    let mut blocks_applied = 0usize;
    for (block, input) in inputs.iter().enumerate() {
        if remaining.is_empty() {
            break;
        }
        blocks_applied = block + 1;
        let good = netlist.eval_all(input);
        let good_out = netlist.output_values(&good);
        remaining.retain(|&fi| {
            let fault = faults[fi];
            netlist.eval_all_stuck_into(input, (fault.net, fault.stuck), &mut faulty_values);
            let mut diff = 0u64;
            for (o, g) in netlist.outputs().iter().zip(&good_out) {
                diff |= faulty_values[o.index()] ^ g;
            }
            if diff != 0 {
                let lane = diff.trailing_zeros() as usize;
                statuses[fi] = FaultStatus::Detected { pattern: block * 64 + lane };
                false
            } else {
                true
            }
        });
    }

    CampaignOutcome { faults: faults.to_vec(), statuses, patterns_applied: blocks_applied * 64 }
}

/// Validates `netlist`, runs the standard IR rewrite pipeline, and
/// campaigns over the **full stuck-at universe of the post-rewrite
/// netlist** ([`all_faults`](crate::fault::all_faults) on the rewritten
/// IR). This is the fault-universe convention for optimized logic: sites
/// that the rewrite folds away (dead cones, merged duplicates) do not
/// exist in the manufactured circuit model, so they are not enumerated.
///
/// Returns the rewrite outcome (rewritten netlist + original-net
/// survival map + pass statistics) alongside the campaign outcome, so
/// callers can relate pre-rewrite sites to post-rewrite verdicts via
/// [`r2d3_netlist::RewriteOutcome::net_map`].
///
/// # Errors
///
/// Returns the [`r2d3_netlist::IrError`] if `netlist` fails IR
/// validation.
pub fn run_campaign_rewritten(
    netlist: &Netlist,
    config: &CampaignConfig,
) -> Result<(r2d3_netlist::RewriteOutcome, CampaignOutcome), r2d3_netlist::IrError> {
    let rewritten = r2d3_netlist::rewrite(netlist)?;
    let faults = crate::fault::all_faults(&rewritten.netlist);
    let outcome = run_campaign(&rewritten.netlist, &faults, config);
    Ok((rewritten, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::all_faults;
    use r2d3_netlist::NetlistBuilder;

    fn parity4() -> Netlist {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(4);
        let x = b.xor_tree(&i);
        b.output(x);
        b.finish()
    }

    #[test]
    fn parity_tree_fully_detectable() {
        let nl = parity4();
        let out = run_campaign(&nl, &all_faults(&nl), &CampaignConfig::default());
        let (d, u, un) = out.counts();
        assert_eq!(u, 0);
        assert_eq!(un, 0);
        assert_eq!(d, out.faults().len());
        // XOR propagates every flip: detection should be nearly immediate.
        for (_, pattern) in out.detected() {
            assert!(pattern < 64, "parity fault took {pattern} patterns");
        }
    }

    #[test]
    fn redundant_faults_classified_undetectable() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let z = b.redundant_zero(i[0]);
        let live = b.or2(i[1], z);
        b.output(live);
        let nl = b.finish();
        let faults = all_faults(&nl);
        let out = run_campaign(&nl, &faults, &CampaignConfig::default());
        let sa0_on_z = faults.iter().position(|f| f.net == z && !f.stuck).unwrap();
        assert_eq!(out.statuses()[sa0_on_z], FaultStatus::Undetectable);
        // SA1 on the redundant net *is* detectable (forces the OR high
        // when i1 = 0).
        let sa1_on_z = faults.iter().position(|f| f.net == z && f.stuck).unwrap();
        assert!(out.statuses()[sa1_on_z].is_detected());
    }

    #[test]
    fn unobservable_logic_classified_undetectable() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let dead = b.and2(i[0], i[1]); // never observed
        let live = b.xor2(i[0], i[1]);
        let _ = dead;
        b.output(live);
        let nl = b.finish();
        let faults = all_faults(&nl);
        let out = run_campaign(&nl, &faults, &CampaignConfig::default());
        let dead_fault = faults.iter().position(|f| f.net == dead).unwrap();
        assert_eq!(out.statuses()[dead_fault], FaultStatus::Undetectable);
    }

    #[test]
    fn budget_limits_detection() {
        // An AND tree over many inputs needs the all-ones pattern for SA0
        // at the root; with a tiny budget some faults stay undetected.
        let mut b = NetlistBuilder::new();
        let i = b.inputs(24);
        let root = b.and_tree(&i);
        b.output(root);
        let nl = b.finish();
        let faults = all_faults(&nl);
        let tiny = CampaignConfig { max_patterns: 64, seed: 1, threads: 1 };
        let out = run_campaign(&nl, &faults, &tiny);
        let (_, undetected, _) = out.counts();
        assert!(undetected > 0, "24-input AND should resist 64 random patterns");
        // With a larger budget, coverage must be monotonically better.
        let big = CampaignConfig { max_patterns: 1 << 16, seed: 1, threads: 1 };
        let out_big = run_campaign(&nl, &faults, &big);
        assert!(out_big.counts().0 >= out.counts().0);
    }

    #[test]
    fn threaded_matches_serial() {
        let nl = parity4();
        let faults = all_faults(&nl);
        let serial =
            run_campaign(&nl, &faults, &CampaignConfig { threads: 1, ..Default::default() });
        let par = run_campaign(&nl, &faults, &CampaignConfig { threads: 4, ..Default::default() });
        assert_eq!(serial.statuses(), par.statuses());
    }

    #[test]
    fn incremental_matches_reference_oracle() {
        // The incremental engine must classify every fault identically to
        // full re-evaluation, including detection pattern indices and the
        // honest applied-pattern count, on a circuit with redundant and
        // unobservable logic.
        let mut b = NetlistBuilder::new();
        let i = b.inputs(10);
        let x = b.xor_tree(&i[..6]);
        let y = b.and_tree(&i[4..]);
        let z = b.redundant_zero(i[0]);
        let w = b.or2(y, z);
        let dead = b.and2(i[8], i[9]);
        let _ = dead;
        b.output(x);
        b.output(w);
        let nl = b.finish();
        let faults = all_faults(&nl);
        for seed in [1u64, 0xA7C6, 77] {
            let config = CampaignConfig { max_patterns: 2048, seed, threads: 1 };
            let inc = run_campaign(&nl, &faults, &config);
            let reference = run_campaign_reference(&nl, &faults, &config);
            assert_eq!(inc.statuses(), reference.statuses(), "seed {seed}");
            assert_eq!(inc.patterns_applied(), reference.patterns_applied(), "seed {seed}");
        }
    }

    #[test]
    fn partial_lane_groups_match_reference() {
        // Budgets that are not a multiple of 256 leave a trailing partial
        // lane group whose padded lanes must not leak into detection or
        // applied-pattern accounting.
        let mut b = NetlistBuilder::new();
        let i = b.inputs(16);
        let x = b.xor_tree(&i[..5]);
        let y = b.and_tree(&i[4..12]);
        let z = b.or2(x, y);
        b.output(z);
        b.output(y);
        let nl = b.finish();
        let faults = all_faults(&nl);
        for max_patterns in [64usize, 192, 320, 2048 + 128] {
            let config = CampaignConfig { max_patterns, seed: 9, threads: 1 };
            let inc = run_campaign(&nl, &faults, &config);
            let reference = run_campaign_reference(&nl, &faults, &config);
            assert_eq!(inc.statuses(), reference.statuses(), "{max_patterns} patterns");
            assert_eq!(
                inc.patterns_applied(),
                reference.patterns_applied(),
                "{max_patterns} patterns"
            );
        }
    }

    #[test]
    fn patterns_applied_reflects_blocks_simulated() {
        // Parity faults all fall in the first block, so only 64 patterns
        // are actually applied out of the 8192 budget.
        let nl = parity4();
        let out = run_campaign(&nl, &all_faults(&nl), &CampaignConfig::default());
        assert_eq!(out.patterns_applied(), 64);
        // A budget-limited AND tree leaves faults undetected, so the whole
        // budget really is applied.
        let mut b = NetlistBuilder::new();
        let i = b.inputs(24);
        let root = b.and_tree(&i);
        b.output(root);
        let hard = b.finish();
        let tiny = CampaignConfig { max_patterns: 128, seed: 1, threads: 1 };
        let out = run_campaign(&hard, &all_faults(&hard), &tiny);
        assert!(out.counts().1 > 0);
        assert_eq!(out.patterns_applied(), 128);
    }

    #[test]
    fn detectable_fraction_arithmetic() {
        let nl = parity4();
        let out = run_campaign(&nl, &all_faults(&nl), &CampaignConfig::default());
        assert!((out.detectable_fraction() - 1.0).abs() < f64::EPSILON);
        assert!((out.detected_of_detectable() - 1.0).abs() < f64::EPSILON);
    }
}
