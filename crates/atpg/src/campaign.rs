//! Random-pattern fault-simulation campaigns.

use crate::fault::Fault;
use crate::observe::structurally_observable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use r2d3_netlist::Netlist;
use serde::{Deserialize, Serialize};

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Total test patterns to apply (rounded up to a multiple of 64, the
    /// bit-parallel block width). The paper's budget is 10 M ATPG
    /// instructions; one pattern models one test instruction.
    pub max_patterns: usize,
    /// RNG seed for pattern generation.
    pub seed: u64,
    /// Number of worker threads for the fault loop (1 = serial).
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { max_patterns: 8192, seed: 0xA7C6, threads: 1 }
    }
}

/// Classification of one fault after the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultStatus {
    /// Fault effect observed; `pattern` is the first detecting pattern
    /// index (a proxy for detection latency in test instructions).
    Detected {
        /// First detecting pattern index.
        pattern: usize,
    },
    /// Detectable in principle but not detected within the pattern budget.
    Undetected,
    /// Provably undetectable: the site is redundant by construction or has
    /// no structural path to any observed output.
    Undetectable,
}

impl FaultStatus {
    /// `true` for [`FaultStatus::Detected`].
    #[must_use]
    pub fn is_detected(self) -> bool {
        matches!(self, FaultStatus::Detected { .. })
    }
}

/// Result of a campaign: per-fault classifications in input order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignOutcome {
    faults: Vec<Fault>,
    statuses: Vec<FaultStatus>,
    patterns_applied: usize,
}

impl CampaignOutcome {
    /// Reassembles an outcome from parts (used by
    /// [`crate::observe::core_level_campaign`] to split a composed-chain
    /// outcome back into per-stage views).
    pub(crate) fn from_raw_parts(
        faults: Vec<Fault>,
        statuses: Vec<FaultStatus>,
        patterns_applied: usize,
    ) -> Self {
        CampaignOutcome { faults, statuses, patterns_applied }
    }

    /// The faults, in the order supplied to [`run_campaign`].
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Per-fault statuses, parallel to [`faults`](CampaignOutcome::faults).
    #[must_use]
    pub fn statuses(&self) -> &[FaultStatus] {
        &self.statuses
    }

    /// `(fault, status)` pairs.
    pub fn results(&self) -> Vec<(Fault, FaultStatus)> {
        self.faults.iter().copied().zip(self.statuses.iter().copied()).collect()
    }

    /// Iterator over detected faults with their detection pattern index.
    pub fn detected(&self) -> impl Iterator<Item = (Fault, usize)> + '_ {
        self.faults.iter().zip(&self.statuses).filter_map(|(f, s)| match s {
            FaultStatus::Detected { pattern } => Some((*f, *pattern)),
            _ => None,
        })
    }

    /// Number of faults in each class: `(detected, undetected, undetectable)`.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for s in &self.statuses {
            match s {
                FaultStatus::Detected { .. } => c.0 += 1,
                FaultStatus::Undetected => c.1 += 1,
                FaultStatus::Undetectable => c.2 += 1,
            }
        }
        c
    }

    /// Fraction of *all* faults that are detectable (detected + undetected),
    /// the quantity the paper reports as coverage in Fig. 4(b).
    #[must_use]
    pub fn detectable_fraction(&self) -> f64 {
        let (d, u, _) = self.counts();
        (d + u) as f64 / self.statuses.len().max(1) as f64
    }

    /// Fraction of detectable faults that were detected within the budget.
    #[must_use]
    pub fn detected_of_detectable(&self) -> f64 {
        let (d, u, _) = self.counts();
        d as f64 / (d + u).max(1) as f64
    }

    /// Patterns actually applied.
    #[must_use]
    pub fn patterns_applied(&self) -> usize {
        self.patterns_applied
    }
}

/// Runs a random-pattern stuck-at campaign over `faults` on `netlist`,
/// observing the netlist's primary outputs.
///
/// Faults that are ground-truth redundant
/// ([`Netlist::redundant_constants`]) or structurally unobservable from
/// the outputs are classified [`FaultStatus::Undetectable`] without
/// simulation. The rest are fault-simulated with 64 patterns per pass and
/// dropped once detected.
#[must_use]
pub fn run_campaign(netlist: &Netlist, faults: &[Fault], config: &CampaignConfig) -> CampaignOutcome {
    let blocks = config.max_patterns.div_ceil(64).max(1);
    let observable = structurally_observable(netlist, netlist.outputs());

    // Pre-classify provably undetectable faults.
    let mut statuses = vec![FaultStatus::Undetected; faults.len()];
    let mut active: Vec<usize> = Vec::with_capacity(faults.len());
    for (i, fault) in faults.iter().enumerate() {
        let redundant = netlist
            .redundant_constants()
            .iter()
            .any(|&(net, val)| net == fault.net && val == fault.stuck);
        if redundant || !observable[fault.net.index()] {
            statuses[i] = FaultStatus::Undetectable;
        } else {
            active.push(i);
        }
    }

    let threads = config.threads.max(1);
    if threads == 1 || active.len() < 128 {
        simulate_chunk(netlist, faults, &active, blocks, config.seed, &mut statuses);
    } else {
        let chunk_len = active.len().div_ceil(threads);
        let chunks: Vec<&[usize]> = active.chunks(chunk_len).collect();
        let mut partials: Vec<Vec<(usize, FaultStatus)>> = Vec::new();
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in &chunks {
                let chunk: Vec<usize> = chunk.to_vec();
                handles.push(scope.spawn(move |_| {
                    let mut local = vec![FaultStatus::Undetected; chunk.len()];
                    let mut local_statuses = vec![FaultStatus::Undetected; faults.len()];
                    simulate_chunk(netlist, faults, &chunk, blocks, config.seed, &mut local_statuses);
                    for (j, &fi) in chunk.iter().enumerate() {
                        local[j] = local_statuses[fi];
                    }
                    chunk.into_iter().zip(local).collect::<Vec<_>>()
                }));
            }
            for h in handles {
                partials.push(h.join().expect("campaign worker panicked"));
            }
        })
        .expect("campaign thread scope failed");
        for partial in partials {
            for (fi, st) in partial {
                statuses[fi] = st;
            }
        }
    }

    CampaignOutcome {
        faults: faults.to_vec(),
        statuses,
        patterns_applied: blocks * 64,
    }
}

/// Simulates the faults at indices `active` over all pattern blocks,
/// updating `statuses` in place. All workers use the same seed, so the
/// pattern sequence is identical regardless of threading.
fn simulate_chunk(
    netlist: &Netlist,
    faults: &[Fault],
    active: &[usize],
    blocks: usize,
    seed: u64,
    statuses: &mut [FaultStatus],
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining: Vec<usize> = active.to_vec();
    let mut inputs = vec![0u64; netlist.num_inputs()];
    let mut faulty_values: Vec<u64> = Vec::with_capacity(netlist.num_nets());

    for block in 0..blocks {
        if remaining.is_empty() {
            break;
        }
        for slot in inputs.iter_mut() {
            *slot = rng.gen();
        }
        let good = netlist.eval_all(&inputs);
        let good_out = netlist.output_values(&good);

        remaining.retain(|&fi| {
            let fault = faults[fi];
            netlist.eval_all_stuck_into(&inputs, (fault.net, fault.stuck), &mut faulty_values);
            let mut diff = 0u64;
            for (o, g) in netlist.outputs().iter().zip(&good_out) {
                diff |= faulty_values[o.index()] ^ g;
            }
            if diff != 0 {
                let lane = diff.trailing_zeros() as usize;
                statuses[fi] = FaultStatus::Detected { pattern: block * 64 + lane };
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::all_faults;
    use r2d3_netlist::NetlistBuilder;

    fn parity4() -> Netlist {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(4);
        let x = b.xor_tree(&i);
        b.output(x);
        b.finish()
    }

    #[test]
    fn parity_tree_fully_detectable() {
        let nl = parity4();
        let out = run_campaign(&nl, &all_faults(&nl), &CampaignConfig::default());
        let (d, u, un) = out.counts();
        assert_eq!(u, 0);
        assert_eq!(un, 0);
        assert_eq!(d, out.faults().len());
        // XOR propagates every flip: detection should be nearly immediate.
        for (_, pattern) in out.detected() {
            assert!(pattern < 64, "parity fault took {pattern} patterns");
        }
    }

    #[test]
    fn redundant_faults_classified_undetectable() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let z = b.redundant_zero(i[0]);
        let live = b.or2(i[1], z);
        b.output(live);
        let nl = b.finish();
        let faults = all_faults(&nl);
        let out = run_campaign(&nl, &faults, &CampaignConfig::default());
        let sa0_on_z = faults.iter().position(|f| f.net == z && !f.stuck).unwrap();
        assert_eq!(out.statuses()[sa0_on_z], FaultStatus::Undetectable);
        // SA1 on the redundant net *is* detectable (forces the OR high
        // when i1 = 0).
        let sa1_on_z = faults.iter().position(|f| f.net == z && f.stuck).unwrap();
        assert!(out.statuses()[sa1_on_z].is_detected());
    }

    #[test]
    fn unobservable_logic_classified_undetectable() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let dead = b.and2(i[0], i[1]); // never observed
        let live = b.xor2(i[0], i[1]);
        let _ = dead;
        b.output(live);
        let nl = b.finish();
        let faults = all_faults(&nl);
        let out = run_campaign(&nl, &faults, &CampaignConfig::default());
        let dead_fault = faults.iter().position(|f| f.net == dead).unwrap();
        assert_eq!(out.statuses()[dead_fault], FaultStatus::Undetectable);
    }

    #[test]
    fn budget_limits_detection() {
        // An AND tree over many inputs needs the all-ones pattern for SA0
        // at the root; with a tiny budget some faults stay undetected.
        let mut b = NetlistBuilder::new();
        let i = b.inputs(24);
        let root = b.and_tree(&i);
        b.output(root);
        let nl = b.finish();
        let faults = all_faults(&nl);
        let tiny = CampaignConfig { max_patterns: 64, seed: 1, threads: 1 };
        let out = run_campaign(&nl, &faults, &tiny);
        let (_, undetected, _) = out.counts();
        assert!(undetected > 0, "24-input AND should resist 64 random patterns");
        // With a larger budget, coverage must be monotonically better.
        let big = CampaignConfig { max_patterns: 1 << 16, seed: 1, threads: 1 };
        let out_big = run_campaign(&nl, &faults, &big);
        assert!(out_big.counts().0 >= out.counts().0);
    }

    #[test]
    fn threaded_matches_serial() {
        let nl = parity4();
        let faults = all_faults(&nl);
        let serial = run_campaign(&nl, &faults, &CampaignConfig { threads: 1, ..Default::default() });
        let par = run_campaign(&nl, &faults, &CampaignConfig { threads: 4, ..Default::default() });
        assert_eq!(serial.statuses(), par.statuses());
    }

    #[test]
    fn detectable_fraction_arithmetic() {
        let nl = parity4();
        let out = run_campaign(&nl, &all_faults(&nl), &CampaignConfig::default());
        assert!((out.detectable_fraction() - 1.0).abs() < f64::EPSILON);
        assert!((out.detected_of_detectable() - 1.0).abs() < f64::EPSILON);
    }
}
