use r2d3_atpg::{
    campaign::{run_campaign, CampaignConfig},
    fault::collapsed_faults,
    observe::core_level_campaign_with,
    report::{unit_report, LatencyBucket, UnitReport},
};
use r2d3_netlist::{
    stages::{all_stage_netlists, StageSizing},
    ComposeOptions,
};

fn main() {
    let args: Vec<f64> = std::env::args().skip(1).map(|a| a.parse().unwrap()).collect();
    let absorb = args.first().copied().unwrap_or(0.55);
    let transparent = args.get(1).copied().unwrap_or(0.10);
    let sizing = StageSizing::default();
    let stages = all_stage_netlists(&sizing);
    let config = CampaignConfig { max_patterns: 1 << 14, seed: 7, threads: 8 };
    let mut total: Option<UnitReport> = None;
    for sn in &stages {
        let faults = collapsed_faults(sn.netlist());
        let out = run_campaign(sn.netlist(), &faults, &config);
        let r = unit_report(sn.unit().name(), &out);
        println!(
            "{:5} faults={:6} detectable={:.1}% det_of_det={:.1}% <5k={:.1}%",
            r.label,
            r.total,
            r.detectable_pct(),
            r.detected_of_detectable_pct(),
            r.cumulative_detected_pct(LatencyBucket::Lt5k)
        );
        match &mut total {
            None => total = Some(r),
            Some(t) => t.merge(&r),
        }
    }
    let t = total.unwrap();
    println!(
        "Total detectable={:.1}% <5k={:.1}% (paper: 96 / 96)",
        t.detectable_pct(),
        t.cumulative_detected_pct(LatencyBucket::Lt5k)
    );

    let nls: Vec<_> = stages.iter().map(|s| s.netlist()).collect();
    let faults: Vec<_> = nls.iter().map(|n| collapsed_faults(n)).collect();
    let depth = args.get(2).copied().unwrap_or(14.0) as usize;
    let limit = args.get(3).map(|v| *v as usize);
    let opts = ComposeOptions {
        absorb_fraction: absorb,
        transparent_fraction: transparent,
        mask_depth: depth,
        observe_limit: limit,
    };
    let core = core_level_campaign_with(&nls, &faults, &config, &opts).unwrap();
    let mut ctotal: Option<UnitReport> = None;
    for (sn, out) in stages.iter().zip(&core) {
        let r = unit_report(sn.unit().name(), out);
        match &mut ctotal {
            None => ctotal = Some(r),
            Some(t) => t.merge(&r),
        }
    }
    let c = ctotal.unwrap();
    println!("Core  detectable={:.1}% <5k={:.1}% (paper: 84 / 63)  absorb={absorb} transparent={transparent} depth={depth}", c.detectable_pct(), c.cumulative_detected_pct(LatencyBucket::Lt5k));
}
