#![warn(missing_docs)]

//! 45 nm physical-design model for the R2D3 reproduction.
//!
//! The paper's §V-A reports a full physical design: OpenSPARC T1 cores
//! synthesized on a commercial 45 nm SOI process (Synopsys Design
//! Compiler + Cadence Innovus + sign-off tools), with a measured
//! area/power breakdown (Table III), a 7.4 % crossbar area overhead, an
//! 8.2 % frequency overhead and a 6.5 % power overhead over the NoRecon
//! design. We cannot re-run commercial synthesis, so this crate takes the
//! paper's reported silicon numbers as the *calibration anchor* of a
//! parameterized model, and derives the quantities the system-level study
//! needs: per-unit areas/powers, crossbar and checker overheads, MIV
//! delay, and the achievable frequency of an R2D3 vs NoRecon system.
//!
//! # Example
//!
//! ```
//! use r2d3_physical::{PhysicalModel, DesignVariant};
//!
//! let model = PhysicalModel::table_iii();
//! let r2d3 = model.design(DesignVariant::R2d3);
//! let base = model.design(DesignVariant::NoRecon);
//! assert!(r2d3.frequency_ghz < base.frequency_ghz);
//! assert!(r2d3.core_area_mm2 > base.core_area_mm2);
//! ```

pub mod design;
pub mod miv;
pub mod table;

pub use design::{DesignSummary, DesignVariant, PhysicalModel};
pub use miv::MivModel;
pub use table::{UnitPhysical, TABLE_III};
