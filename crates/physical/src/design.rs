//! Design-level summaries: NoRecon vs R2D3 variants.

use crate::miv::MivModel;
use crate::table::{totals, units_power_mw, TABLE_III};
use serde::{Deserialize, Serialize};

/// Which design is being summarized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignVariant {
    /// Plain 3D stack with hard-wired pipelines (the paper's NoRecon).
    NoRecon,
    /// Stack with failure-repairing static reconfiguration. Physically
    /// identical to R2D3's fabric (it needs the crossbars to reroute) but
    /// without the dynamic scheduling machinery.
    Static,
    /// The full R2D3 engine (crossbars + checkers + controller).
    R2d3,
}

impl DesignVariant {
    /// All variants.
    pub const ALL: [DesignVariant; 3] =
        [DesignVariant::NoRecon, DesignVariant::Static, DesignVariant::R2d3];
}

/// Derived physical summary of one design variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignSummary {
    /// Variant summarized.
    pub variant: DesignVariant,
    /// Per-core area (mm²).
    pub core_area_mm2: f64,
    /// Achievable clock (GHz).
    pub frequency_ghz: f64,
    /// Per-core power (mW) at full activity.
    pub core_power_mw: f64,
    /// Area overhead over NoRecon (fraction).
    pub area_overhead: f64,
    /// Frequency overhead over NoRecon (fraction).
    pub frequency_overhead: f64,
    /// Power overhead over NoRecon (fraction).
    pub power_overhead: f64,
}

/// The calibrated physical model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalModel {
    /// Number of tiers in the stack.
    pub layers: usize,
    /// MIV/crossbar timing model.
    pub miv: MivModel,
    /// Nominal core frequency (GHz) of the NoRecon design.
    pub nominal_ghz: f64,
    /// Power overhead fraction of the R2D3 design (checkers, controller,
    /// crossbar switching) over NoRecon — §V-A reports 6.5 %.
    pub power_overhead: f64,
}

impl PhysicalModel {
    /// The paper's measured 45 nm design point (Table III + §V-A).
    #[must_use]
    pub fn table_iii() -> Self {
        PhysicalModel {
            layers: 8,
            miv: MivModel::default(),
            nominal_ghz: 1.0,
            power_overhead: 0.065,
        }
    }

    /// Area overhead fraction of the reconfigurable fabric (crossbars +
    /// checkers), derived from the per-unit Table III overheads.
    #[must_use]
    pub fn fabric_area_overhead(&self) -> f64 {
        let added: f64 = TABLE_III
            .iter()
            .map(|u| u.area_mm2 * (u.crossbar_overhead_pct + u.checker_overhead_pct) / 100.0)
            .sum();
        added / totals().area_mm2
    }

    /// Summary of a design variant.
    #[must_use]
    pub fn design(&self, variant: DesignVariant) -> DesignSummary {
        let base_area = totals().area_mm2;
        let base_power = totals().power_mw;
        match variant {
            DesignVariant::NoRecon => DesignSummary {
                variant,
                core_area_mm2: base_area,
                frequency_ghz: self.nominal_ghz,
                core_power_mw: base_power,
                area_overhead: 0.0,
                frequency_overhead: 0.0,
                power_overhead: 0.0,
            },
            DesignVariant::Static | DesignVariant::R2d3 => {
                let area_oh = self.fabric_area_overhead();
                let freq_oh = self.miv.frequency_overhead(self.layers);
                let power_oh = self.power_overhead;
                DesignSummary {
                    variant,
                    core_area_mm2: base_area * (1.0 + area_oh),
                    frequency_ghz: self.nominal_ghz * (1.0 - freq_oh),
                    core_power_mw: base_power * (1.0 + power_oh),
                    area_overhead: area_oh,
                    frequency_overhead: freq_oh,
                    power_overhead: power_oh,
                }
            }
        }
    }

    /// Per-unit power (watts) at full activity, in [`r2d3_isa::Unit::ALL`]
    /// order — the power map the thermal solve consumes.
    #[must_use]
    pub fn unit_powers_w(&self) -> [f64; 5] {
        let mut p = [0.0; 5];
        for (i, u) in TABLE_III.iter().enumerate() {
            p[i] = u.power_mw / 1000.0;
        }
        p
    }

    /// Uncore (register file / cache / routing) power per core in watts,
    /// dissipated regardless of which units are active.
    #[must_use]
    pub fn uncore_power_w(&self) -> f64 {
        (totals().power_mw - units_power_mw()) / 1000.0
    }
}

impl Default for PhysicalModel {
    fn default() -> Self {
        PhysicalModel::table_iii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_match_section_v_a() {
        let m = PhysicalModel::table_iii();
        let r = m.design(DesignVariant::R2d3);
        assert!((r.area_overhead - 0.074).abs() < 0.01, "area overhead {:.3}", r.area_overhead);
        assert!(
            (0.075..=0.082).contains(&r.frequency_overhead),
            "frequency overhead {:.3}",
            r.frequency_overhead
        );
        assert!((r.power_overhead - 0.065).abs() < 1e-12);
    }

    #[test]
    fn norecon_is_the_reference() {
        let m = PhysicalModel::table_iii();
        let b = m.design(DesignVariant::NoRecon);
        assert_eq!(b.frequency_ghz, 1.0);
        assert_eq!(b.core_area_mm2, 0.387);
        assert_eq!(b.core_power_mw, 250.0);
    }

    #[test]
    fn static_shares_r2d3_fabric() {
        let m = PhysicalModel::table_iii();
        let s = m.design(DesignVariant::Static);
        let r = m.design(DesignVariant::R2d3);
        assert_eq!(s.core_area_mm2, r.core_area_mm2);
        assert_eq!(s.frequency_ghz, r.frequency_ghz);
    }

    #[test]
    fn unit_powers_sum_below_core_power() {
        let m = PhysicalModel::table_iii();
        let units: f64 = m.unit_powers_w().iter().sum();
        assert!((units - 0.195).abs() < 1e-9);
        assert!((m.uncore_power_w() - 0.055).abs() < 1e-9);
    }
}
