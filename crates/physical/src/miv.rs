//! Monolithic inter-tier via (MIV) and crossbar timing model.
//!
//! §III-A of the paper: "The MUX-based crossbar has a fixed channel width
//! and, as a result, an instruction transfer from one stage to the next
//! can occur within the same clock cycle when implemented in 3D. The
//! frequency overhead is <8.2 % due to the small propagation delays of
//! vertical MIVs." This module models that budget: a MIV's RC delay is
//! tiny (nanometer-scale vias, per Dae et al. \[16\]), so even crossing the
//! full 8-tier stack plus the crossbar mux stays within a fraction of the
//! 1 ns cycle.

use serde::{Deserialize, Serialize};

/// Delay model for vertical crossings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MivModel {
    /// Per-MIV (one tier hop) delay in picoseconds.
    pub per_tier_ps: f64,
    /// Crossbar mux + arbitration delay in picoseconds (paid once per
    /// stage boundary when R2D3 is present).
    pub mux_ps: f64,
    /// Checker comparator setup delay in picoseconds.
    pub checker_ps: f64,
    /// Nominal clock period in picoseconds (1 GHz baseline).
    pub nominal_period_ps: f64,
}

impl Default for MivModel {
    fn default() -> Self {
        // Calibrated so a worst-case 7-tier crossing plus mux and checker
        // costs 8.2 % of the 1 ns cycle (the paper's measured overhead).
        MivModel { per_tier_ps: 4.0, mux_ps: 42.0, checker_ps: 12.0, nominal_period_ps: 1000.0 }
    }
}

impl MivModel {
    /// A through-silicon-via (TSV) stacking variant: TSVs are orders of
    /// magnitude larger than MIVs (micron-scale vs nanometer-scale) with
    /// correspondingly higher RC delay and keep-out overheads. The paper
    /// targets *monolithic* 3D precisely because MIV delay keeps the
    /// crossbar single-cycle; this preset quantifies the alternative.
    #[must_use]
    pub fn tsv() -> Self {
        MivModel { per_tier_ps: 45.0, mux_ps: 42.0, checker_ps: 12.0, nominal_period_ps: 1000.0 }
    }

    /// Delay of a transfer crossing `tiers` vertical hops through the
    /// crossbar, in picoseconds.
    #[must_use]
    pub fn crossing_delay_ps(&self, tiers: usize) -> f64 {
        self.mux_ps + self.checker_ps + self.per_tier_ps * tiers as f64
    }

    /// Worst-case crossing (full stack height) for a stack of `layers`.
    #[must_use]
    pub fn worst_case_ps(&self, layers: usize) -> f64 {
        self.crossing_delay_ps(layers.saturating_sub(1))
    }

    /// Frequency overhead fraction of an R2D3 design over NoRecon for a
    /// stack of `layers`: the crossbar delay is added to the critical
    /// path, stretching the cycle.
    #[must_use]
    pub fn frequency_overhead(&self, layers: usize) -> f64 {
        let stretched = self.nominal_period_ps + self.worst_case_ps(layers);
        1.0 - self.nominal_period_ps / stretched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_layer_overhead_matches_paper() {
        let m = MivModel::default();
        let oh = m.frequency_overhead(8);
        assert!((0.075..=0.082).contains(&oh), "frequency overhead {:.3} vs paper <8.2 %", oh);
    }

    #[test]
    fn tsv_stacking_blows_the_frequency_budget() {
        // The paper's <8.2 % overhead depends on MIVs; with TSV delays an
        // 8-tier crossbar costs several times more frequency.
        let miv = MivModel::default();
        let tsv = MivModel::tsv();
        assert!(tsv.frequency_overhead(8) > 2.0 * miv.frequency_overhead(8));
        assert!(tsv.frequency_overhead(8) > 0.2);
    }

    #[test]
    fn crossing_grows_with_tiers() {
        let m = MivModel::default();
        assert!(m.crossing_delay_ps(7) > m.crossing_delay_ps(0));
        assert_eq!(m.worst_case_ps(8), m.crossing_delay_ps(7));
    }

    #[test]
    fn same_layer_transfer_still_pays_mux() {
        let m = MivModel::default();
        assert!(m.crossing_delay_ps(0) >= m.mux_ps);
    }
}
