//! Table III of the paper: per-unit silicon measurements.

use r2d3_isa::Unit;
use serde::{Deserialize, Serialize};

/// Physical measurements of one pipeline unit (45 nm SOI, paper Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitPhysical {
    /// Which unit.
    pub unit: Unit,
    /// Total silicon area in mm².
    pub area_mm2: f64,
    /// Crossbar (MIVs + switching logic) area overhead, % of unit area.
    pub crossbar_overhead_pct: f64,
    /// Checker area overhead, % of unit area.
    pub checker_overhead_pct: f64,
    /// Fraction of the unit's area covered by the fault-detection
    /// mechanism, %.
    pub protected_area_pct: f64,
    /// Unit power in mW (excluding register files and caches).
    pub power_mw: f64,
}

/// The five rows of Table III.
///
/// The "Total" row of the paper (0.387 mm², 7.4 % crossbar, 0.31 %
/// checker, 93 % protected, 250 mW) is derivable via [`totals`]; the
/// remaining area/power (register files, caches, routing) is accounted as
/// the *uncore* share.
pub const TABLE_III: [UnitPhysical; 5] = [
    UnitPhysical {
        unit: Unit::Ifu,
        area_mm2: 0.056,
        crossbar_overhead_pct: 10.3,
        checker_overhead_pct: 0.43,
        protected_area_pct: 88.0,
        power_mw: 115.0,
    },
    UnitPhysical {
        unit: Unit::Exu,
        area_mm2: 0.036,
        crossbar_overhead_pct: 12.0,
        checker_overhead_pct: 0.5,
        protected_area_pct: 95.0,
        power_mw: 23.0,
    },
    UnitPhysical {
        unit: Unit::Lsu,
        area_mm2: 0.067,
        crossbar_overhead_pct: 18.8,
        checker_overhead_pct: 0.74,
        protected_area_pct: 98.0,
        power_mw: 44.0,
    },
    UnitPhysical {
        unit: Unit::Tlu,
        area_mm2: 0.040,
        crossbar_overhead_pct: 5.0,
        checker_overhead_pct: 0.22,
        protected_area_pct: 91.0,
        power_mw: 10.0,
    },
    UnitPhysical {
        unit: Unit::Ffu,
        area_mm2: 0.014,
        crossbar_overhead_pct: 35.4,
        checker_overhead_pct: 1.24,
        protected_area_pct: 96.0,
        power_mw: 3.0,
    },
];

/// Paper-reported whole-core figures (the Table III "Total" row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreTotals {
    /// Whole-core area (mm²) including uncore.
    pub area_mm2: f64,
    /// Whole-core crossbar overhead (%).
    pub crossbar_overhead_pct: f64,
    /// Whole-core checker overhead (%).
    pub checker_overhead_pct: f64,
    /// Whole-core protected area (%).
    pub protected_area_pct: f64,
    /// Whole-core power (mW) excluding register files and caches.
    pub power_mw: f64,
}

/// The paper's Table III "Total" row.
#[must_use]
pub fn totals() -> CoreTotals {
    CoreTotals {
        area_mm2: 0.387,
        crossbar_overhead_pct: 7.4,
        checker_overhead_pct: 0.31,
        protected_area_pct: 93.0,
        power_mw: 250.0,
    }
}

/// Looks up a unit's Table III row.
#[must_use]
pub fn unit_physical(unit: Unit) -> UnitPhysical {
    TABLE_III[unit.index()]
}

/// Sum of the five units' powers (mW); the remainder up to
/// [`CoreTotals::power_mw`] is uncore power.
#[must_use]
pub fn units_power_mw() -> f64 {
    TABLE_III.iter().map(|u| u.power_mw).sum()
}

/// Sum of the five units' areas (mm²); the remainder up to
/// [`CoreTotals::area_mm2`] is uncore area.
#[must_use]
pub fn units_area_mm2() -> f64 {
    TABLE_III.iter().map(|u| u.area_mm2).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_in_unit_order() {
        for (i, row) in TABLE_III.iter().enumerate() {
            assert_eq!(row.unit.index(), i);
            assert_eq!(unit_physical(row.unit), *row);
        }
    }

    #[test]
    fn units_fit_inside_core() {
        assert!(units_area_mm2() < totals().area_mm2);
        assert!(units_power_mw() < totals().power_mw);
    }

    #[test]
    fn area_weighted_crossbar_overhead_is_consistent() {
        // The per-unit crossbar overheads, weighted by unit area and spread
        // over the whole core, should land near the paper's 7.4 % total.
        let weighted: f64 =
            TABLE_III.iter().map(|u| u.area_mm2 * u.crossbar_overhead_pct / 100.0).sum();
        let total_pct = 100.0 * weighted / totals().area_mm2;
        assert!(
            (total_pct - totals().crossbar_overhead_pct).abs() < 1.0,
            "weighted crossbar overhead {total_pct:.2}% vs reported 7.4%"
        );
    }

    #[test]
    fn protected_area_near_93_pct() {
        let weighted: f64 =
            TABLE_III.iter().map(|u| u.area_mm2 * u.protected_area_pct).sum::<f64>()
                / units_area_mm2();
        assert!((weighted - totals().protected_area_pct).abs() < 2.0, "weighted {weighted:.1}%");
    }
}
