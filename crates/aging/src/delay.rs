//! Delay/frequency impact of threshold-voltage degradation.
//!
//! Gate delay follows the alpha-power law `d ∝ Vdd / (Vdd − Vth)^α`;
//! as NBTI raises `Vth`, the maximum frequency a unit can sustain falls.
//! A unit whose accumulated ΔVth exhausts the timing guardband can no
//! longer meet its cycle time and is treated as failed by the lifetime
//! simulation.

use serde::{Deserialize, Serialize};

/// Alpha-power-law delay model parameters (45 nm-class defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Nominal threshold voltage (V).
    pub vth0: f64,
    /// Velocity-saturation exponent α.
    pub alpha: f64,
}

impl Default for DelayParams {
    fn default() -> Self {
        DelayParams { vdd: 1.0, vth0: 0.35, alpha: 1.3 }
    }
}

/// Achievable frequency relative to nominal for a given ΔVth, under the
/// default [`DelayParams`].
///
/// Returns a factor in `(0, 1]`; ΔVth ≤ 0 returns exactly 1.0.
///
/// # Example
///
/// ```
/// let f = r2d3_aging::frequency_factor(0.05);
/// assert!(f < 1.0 && f > 0.8);
/// ```
#[must_use]
pub fn frequency_factor(vth_shift: f64) -> f64 {
    frequency_factor_with(&DelayParams::default(), vth_shift)
}

/// [`frequency_factor`] with explicit parameters.
#[must_use]
pub fn frequency_factor_with(params: &DelayParams, vth_shift: f64) -> f64 {
    if vth_shift <= 0.0 {
        return 1.0;
    }
    let headroom0 = params.vdd - params.vth0;
    let headroom = (params.vdd - params.vth0 - vth_shift).max(1e-6);
    (headroom / headroom0).powf(params.alpha).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_device_runs_at_nominal() {
        assert_eq!(frequency_factor(0.0), 1.0);
        assert_eq!(frequency_factor(-0.1), 1.0);
    }

    #[test]
    fn hundred_mv_costs_roughly_twenty_percent() {
        let f = frequency_factor(0.1);
        assert!((0.75..0.90).contains(&f), "f = {f}");
    }

    proptest! {
        #[test]
        fn monotone_decreasing(a in 0.0..0.3f64, b in 0.0..0.3f64) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(frequency_factor(hi) <= frequency_factor(lo));
        }

        #[test]
        fn bounded(v in -1.0..0.6f64) {
            let f = frequency_factor(v);
            prop_assert!(f > 0.0 && f <= 1.0);
        }
    }
}
