//! Electromigration wearout via Black's equation.
//!
//! EM is a secondary mechanism in the paper ("R2D3 can be used to
//! optimize any wearout mechanisms, we optimize our policy for NBTI-based
//! aging"); it is included here for the ablation benches. Black's
//! equation gives the median time to failure of an interconnect segment:
//!
//! ```text
//! MTTF = A · J^(−n) · exp(Ea / kB·T)
//! ```

use crate::{kelvin, BOLTZMANN_EV};
use serde::{Deserialize, Serialize};

/// Black's-equation electromigration model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmModel {
    /// Technology prefactor `A` (scaled so the reference condition gives
    /// `reference_mttf_hours`).
    pub reference_mttf_hours: f64,
    /// Reference temperature (°C) at which the prefactor is anchored.
    pub reference_temp_c: f64,
    /// Current-density exponent `n` (≈2 for copper).
    pub n: f64,
    /// Activation energy in eV (≈0.9 for copper interconnect).
    pub ea_ev: f64,
}

impl Default for EmModel {
    fn default() -> Self {
        EmModel {
            reference_mttf_hours: 10.0 * 365.25 * 24.0,
            reference_temp_c: 105.0,
            n: 2.0,
            ea_ev: 0.9,
        }
    }
}

impl EmModel {
    /// Median time to failure (hours) at temperature `temp_c` with a
    /// current density `j_rel` relative to the reference condition.
    ///
    /// `j_rel = 1.0` and `temp_c = reference_temp_c` yields
    /// `reference_mttf_hours`.
    #[must_use]
    pub fn mttf_hours(&self, temp_c: f64, j_rel: f64) -> f64 {
        let accel = (self.ea_ev / BOLTZMANN_EV
            * (1.0 / kelvin(temp_c) - 1.0 / kelvin(self.reference_temp_c)))
        .exp();
        self.reference_mttf_hours * j_rel.max(f64::MIN_POSITIVE).powf(-self.n) * accel
    }

    /// EM failure rate (per hour) at the given conditions, assuming an
    /// exponential approximation around the median.
    #[must_use]
    pub fn rate_per_hour(&self, temp_c: f64, j_rel: f64) -> f64 {
        1.0 / self.mttf_hours(temp_c, j_rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_condition_anchors() {
        let m = EmModel::default();
        let h = m.mttf_hours(m.reference_temp_c, 1.0);
        assert!((h - m.reference_mttf_hours).abs() / m.reference_mttf_hours < 1e-12);
    }

    #[test]
    fn hotter_fails_sooner() {
        let m = EmModel::default();
        assert!(m.mttf_hours(140.0, 1.0) < m.mttf_hours(100.0, 1.0));
    }

    #[test]
    fn higher_current_fails_sooner() {
        let m = EmModel::default();
        assert!(m.mttf_hours(105.0, 2.0) < m.mttf_hours(105.0, 1.0));
        // n = 2: doubling J quarters the lifetime.
        let ratio = m.mttf_hours(105.0, 1.0) / m.mttf_hours(105.0, 2.0);
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rate_is_reciprocal() {
        let m = EmModel::default();
        let h = m.mttf_hours(120.0, 1.5);
        assert!((m.rate_per_hour(120.0, 1.5) - 1.0 / h).abs() < 1e-15);
    }
}
