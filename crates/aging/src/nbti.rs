//! Long-term NBTI ΔVth model.
//!
//! The model follows the standard reaction–diffusion long-term form
//!
//! ```text
//! ΔVth(t) = A₀ · exp(−Ea / kB·T) · (α · t)^n
//! ```
//!
//! where `α` is the stress duty factor (fraction of time the unit is
//! powered and active) and `n ≈ 1/6…1/4` the diffusion exponent. Between
//! windows of different temperature/duty, the state is advanced with the
//! *equivalent stress time* method: the accumulated ΔVth is converted to
//! the stress time that would have produced it at the new conditions, the
//! new window's stress is appended, and ΔVth re-evaluated. Idle time
//! additionally grants a small fractional recovery — the effect the paper
//! exploits: "gives the units a chance to be unstressed and partially
//! recover their Vth degradation" (§III-E).
//!
//! Parameter defaults are fitted so that an always-on unit at the hottest
//! layer of the 8-layer stack accumulates ≈0.1 V over 8 years (paper
//! Fig. 5(a), NoRecon curve). The effective activation energy (0.18 eV)
//! sits in the experimentally reported NBTI range of 0.1–0.2 eV.

use crate::{kelvin, BOLTZMANN_EV};
use serde::{Deserialize, Serialize};

/// NBTI model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NbtiParams {
    /// Prefactor `A₀` in volts per `s^n`.
    pub a0: f64,
    /// Effective activation energy in eV.
    pub ea_ev: f64,
    /// Time exponent `n`.
    pub n: f64,
    /// Exponent `q` on the duty factor's stress-time contribution:
    /// a window adds `duty^q · Δt` of equivalent stress. `q = 1` is the
    /// classic equivalent-time model (stress strictly proportional to
    /// active time); `q > 1` captures the *superlinear* benefit of
    /// power-gated idle periods, where the full supply removal lets
    /// interface traps anneal (the partial-recovery effect the paper's
    /// rotation policies exploit). The default is calibrated against the
    /// paper's measured 31 % reduction for round-robin rotation.
    pub duty_exponent: f64,
}

impl Default for NbtiParams {
    fn default() -> Self {
        NbtiParams { a0: 0.19, ea_ev: 0.17, n: 0.2, duty_exponent: 3.0 }
    }
}

/// Accumulated NBTI damage of one device/unit.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NbtiState {
    vth_shift: f64,
}

impl NbtiState {
    /// Fresh (unstressed) device.
    #[must_use]
    pub fn new() -> Self {
        NbtiState::default()
    }

    /// Accumulated threshold-voltage shift in volts.
    #[must_use]
    pub fn vth_shift(&self) -> f64 {
        self.vth_shift
    }

    /// Rebuilds a state from a previously observed
    /// [`vth_shift`](NbtiState::vth_shift) value, e.g. when restoring a
    /// lifetime-simulation snapshot. The value is taken verbatim (no
    /// clamping) so a save/restore round-trip is bit-exact.
    #[must_use]
    pub fn from_vth_shift(vth_shift: f64) -> Self {
        NbtiState { vth_shift }
    }
}

/// The NBTI aging model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NbtiModel {
    /// Model parameters.
    pub params: NbtiParams,
}

impl NbtiModel {
    /// Creates a model with explicit parameters.
    #[must_use]
    pub fn new(params: NbtiParams) -> Self {
        NbtiModel { params }
    }

    /// Temperature-dependent rate coefficient `A₀·exp(−Ea/kB·T)`.
    #[must_use]
    pub fn rate(&self, temp_c: f64) -> f64 {
        self.params.a0 * (-self.params.ea_ev / (BOLTZMANN_EV * kelvin(temp_c))).exp()
    }

    /// Advances `state` over a window of `dt_seconds` during which the
    /// unit was stressed a fraction `duty` of the time at `temp_c`.
    ///
    /// `duty` is clamped to `[0, 1]`. The update is exact under constant
    /// conditions and timestep-invariant (equivalent-stress-time method).
    pub fn advance(&self, state: &mut NbtiState, duty: f64, temp_c: f64, dt_seconds: f64) {
        let duty = duty.clamp(0.0, 1.0);
        let k = self.rate(temp_c);
        let n = self.params.n;

        // Equivalent stress time at the current conditions.
        let t_eq = if state.vth_shift > 0.0 { (state.vth_shift / k).powf(1.0 / n) } else { 0.0 };
        let stressed = t_eq + duty.powf(self.params.duty_exponent) * dt_seconds;
        let vth = k * stressed.powf(n);
        // The long-term component is monotone: recovery is modeled inside
        // the duty exponent, never as rejuvenation of accumulated damage.
        state.vth_shift = vth.max(state.vth_shift);
    }

    /// Closed-form ΔVth for constant conditions (used in tests and quick
    /// estimates): `A₀·exp(−Ea/kB·T)·(α^q·t)^n`.
    #[must_use]
    pub fn vth_constant(&self, duty: f64, temp_c: f64, t_seconds: f64) -> f64 {
        let q = self.params.duty_exponent;
        self.rate(temp_c) * (duty.clamp(0.0, 1.0).powf(q) * t_seconds).powf(self.params.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SECONDS_PER_MONTH;

    const EIGHT_YEARS: f64 = 96.0 * SECONDS_PER_MONTH;

    #[test]
    fn eight_year_hot_dc_stress_near_100mv() {
        // The hottest always-on block of the unmanaged stack sits near
        // 145 °C; the paper's NoRecon curve reaches ≈0.1 V at 8 years.
        let m = NbtiModel::default();
        let v = m.vth_constant(1.0, 145.0, EIGHT_YEARS);
        assert!((0.06..0.14).contains(&v), "ΔVth {v:.3} V should be ≈0.1 V (Fig 5a)");
    }

    #[test]
    fn incremental_matches_closed_form_at_constant_conditions() {
        let m = NbtiModel::default();
        let mut s = NbtiState::new();
        for _ in 0..96 {
            m.advance(&mut s, 1.0, 120.0, SECONDS_PER_MONTH);
        }
        let closed = m.vth_constant(1.0, 120.0, EIGHT_YEARS);
        assert!(
            (s.vth_shift() - closed).abs() / closed < 1e-9,
            "equivalent-time stepping must be exact at constant conditions: {} vs {closed}",
            s.vth_shift()
        );
    }

    #[test]
    fn hotter_ages_faster() {
        let m = NbtiModel::default();
        assert!(m.vth_constant(1.0, 140.0, EIGHT_YEARS) > m.vth_constant(1.0, 100.0, EIGHT_YEARS));
    }

    #[test]
    fn lower_duty_ages_slower() {
        let m = NbtiModel::default();
        let mut busy = NbtiState::new();
        let mut rotated = NbtiState::new();
        for _ in 0..96 {
            m.advance(&mut busy, 1.0, 120.0, SECONDS_PER_MONTH);
            m.advance(&mut rotated, 0.6, 120.0, SECONDS_PER_MONTH);
        }
        assert!(rotated.vth_shift() < busy.vth_shift());
    }

    #[test]
    fn degradation_is_monotone_in_time() {
        let m = NbtiModel::default();
        let mut s = NbtiState::new();
        let mut prev = 0.0;
        for month in 0..96 {
            // Alternate hot/cool and busy/idle: ΔVth must never decrease
            // faster than the bounded recoverable component.
            let duty = if month % 2 == 0 { 1.0 } else { 0.0 };
            let temp = if month % 3 == 0 { 140.0 } else { 90.0 };
            m.advance(&mut s, duty, temp, SECONDS_PER_MONTH);
            assert!(s.vth_shift() >= prev - 1e-12, "month {month}: {prev} -> {}", s.vth_shift());
            prev = s.vth_shift();
        }
        assert!(s.vth_shift() > 0.0);
    }

    #[test]
    fn fully_idle_unit_barely_ages() {
        let m = NbtiModel::default();
        let mut s = NbtiState::new();
        for _ in 0..96 {
            m.advance(&mut s, 0.0, 120.0, SECONDS_PER_MONTH);
        }
        assert!(s.vth_shift() < 1e-6, "idle unit aged by {}", s.vth_shift());
    }

    #[test]
    fn duty_is_clamped() {
        let m = NbtiModel::default();
        let mut a = NbtiState::new();
        let mut b = NbtiState::new();
        m.advance(&mut a, 2.0, 120.0, SECONDS_PER_MONTH);
        m.advance(&mut b, 1.0, 120.0, SECONDS_PER_MONTH);
        assert_eq!(a.vth_shift(), b.vth_shift());
    }
}
