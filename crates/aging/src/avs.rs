//! Adaptive voltage scaling (AVS) baselines.
//!
//! §II-B of the paper surveys voltage-based lifetime management —
//! Facelift's one-time switch and Bubblewrap's AVS — and argues they are
//! limited: "when the supply voltage increases to counteract aging, the
//! Vth degradation soon converges to that found in the guardbanded
//! case". This module models that family so the ablation bench can
//! contrast it with R2D3's reconfiguration-based prevention:
//!
//! * the NBTI rate gains a voltage-acceleration factor
//!   `exp(γ_v · (Vdd − Vdd₀))`,
//! * performance follows the alpha-power law with the *current* Vdd and
//!   accumulated ΔVth,
//! * three policies: a fixed guardbanded supply, a fully adaptive supply
//!   that cancels ΔVth each step, and Facelift's one-time switch from a
//!   slow-aging (low-Vdd) mode to a high-speed mode.

use crate::delay::DelayParams;
use crate::nbti::{NbtiModel, NbtiState};
use crate::SECONDS_PER_MONTH;
use serde::{Deserialize, Serialize};

/// Voltage-management policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AvsPolicy {
    /// Fixed nominal supply; frequency degrades with ΔVth.
    Guardband,
    /// Every step, raise Vdd to fully cancel the accumulated ΔVth.
    Adaptive,
    /// Facelift: run at `low_vdd` until `switch_month`, then jump to the
    /// high-speed supply `high_vdd`.
    OneTimeSwitch {
        /// Month of the mode switch.
        switch_month: usize,
        /// Slow-aging supply (V).
        low_vdd: f64,
        /// High-speed supply (V).
        high_vdd: f64,
    },
}

/// AVS model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvsParams {
    /// Nominal supply (V).
    pub vdd0: f64,
    /// Voltage acceleration of NBTI: rate multiplies by
    /// `exp(γ_v · (Vdd − Vdd₀))`; γ_v ≈ 6–10 /V for thin oxides.
    pub gamma_v: f64,
    /// Delay model used for the performance read-out.
    pub delay: DelayParams,
}

impl Default for AvsParams {
    fn default() -> Self {
        AvsParams { vdd0: 1.0, gamma_v: 8.0, delay: DelayParams::default() }
    }
}

/// One sample of an AVS trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvsPoint {
    /// Month index.
    pub month: usize,
    /// Accumulated ΔVth (V).
    pub vth_shift: f64,
    /// Supply voltage in effect (V).
    pub vdd: f64,
    /// Achievable frequency relative to the fresh nominal design.
    pub freq_factor: f64,
}

/// Simulates `months` of constant-duty operation under an AVS policy.
///
/// Returns one [`AvsPoint`] per month. The NBTI stress each month is the
/// base model's rate scaled by the voltage-acceleration factor of the
/// supply in effect.
#[must_use]
pub fn avs_trajectory(
    nbti: &NbtiModel,
    params: &AvsParams,
    policy: AvsPolicy,
    duty: f64,
    temp_c: f64,
    months: usize,
) -> Vec<AvsPoint> {
    let mut state = NbtiState::new();
    let mut out = Vec::with_capacity(months);
    let mut vdd = match policy {
        AvsPolicy::OneTimeSwitch { low_vdd, .. } => low_vdd,
        _ => params.vdd0,
    };

    for month in 0..months {
        if let AvsPolicy::OneTimeSwitch { switch_month, high_vdd, .. } = policy {
            if month >= switch_month {
                vdd = high_vdd;
            }
        }
        if policy == AvsPolicy::Adaptive {
            // Cancel the accumulated shift: headroom restored each step.
            vdd = params.vdd0 + state.vth_shift();
        }

        // Voltage acceleration enters as an effective stress-time scale.
        let accel = (params.gamma_v * (vdd - params.vdd0)).exp();
        let dt = SECONDS_PER_MONTH * accel;
        nbti.advance(&mut state, duty, temp_c, dt);

        let freq_factor = freq_with_vdd(&params.delay, vdd, state.vth_shift())
            / freq_with_vdd(&params.delay, params.vdd0, 0.0);
        out.push(AvsPoint { month, vth_shift: state.vth_shift(), vdd, freq_factor });
    }
    out
}

/// Alpha-power frequency at an arbitrary supply.
fn freq_with_vdd(delay: &DelayParams, vdd: f64, vth_shift: f64) -> f64 {
    let headroom = (vdd - delay.vth0 - vth_shift).max(1e-6);
    headroom.powf(delay.alpha) / vdd
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(policy: AvsPolicy) -> Vec<AvsPoint> {
        avs_trajectory(&NbtiModel::default(), &AvsParams::default(), policy, 1.0, 130.0, 96)
    }

    #[test]
    fn guardband_loses_frequency() {
        let t = run(AvsPolicy::Guardband);
        assert!((t[0].freq_factor - 1.0).abs() < 0.08, "early degradation is steep but small");
        assert!(t.last().unwrap().freq_factor < 0.95, "ΔVth must cost frequency");
        assert!(t.iter().all(|p| (p.vdd - 1.0).abs() < 1e-12));
    }

    #[test]
    fn adaptive_holds_frequency_but_ages_faster() {
        let guard = run(AvsPolicy::Guardband);
        let adaptive = run(AvsPolicy::Adaptive);
        // Performance is (approximately) sustained...
        assert!(adaptive.last().unwrap().freq_factor > guard.last().unwrap().freq_factor);
        // ...but the boosted supply accelerates degradation past the
        // guardbanded case — the paper's §II-B convergence argument.
        assert!(
            adaptive.last().unwrap().vth_shift >= guard.last().unwrap().vth_shift,
            "AVS ΔVth {:.4} should meet or exceed guardband {:.4}",
            adaptive.last().unwrap().vth_shift,
            guard.last().unwrap().vth_shift
        );
    }

    #[test]
    fn facelift_switch_changes_slope() {
        let t = run(AvsPolicy::OneTimeSwitch { switch_month: 48, low_vdd: 0.95, high_vdd: 1.05 });
        // Slow-aging mode: degradation below the guardbanded trajectory.
        let guard = run(AvsPolicy::Guardband);
        assert!(t[40].vth_shift < guard[40].vth_shift);
        // After the switch the supply jumps and aging accelerates.
        assert!((t[60].vdd - 1.05).abs() < 1e-12);
        let slope_before = t[47].vth_shift - t[40].vth_shift;
        let slope_after = t[60].vth_shift - t[53].vth_shift;
        assert!(slope_after > slope_before, "high-speed mode must age faster");
    }

    #[test]
    fn trajectories_are_monotone_in_vth() {
        for policy in [
            AvsPolicy::Guardband,
            AvsPolicy::Adaptive,
            AvsPolicy::OneTimeSwitch { switch_month: 24, low_vdd: 0.95, high_vdd: 1.05 },
        ] {
            let t = run(policy);
            for w in t.windows(2) {
                assert!(w[1].vth_shift >= w[0].vth_shift);
            }
        }
    }
}
