//! Monte-Carlo system MTTF evaluation.
//!
//! Following the divide-and-conquer methodology the paper adopts from
//! \[28\], the system's mean time to failure is estimated by sampling
//! per-component failure times from their (aging-state-dependent) hazard
//! rates and walking the failures in time order against a caller-supplied
//! *system-alive* predicate. For R2D3 the predicate is "at least one
//! complete logical pipeline can still be formed"; for a NoRecon baseline
//! it is "at least one core has all five of its own stages alive".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Monte-Carlo configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MttfConfig {
    /// Number of Monte-Carlo trials.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Censoring horizon credited to a trial in which the system survives
    /// every modeled failure (e.g. an immortal redundant component).
    pub survivor_horizon: f64,
}

impl Default for MttfConfig {
    fn default() -> Self {
        MttfConfig { trials: 1000, seed: 0x4d7f, survivor_horizon: 1e9 }
    }
}

/// Estimates the mean time to system failure (same unit as `1/rate`).
///
/// `rates[i]` is component `i`'s hazard rate (exponential approximation;
/// components with rate 0 never fail). `alive` receives the boolean alive
/// mask after each failure and must return whether the *system* is still
/// functional; it is guaranteed to be called with monotonically fewer
/// alive components.
///
/// Returns the mean failure time over all trials. If the system is
/// already dead with all components alive, returns 0.
///
/// # Panics
///
/// Panics if `rates` is empty or `config.trials` is 0.
#[must_use]
pub fn mttf_monte_carlo(
    rates: &[f64],
    alive: impl Fn(&[bool]) -> bool,
    config: &MttfConfig,
) -> f64 {
    assert!(!rates.is_empty(), "need at least one component");
    assert!(config.trials > 0, "need at least one trial");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut mask = vec![true; rates.len()];
    if !alive(&mask) {
        return 0.0;
    }

    let mut total = 0.0f64;
    let mut events: Vec<(f64, usize)> = Vec::with_capacity(rates.len());
    for _ in 0..config.trials {
        events.clear();
        for (i, &rate) in rates.iter().enumerate() {
            if rate > 0.0 {
                // Inverse-CDF sampling of Exp(rate).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                events.push((-u.ln() / rate, i));
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0));

        mask.iter_mut().for_each(|m| *m = true);
        let mut failure_time = f64::INFINITY;
        for &(t, i) in &events {
            mask[i] = false;
            if !alive(&mask) {
                failure_time = t;
                break;
            }
        }
        if failure_time.is_infinite() {
            // System survives all modeled failures: censor the trial at
            // the configured horizon.
            failure_time = config.survivor_horizon;
        }
        total += failure_time;
    }
    total / config.trials as f64
}

/// Monte-Carlo MTTF with uncertainty: returns
/// `(mean, standard_error, ci95_half_width)`.
///
/// Same sampling as [`mttf_monte_carlo`]; the confidence interval uses
/// the normal approximation (valid for the hundreds of trials typical
/// here).
///
/// # Panics
///
/// Panics if `rates` is empty or `config.trials` is 0.
#[must_use]
pub fn mttf_monte_carlo_ci(
    rates: &[f64],
    alive: impl Fn(&[bool]) -> bool + Copy,
    config: &MttfConfig,
) -> (f64, f64, f64) {
    assert!(!rates.is_empty(), "need at least one component");
    assert!(config.trials > 0, "need at least one trial");
    // Run per-trial via single-trial configs with derived seeds so the
    // estimator sees independent samples.
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let n = config.trials;
    for t in 0..n {
        let one = MttfConfig {
            trials: 1,
            seed: config.seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            survivor_horizon: config.survivor_horizon,
        };
        let x = mttf_monte_carlo(rates, alive, &one);
        sum += x;
        sum_sq += x * x;
    }
    let mean = sum / n as f64;
    let var = (sum_sq / n as f64 - mean * mean).max(0.0);
    let se = (var / n as f64).sqrt();
    (mean, se, 1.96 * se)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component_matches_exponential_mean() {
        let rate = 0.01; // MTTF = 100
        let cfg = MttfConfig { trials: 20_000, seed: 1, ..Default::default() };
        let m = mttf_monte_carlo(&[rate], |mask| mask[0], &cfg);
        assert!((m - 100.0).abs() < 3.0, "measured {m}");
    }

    #[test]
    fn series_system_fails_at_first_failure() {
        // Two components in series: rate adds, MTTF = 1/(r1+r2) = 50.
        let cfg = MttfConfig { trials: 20_000, seed: 2, ..Default::default() };
        let m = mttf_monte_carlo(&[0.01, 0.01], |mask| mask.iter().all(|&a| a), &cfg);
        assert!((m - 50.0).abs() < 2.0, "measured {m}");
    }

    #[test]
    fn parallel_system_outlives_series() {
        let cfg = MttfConfig { trials: 10_000, seed: 3, ..Default::default() };
        let rates = [0.01, 0.01];
        let series = mttf_monte_carlo(&rates, |m| m.iter().all(|&a| a), &cfg);
        let parallel = mttf_monte_carlo(&rates, |m| m.iter().any(|&a| a), &cfg);
        // 1-of-2 redundancy: MTTF = 1/r1 + 1/(r1+r2) − ... = 150 for equal rates.
        assert!(parallel > series * 2.0);
        assert!((parallel - 150.0).abs() < 5.0, "measured {parallel}");
    }

    #[test]
    fn already_dead_system_has_zero_mttf() {
        let m = mttf_monte_carlo(&[0.01], |_| false, &MttfConfig::default());
        assert_eq!(m, 0.0);
    }

    #[test]
    fn zero_rate_components_never_fail() {
        // One immortal component in a 1-of-2 system: system never dies.
        let cfg = MttfConfig { trials: 100, seed: 4, ..Default::default() };
        let m = mttf_monte_carlo(&[0.0, 1.0], |mask| mask.iter().any(|&a| a), &cfg);
        assert!(m > 1e6, "immortal redundancy should dominate: {m}");
    }

    #[test]
    fn ci_brackets_the_true_mean() {
        let cfg = MttfConfig { trials: 4000, seed: 21, ..Default::default() };
        let (mean, se, ci) = mttf_monte_carlo_ci(&[0.01], |m| m[0], &cfg);
        assert!(se > 0.0);
        assert!((mean - 100.0).abs() < ci * 2.0, "mean {mean} ± {ci} should cover 100");
        // Exponential(λ): std = mean, so se ≈ mean/√n.
        assert!((se - mean / (4000f64).sqrt()).abs() / se < 0.2);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = MttfConfig { trials: 500, seed: 9, ..Default::default() };
        let a = mttf_monte_carlo(&[0.02, 0.05], |m| m.iter().all(|&x| x), &cfg);
        let b = mttf_monte_carlo(&[0.02, 0.05], |m| m.iter().all(|&x| x), &cfg);
        assert_eq!(a, b);
    }
}
