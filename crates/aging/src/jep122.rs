//! JEP122 wearout-mechanism suite.
//!
//! The paper's reliability evaluation cites JEDEC JEP122 ("Failure
//! Mechanisms and Models for Semiconductor Devices", \[28\]) for its
//! failure models. Besides NBTI ([`crate::nbti`]) and electromigration
//! ([`crate::em`]), JEP122 covers:
//!
//! * **TDDB** — time-dependent dielectric breakdown, E-model:
//!   `TTF = A · exp(−γ·E_ox) · exp(Ea / kB·T)`,
//! * **HCI** — hot-carrier injection: `TTF = A · exp(Ea / kB·T)` with a
//!   *negative* activation energy (HCI worsens at low temperature),
//! * **Thermal cycling** — Coffin–Manson: `N_f = C · ΔT^(−q)`.
//!
//! [`CompositeModel`] combines any subset under the competing-risks
//! (sum-of-failure-rates) assumption JEP122 prescribes, which is how the
//! multi-mechanism ablation bench evaluates R2D3's thermal headroom.

use crate::{kelvin, BOLTZMANN_EV};
use serde::{Deserialize, Serialize};

/// Time-dependent dielectric breakdown, E-model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TddbModel {
    /// Lifetime (hours) at the reference field and temperature.
    pub reference_ttf_hours: f64,
    /// Reference oxide field (MV/cm).
    pub reference_field_mv_cm: f64,
    /// Field-acceleration factor γ (decades per MV/cm ≈ 1–4; here in
    /// natural-log units per MV/cm).
    pub gamma: f64,
    /// Activation energy (eV), ≈ 0.6–0.9 for gate oxides.
    pub ea_ev: f64,
    /// Reference temperature (°C).
    pub reference_temp_c: f64,
}

impl Default for TddbModel {
    fn default() -> Self {
        TddbModel {
            reference_ttf_hours: 20.0 * 365.25 * 24.0,
            reference_field_mv_cm: 5.0,
            gamma: 2.0,
            ea_ev: 0.7,
            reference_temp_c: 105.0,
        }
    }
}

impl TddbModel {
    /// Time to failure (hours) at oxide field `field_mv_cm` and
    /// temperature `temp_c`.
    #[must_use]
    pub fn ttf_hours(&self, field_mv_cm: f64, temp_c: f64) -> f64 {
        let field_term = (-self.gamma * (field_mv_cm - self.reference_field_mv_cm)).exp();
        let temp_term = (self.ea_ev / BOLTZMANN_EV
            * (1.0 / kelvin(temp_c) - 1.0 / kelvin(self.reference_temp_c)))
        .exp();
        self.reference_ttf_hours * field_term * temp_term
    }
}

/// Hot-carrier injection.
///
/// HCI has a *negative* effective activation energy: carrier mean free
/// paths grow at low temperature, so cold, fast-switching logic degrades
/// faster — the one mechanism where R2D3-Pro's cool-tier bias is not
/// automatically a win (quantified in the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HciModel {
    /// Lifetime (hours) at the reference condition.
    pub reference_ttf_hours: f64,
    /// Activation energy (eV), negative (≈ −0.1 … −0.2).
    pub ea_ev: f64,
    /// Reference temperature (°C).
    pub reference_temp_c: f64,
    /// Switching-activity exponent: TTF ∝ activity^(−m).
    pub activity_exponent: f64,
}

impl Default for HciModel {
    fn default() -> Self {
        HciModel {
            reference_ttf_hours: 30.0 * 365.25 * 24.0,
            ea_ev: -0.15,
            reference_temp_c: 105.0,
            activity_exponent: 1.0,
        }
    }
}

impl HciModel {
    /// Time to failure (hours) at `temp_c` with relative switching
    /// activity `activity` (1.0 = reference).
    #[must_use]
    pub fn ttf_hours(&self, temp_c: f64, activity: f64) -> f64 {
        let temp_term = (self.ea_ev / BOLTZMANN_EV
            * (1.0 / kelvin(temp_c) - 1.0 / kelvin(self.reference_temp_c)))
        .exp();
        self.reference_ttf_hours
            * temp_term
            * activity.max(f64::MIN_POSITIVE).powf(-self.activity_exponent)
    }
}

/// Coffin–Manson thermal-cycling fatigue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CyclingModel {
    /// Cycles to failure at the reference swing.
    pub reference_cycles: f64,
    /// Reference temperature swing (K).
    pub reference_delta_t: f64,
    /// Coffin–Manson exponent `q` (≈ 2–2.5 for ductile metal films).
    pub exponent: f64,
}

impl Default for CyclingModel {
    fn default() -> Self {
        CyclingModel { reference_cycles: 1.0e5, reference_delta_t: 40.0, exponent: 2.3 }
    }
}

impl CyclingModel {
    /// Cycles to failure for a temperature swing of `delta_t` kelvin.
    #[must_use]
    pub fn cycles_to_failure(&self, delta_t: f64) -> f64 {
        if delta_t <= 0.0 {
            return f64::INFINITY;
        }
        self.reference_cycles * (delta_t / self.reference_delta_t).powf(-self.exponent)
    }

    /// Failure rate per hour given `cycles_per_hour` power cycles of
    /// swing `delta_t`.
    #[must_use]
    pub fn rate_per_hour(&self, delta_t: f64, cycles_per_hour: f64) -> f64 {
        let n = self.cycles_to_failure(delta_t);
        if n.is_infinite() {
            0.0
        } else {
            cycles_per_hour / n
        }
    }
}

/// Operating condition of one device/stage for the composite evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Junction temperature (°C).
    pub temp_c: f64,
    /// Relative current density (EM), 1.0 = reference.
    pub j_rel: f64,
    /// Oxide field (MV/cm).
    pub field_mv_cm: f64,
    /// Relative switching activity (HCI), 1.0 = reference.
    pub activity: f64,
    /// Power-cycling swing (K) and frequency (cycles/hour).
    pub cycle_delta_t: f64,
    /// Power cycles per hour.
    pub cycles_per_hour: f64,
}

impl Default for OperatingPoint {
    fn default() -> Self {
        OperatingPoint {
            temp_c: 105.0,
            j_rel: 1.0,
            field_mv_cm: 5.0,
            activity: 1.0,
            cycle_delta_t: 0.0,
            cycles_per_hour: 0.0,
        }
    }
}

/// Competing-risks combination of the JEP122 mechanisms: the system
/// failure rate is the sum of the mechanism rates (series reliability),
/// per JEP122's sum-of-failure-rates method.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CompositeModel {
    /// Electromigration.
    pub em: crate::em::EmModel,
    /// Dielectric breakdown.
    pub tddb: TddbModel,
    /// Hot carriers.
    pub hci: HciModel,
    /// Thermal cycling.
    pub cycling: CyclingModel,
}

impl CompositeModel {
    /// Total failure rate (per hour) at an operating point.
    #[must_use]
    pub fn rate_per_hour(&self, op: &OperatingPoint) -> f64 {
        1.0 / self.em.mttf_hours(op.temp_c, op.j_rel)
            + 1.0 / self.tddb.ttf_hours(op.field_mv_cm, op.temp_c)
            + 1.0 / self.hci.ttf_hours(op.temp_c, op.activity)
            + self.cycling.rate_per_hour(op.cycle_delta_t, op.cycles_per_hour)
    }

    /// Combined MTTF (hours) at an operating point.
    #[must_use]
    pub fn mttf_hours(&self, op: &OperatingPoint) -> f64 {
        1.0 / self.rate_per_hour(op)
    }

    /// Per-mechanism rate breakdown `(em, tddb, hci, cycling)` per hour.
    #[must_use]
    pub fn breakdown(&self, op: &OperatingPoint) -> (f64, f64, f64, f64) {
        (
            1.0 / self.em.mttf_hours(op.temp_c, op.j_rel),
            1.0 / self.tddb.ttf_hours(op.field_mv_cm, op.temp_c),
            1.0 / self.hci.ttf_hours(op.temp_c, op.activity),
            self.cycling.rate_per_hour(op.cycle_delta_t, op.cycles_per_hour),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tddb_accelerates_with_field_and_heat() {
        let m = TddbModel::default();
        assert!(m.ttf_hours(6.0, 105.0) < m.ttf_hours(5.0, 105.0));
        assert!(m.ttf_hours(5.0, 140.0) < m.ttf_hours(5.0, 105.0));
        let anchored = m.ttf_hours(m.reference_field_mv_cm, m.reference_temp_c);
        assert!((anchored - m.reference_ttf_hours).abs() / m.reference_ttf_hours < 1e-12);
    }

    #[test]
    fn hci_worsens_when_cold() {
        let m = HciModel::default();
        assert!(
            m.ttf_hours(60.0, 1.0) < m.ttf_hours(120.0, 1.0),
            "negative Ea: HCI lifetime is shorter at low temperature"
        );
        assert!(m.ttf_hours(105.0, 2.0) < m.ttf_hours(105.0, 1.0));
    }

    #[test]
    fn coffin_manson_power_law() {
        let m = CyclingModel::default();
        let n40 = m.cycles_to_failure(40.0);
        let n80 = m.cycles_to_failure(80.0);
        let expected = 2.0f64.powf(m.exponent);
        assert!(((n40 / n80) - expected).abs() / expected < 1e-9);
        assert!(m.cycles_to_failure(0.0).is_infinite());
        assert_eq!(m.rate_per_hour(0.0, 10.0), 0.0);
    }

    #[test]
    fn composite_rate_is_sum_of_mechanisms() {
        let m = CompositeModel::default();
        let op = OperatingPoint { cycle_delta_t: 30.0, cycles_per_hour: 2.0, ..Default::default() };
        let (em, tddb, hci, cyc) = m.breakdown(&op);
        let total = m.rate_per_hour(&op);
        assert!((total - (em + tddb + hci + cyc)).abs() / total < 1e-12);
        // Composite MTTF is below every single mechanism's TTF.
        assert!(m.mttf_hours(&op) < 1.0 / em);
        assert!(m.mttf_hours(&op) < 1.0 / tddb);
    }

    #[test]
    fn cooling_helps_overall_despite_hci() {
        // R2D3-Pro's cooling must win overall: EM + TDDB gains dominate
        // the HCI penalty at realistic parameters.
        let m = CompositeModel::default();
        let hot = OperatingPoint { temp_c: 140.0, ..Default::default() };
        let cool = OperatingPoint { temp_c: 110.0, ..Default::default() };
        assert!(m.mttf_hours(&cool) > m.mttf_hours(&hot));
    }
}
