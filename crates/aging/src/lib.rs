#![warn(missing_docs)]

//! Wearout models for the R2D3 reproduction.
//!
//! The paper evaluates lifetime with an NBTI-based ΔVth model plus a
//! divide-and-conquer Monte-Carlo MTTF methodology (JEP122, \[28\] in the
//! paper). This crate provides the corresponding models:
//!
//! * [`nbti`] — long-term negative-bias-temperature-instability ΔVth
//!   accumulation with equivalent-stress-time bookkeeping, duty-cycle
//!   stress scaling, Arrhenius temperature acceleration, and partial
//!   recovery during idle periods (the effect R2D3's rotation policies
//!   exploit),
//! * [`em`] — Black's-equation electromigration MTTF (a secondary
//!   mechanism, used in an ablation),
//! * [`mttf`] — Monte-Carlo system MTTF: per-stage failure times sampled
//!   from aging-dependent hazard rates, walked against a caller-supplied
//!   system-alive predicate (pipeline formability in `r2d3-core`),
//! * [`delay`] — alpha-power-law frequency degradation as a function of
//!   ΔVth.
//!
//! # Example
//!
//! ```
//! use r2d3_aging::nbti::{NbtiModel, NbtiState};
//!
//! let model = NbtiModel::default();
//! let mut hot = NbtiState::new();
//! let mut cool = NbtiState::new();
//! let month = 30.44 * 24.0 * 3600.0;
//! for _ in 0..96 {
//!     model.advance(&mut hot, 1.0, 130.0, month);
//!     model.advance(&mut cool, 0.75, 100.0, month);
//! }
//! assert!(cool.vth_shift() < hot.vth_shift());
//! ```

pub mod avs;
pub mod delay;
pub mod em;
pub mod jep122;
pub mod mttf;
pub mod nbti;

pub use avs::{avs_trajectory, AvsParams, AvsPoint, AvsPolicy};
pub use delay::frequency_factor;
pub use em::EmModel;
pub use jep122::{CompositeModel, CyclingModel, HciModel, OperatingPoint, TddbModel};
pub use mttf::{mttf_monte_carlo, mttf_monte_carlo_ci, MttfConfig};
pub use nbti::{NbtiModel, NbtiParams, NbtiState};

/// Boltzmann constant in eV/K.
pub const BOLTZMANN_EV: f64 = 8.617_333e-5;

/// Seconds per (average) month, the lifetime simulation's timestep unit.
pub const SECONDS_PER_MONTH: f64 = 30.44 * 24.0 * 3600.0;

/// Converts Celsius to Kelvin.
#[must_use]
pub fn kelvin(celsius: f64) -> f64 {
    celsius + 273.15
}
