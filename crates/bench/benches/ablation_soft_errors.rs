//! Ablation — transient (soft-error) handling statistics.
//!
//! Quantifies the paper's contribution 2: transients are caught by the
//! concurrent checkers, classified by the single-cycle TMR replay, and
//! never cost hardware.

use r2d3_bench::format::Table;
use r2d3_bench::header;
use r2d3_core::soft_error::{run_soft_error_campaign, SoftErrorConfig};

fn main() {
    header("Ablation", "soft-error injection campaign (transient classification)");

    let mut t = Table::new(&[
        "T_epoch",
        "Injected",
        "Caught",
        "Masked",
        "Silent",
        "Crashed",
        "Misdiagnosed",
        "Handled %",
    ]);
    // Shorter epochs keep the comparison window near the upset —
    // the knob trading detection latency for leftover power (§III-C).
    for t_epoch in [2_000u64, 4_000, 8_000, 16_000] {
        let config = SoftErrorConfig {
            injections: 60,
            engine: r2d3_core::R2d3Config {
                t_epoch,
                t_test: t_epoch.min(5_000),
                ..Default::default()
            },
            ..Default::default()
        };
        let r = run_soft_error_campaign(&config).expect("campaign");
        t.row(&[
            format!("{t_epoch}"),
            format!("{}", r.injected),
            format!("{}", r.caught),
            format!("{}", r.masked),
            format!("{}", r.silent),
            format!("{}", r.crashed),
            format!("{}", r.misdiagnosed),
            format!("{:.0}", 100.0 * r.handled_fraction()),
        ]);
    }
    t.print();
    println!();
    println!(
        "No transient is ever misdiagnosed as permanent (the replay guarantee), and \
         shorter epochs raise the caught fraction — the latency/power trade-off the \
         paper tunes with T_epoch."
    );
}
