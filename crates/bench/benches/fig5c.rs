//! Fig. 5(c) — normalized IPC over 8 years for FFT, GEMV and GEMM on the
//! four systems.

use r2d3_bench::format::Table;
use r2d3_bench::{fig5_sweep, header};
use r2d3_core::policy::PolicyKind;
use r2d3_isa::kernels::KernelKind;

fn main() {
    header("Fig. 5(c)", "normalized IPC over 8 years per workload");
    let paper_end_ratio = |k: KernelKind| match k {
        KernelKind::Fft => 2.27,
        KernelKind::Gemv => 3.76,
        KernelKind::Gemm => 1.97,
    };

    let mut avg_ratio = 0.0;
    for workload in [KernelKind::Fft, KernelKind::Gemv, KernelKind::Gemm] {
        let sweep = fig5_sweep(workload);
        println!("--- {workload} (demand {:.2}) ---", workload.core_demand_fraction());
        let mut t = Table::new(&["Year", "NoRecon", "Static", "R2D3-Lite", "R2D3-Pro"]);
        let at = |k: PolicyKind, m: usize| sweep.policy(k).series.norm_ipc[m.min(95)];
        for year in 0..=8 {
            let m = if year == 0 { 0 } else { year * 12 - 1 };
            t.row(&[
                format!("{year}"),
                format!("{:.2}", at(PolicyKind::NoRecon, m)),
                format!("{:.2}", at(PolicyKind::Static, m)),
                format!("{:.2}", at(PolicyKind::Lite, m)),
                format!("{:.2}", at(PolicyKind::Pro, m)),
            ]);
        }
        t.print();
        let ratio = at(PolicyKind::Pro, 95) / at(PolicyKind::NoRecon, 95).max(1e-9);
        avg_ratio += ratio / 3.0;
        println!(
            "Pro/NoRecon at 8 years: {:.2}×  (paper {:.2}×)",
            ratio,
            paper_end_ratio(workload)
        );
        let time_avg = |k: PolicyKind| {
            let s = &sweep.policy(k).series.norm_ipc;
            s.iter().sum::<f64>() / s.len() as f64
        };
        println!(
            "8-year average: Pro/NoRecon {:.2}×, Pro/Static {:.2}×, Lite/Static {:.2}×",
            time_avg(PolicyKind::Pro) / time_avg(PolicyKind::NoRecon),
            time_avg(PolicyKind::Pro) / time_avg(PolicyKind::Static),
            time_avg(PolicyKind::Lite) / time_avg(PolicyKind::Static)
        );
        println!();
    }
    println!(
        "Mean Pro/NoRecon end-of-life ratio over the three workloads: {avg_ratio:.2}× \
         (paper: avg +78 % over the 8-year period; per-workload 1.97–3.76× at year 8)."
    );
    println!(
        "GEMV gains most: its full-stack occupancy drives the highest utilization, \
         power and temperature — and therefore the most aging for the baselines."
    );
}
