//! Ablation — electromigration as a second wear-out mechanism, and the
//! MTTF-criterion sensitivity.
//!
//! The paper notes R2D3 "can be used to optimize any wearout mechanisms"
//! while optimizing its policy for NBTI. This harness (a) shows how the
//! policies' temperature reductions translate through Black's equation
//! into EM lifetime, and (b) contrasts the two system-failure criteria of
//! the lifetime simulation.

use r2d3_aging::EmModel;
use r2d3_bench::format::Table;
use r2d3_bench::{header, quick_lifetime_config};
use r2d3_core::lifetime::{LifetimeSim, MttfCriterion};
use r2d3_core::policy::PolicyKind;
use r2d3_isa::kernels::KernelKind;

fn main() {
    header("Ablation", "EM lifetime under policy temperatures + MTTF criterion sensitivity");

    // Hottest-layer temperatures under each policy (month-0 duty maps).
    let mut temps = Vec::new();
    for policy in [PolicyKind::Static, PolicyKind::Lite, PolicyKind::Pro] {
        let mut cfg = quick_lifetime_config(policy, KernelKind::Gemm);
        cfg.months = 1;
        cfg.replicas = 1;
        cfg.mttf_trials = 10;
        let out = LifetimeSim::new(cfg).run().expect("lifetime sim");
        temps.push((policy, out.series.hottest_layer_temp[0]));
    }

    let em = EmModel::default();
    let mut t = Table::new(&["Policy", "Hottest layer (°C)", "EM MTTF (years)", "vs Static"]);
    let static_mttf = em.mttf_hours(temps[0].1, 1.0);
    for (policy, temp) in &temps {
        let mttf = em.mttf_hours(*temp, 1.0);
        t.row(&[
            policy.to_string(),
            format!("{temp:.1}"),
            format!("{:.1}", mttf / (365.25 * 24.0)),
            format!("{:.2}×", mttf / static_mttf),
        ]);
    }
    t.print();
    println!();
    println!(
        "Black's equation turns Pro's thermal headroom into a multiplicative EM lifetime win."
    );

    println!();
    println!("MTTF criterion sensitivity (R2D3-Pro, 24 months):");
    let mut t = Table::new(&["Criterion", "MTTF at month 0", "MTTF at month 23"]);
    for criterion in [MttfCriterion::TotalLoss, MttfCriterion::ServiceLevel] {
        let mut cfg = quick_lifetime_config(PolicyKind::Pro, KernelKind::Gemm);
        cfg.months = 24;
        cfg.replicas = 4;
        cfg.mttf_criterion = criterion;
        let out = LifetimeSim::new(cfg).run().expect("lifetime sim");
        t.row(&[
            format!("{criterion:?}"),
            format!("{:.0} months", out.series.mttf_months[0]),
            format!("{:.0} months", out.series.mttf_months[23]),
        ]);
    }
    t.print();
    println!();
    println!(
        "TotalLoss (Fig. 5(b)'s criterion) asks when no pipeline can be formed; \
         ServiceLevel asks when the next capacity-reducing fault lands."
    );
}
