//! Fig. 4(c) — detection latency: percentage of detectable faults
//! detected within <50 / <500 / <5 k / >5 k test instructions.

use r2d3_atpg::report::LatencyBucket;
use r2d3_bench::format::Table;
use r2d3_bench::{fig4_campaigns, header, Fig4Config};

fn main() {
    header("Fig. 4(c)", "detection latency of detectable permanent faults");
    let r = fig4_campaigns(&Fig4Config::default());

    let mut t = Table::new(&["Structure", "<50", "<500", "<5K", ">5K", "cum <5K %"]);
    let mut row = |rep: &r2d3_atpg::report::UnitReport| {
        let detectable = (rep.detected + rep.undetected).max(1) as f64;
        let pct = |b: LatencyBucket| 100.0 * rep.latency[b as usize] as f64 / detectable;
        t.row(&[
            rep.label.clone(),
            format!("{:.1}", pct(LatencyBucket::Lt50)),
            format!("{:.1}", pct(LatencyBucket::Lt500)),
            format!("{:.1}", pct(LatencyBucket::Lt5k)),
            format!("{:.1}", pct(LatencyBucket::Gt5k)),
            format!("{:.1}", rep.cumulative_detected_pct(LatencyBucket::Lt5k)),
        ]);
    };
    for unit in &r.units {
        row(unit);
    }
    row(&r.total);
    row(&r.core_level);
    t.print();

    println!();
    println!(
        "Detected within 5 k instructions, stage level: {:.1} % of detectable — paper: 96 %",
        r.total.cumulative_detected_pct(LatencyBucket::Lt5k)
    );
    println!(
        "Detected within 5 k instructions, core level:  {:.1} % of detectable — paper: 63 %",
        r.core_level.cumulative_detected_pct(LatencyBucket::Lt5k)
    );
    println!();
    println!(
        "This is the trade-off behind the paper's T_test = 5 k choice: stage-level \
         checkers reach their coverage plateau within the 5 k-cycle test window."
    );
}
