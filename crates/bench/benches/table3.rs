//! Table III — area/power per pipeline stage plus §V-A design overheads.

use r2d3_bench::format::Table;
use r2d3_bench::header;
use r2d3_physical::{table, DesignVariant, PhysicalModel};

fn main() {
    header("Table III", "area and power for a 5-stage pipeline (45 nm SOI anchor)");
    let mut t = Table::new(&[
        "Stage",
        "Area (mm²)",
        "Crossbar OH (%)",
        "Checker OH (%)",
        "Protected (%)",
        "Power (mW)",
    ]);
    for row in &table::TABLE_III {
        t.row(&[
            row.unit.name().into(),
            format!("{:.3}", row.area_mm2),
            format!("{:.1}", row.crossbar_overhead_pct),
            format!("{:.2}", row.checker_overhead_pct),
            format!("{:.0}", row.protected_area_pct),
            format!("{:.0}", row.power_mw),
        ]);
    }
    let totals = table::totals();
    t.row(&[
        "Total".into(),
        format!("{:.3}", totals.area_mm2),
        format!("{:.1}", totals.crossbar_overhead_pct),
        format!("{:.2}", totals.checker_overhead_pct),
        format!("{:.0}", totals.protected_area_pct),
        format!("{:.0}", totals.power_mw),
    ]);
    t.print();

    println!();
    println!("Derived §V-A design overheads (R2D3 vs NoRecon):");
    let model = PhysicalModel::table_iii();
    let d = model.design(DesignVariant::R2d3);
    let mut t = Table::new(&["Metric", "Measured", "Paper"]);
    t.row(&["Area overhead".into(), format!("{:.1} %", 100.0 * d.area_overhead), "7.4 %".into()]);
    t.row(&[
        "Frequency overhead".into(),
        format!("{:.1} %", 100.0 * d.frequency_overhead),
        "8.2 %".into(),
    ]);
    t.row(&["Power overhead".into(), format!("{:.1} %", 100.0 * d.power_overhead), "6.5 %".into()]);
    t.row(&[
        "Core frequency".into(),
        format!("{:.3} GHz", d.frequency_ghz),
        "1 GHz − 8.2 %".into(),
    ]);
    t.print();
}
