//! Fig. 4(b) — breakdown of fault types per unit: detected, undetected,
//! undetectable; stage-level vs core-level observation.

use r2d3_bench::format::Table;
use r2d3_bench::{fig4_campaigns, header, Fig4Config};

fn main() {
    header("Fig. 4(b)", "fault-type breakdown per unit (stuck-at campaign)");
    let r = fig4_campaigns(&Fig4Config::default());

    let mut t = Table::new(&[
        "Structure",
        "Faults",
        "Detected %",
        "Undetected %",
        "Undetectable %",
        "Detectable %",
    ]);
    let mut row = |rep: &r2d3_atpg::report::UnitReport| {
        let n = rep.total.max(1) as f64;
        t.row(&[
            rep.label.clone(),
            format!("{}", rep.total),
            format!("{:.1}", 100.0 * rep.detected as f64 / n),
            format!("{:.1}", 100.0 * rep.undetected as f64 / n),
            format!("{:.1}", 100.0 * rep.undetectable as f64 / n),
            format!("{:.1}", rep.detectable_pct()),
        ]);
    };
    for unit in &r.units {
        row(unit);
    }
    row(&r.total);
    row(&r.core_level);
    t.print();

    println!();
    println!("Total detectable (stage level): {:.1} %   — paper: 96 %", r.total.detectable_pct());
    println!(
        "Core-level detectable:          {:.1} %   — paper: 84 %",
        r.core_level.detectable_pct()
    );
    println!();
    println!(
        "Stage-boundary observation sees {:.1} points more of the fault \
         universe than a core-boundary checker (paper: 12).",
        r.total.detectable_pct() - r.core_level.detectable_pct()
    );
}
