//! Table II — simulation parameters of the modeled system.

use r2d3_bench::format::Table;
use r2d3_bench::header;
use r2d3_pipeline_sim::SystemConfig;

fn main() {
    header("Table II", "simulation parameters (paper: gem5; here: r2d3-pipeline-sim)");
    let cfg = SystemConfig::default();
    let h = &cfg.hierarchy;
    let mut t = Table::new(&["Module", "Parameters", "Paper (Table II)"]);
    t.row(&[
        "Core".into(),
        format!(
            "single-issue in-order, {} layers × {} pipelines @ 1.0 GHz",
            cfg.layers, cfg.pipelines
        ),
        "Single-issue, in-order pipeline @ 1.0 GHz".into(),
    ]);
    t.row(&[
        "L1 D-Cache".into(),
        format!(
            "{} kB, {}-way, private, {}-cycle hit",
            h.l1d.size_bytes / 1024,
            h.l1d.ways,
            h.l1d.hit_cycles
        ),
        "8 kB, 4-way set-associative, private".into(),
    ]);
    t.row(&[
        "L2 D-Cache".into(),
        format!(
            "{} kB, {}-way, shared, {}-cycle hit",
            h.l2.size_bytes / 1024,
            h.l2.ways,
            h.l2.hit_cycles
        ),
        "64 kB, 4-way set-associative, shared".into(),
    ]);
    t.row(&[
        "I-Cache".into(),
        format!("{} kB, {}-way, private", h.l1i.size_bytes / 1024, h.l1i.ways),
        "4 kB, 4-way set-associative, private".into(),
    ]);
    t.row(&[
        "Main Memory".into(),
        format!("{}-cycle fixed latency", h.memory_cycles),
        "4-channel DDR4-2400 x64 @ 18.8 GB/s per channel".into(),
    ]);
    t.row(&[
        "R2D3 traces".into(),
        format!("{}-record stage trace rings", cfg.trace_capacity),
        "replay register + vertical buses".into(),
    ]);
    t.print();
}
