//! Ablation — voltage-scaling lifetime management (§II-B's related work)
//! vs R2D3's reconfiguration-based prevention.
//!
//! The paper argues AVS-family techniques are limited: boosting the
//! supply to hide ΔVth accelerates further degradation, so "the Vth
//! degradation soon converges to that found in the guardbanded case".
//! This harness puts numbers on that argument with the same NBTI model
//! the lifetime simulation uses, then contrasts R2D3-Pro, whose
//! prevention needs no voltage headroom at all.

use r2d3_aging::avs::{avs_trajectory, AvsParams, AvsPolicy};
use r2d3_aging::nbti::NbtiModel;
use r2d3_bench::format::Table;
use r2d3_bench::{header, quick_lifetime_config};
use r2d3_core::lifetime::LifetimeSim;
use r2d3_core::policy::PolicyKind;
use r2d3_isa::kernels::KernelKind;

fn main() {
    header("Ablation", "AVS / Facelift voltage management vs R2D3 reconfiguration");
    let nbti = NbtiModel::default();
    let params = AvsParams::default();
    let temp = 130.0; // a hot always-on stage of the unmanaged stack
    let months = 96;

    let guard = avs_trajectory(&nbti, &params, AvsPolicy::Guardband, 1.0, temp, months);
    let adaptive = avs_trajectory(&nbti, &params, AvsPolicy::Adaptive, 1.0, temp, months);
    let facelift = avs_trajectory(
        &nbti,
        &params,
        AvsPolicy::OneTimeSwitch { switch_month: 48, low_vdd: 0.95, high_vdd: 1.05 },
        1.0,
        temp,
        months,
    );

    // R2D3-Pro's hottest-stage trajectory from the pure-aging lifetime sim.
    let mut cfg = quick_lifetime_config(PolicyKind::Pro, KernelKind::Gemm);
    cfg.reliability.base_rate_per_month = 0.0;
    cfg.replicas = 1;
    let pro = LifetimeSim::new(cfg).run().expect("lifetime sim");

    let mut t = Table::new(&[
        "Year",
        "Guardband ΔVth/freq",
        "AVS ΔVth/freq",
        "Facelift ΔVth/freq",
        "R2D3-Pro ΔVth",
    ]);
    for year in [0usize, 2, 4, 6, 8] {
        let m = if year == 0 { 0 } else { year * 12 - 1 };
        t.row(&[
            format!("{year}"),
            format!("{:.3} V / {:.2}", guard[m].vth_shift, guard[m].freq_factor),
            format!("{:.3} V / {:.2}", adaptive[m].vth_shift, adaptive[m].freq_factor),
            format!("{:.3} V / {:.2}", facelift[m].vth_shift, facelift[m].freq_factor),
            format!("{:.3} V", pro.series.max_vth[m.min(95)]),
        ]);
    }
    t.print();

    println!();
    println!(
        "AVS sustains frequency ({:.2} at 8 y vs guardband {:.2}) but its ΔVth ({:.3} V) \
         meets/exceeds the guardbanded case ({:.3} V) — the paper's §II-B convergence argument.",
        adaptive.last().unwrap().freq_factor,
        guard.last().unwrap().freq_factor,
        adaptive.last().unwrap().vth_shift,
        guard.last().unwrap().vth_shift
    );
    println!(
        "R2D3-Pro reduces the *degradation itself* ({:.3} V at 8 y, {:.0} % below guardband) \
         instead of hiding it behind voltage headroom.",
        pro.series.max_vth.last().unwrap(),
        100.0 * (1.0 - pro.series.max_vth.last().unwrap() / guard.last().unwrap().vth_shift)
    );
}
