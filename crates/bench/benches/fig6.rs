//! Fig. 6 — average temperature map of the hottest layer for Static,
//! R2D3-Lite and R2D3-Pro.

use r2d3_bench::{header, quick_lifetime_config};
use r2d3_core::lifetime::LifetimeSim;
use r2d3_core::policy::PolicyKind;
use r2d3_isa::kernels::KernelKind;

fn render(map: &[f64], nx: usize, ny: usize, t_min: f64, t_max: f64) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let span = (t_max - t_min).max(1e-9);
    let mut out = String::new();
    for y in (0..ny).rev() {
        for x in 0..nx {
            let t = map[y * nx + x];
            let i = (((t - t_min) / span) * (RAMP.len() - 1) as f64)
                .clamp(0.0, (RAMP.len() - 1) as f64) as usize;
            out.push(RAMP[i] as char);
        }
        out.push('\n');
    }
    out
}

fn main() {
    header("Fig. 6", "hottest-layer temperature maps under each policy's duty assignment");
    let mut maps = Vec::new();
    for policy in [PolicyKind::Static, PolicyKind::Lite, PolicyKind::Pro] {
        let mut cfg = quick_lifetime_config(policy, KernelKind::Gemm);
        cfg.months = 1;
        cfg.replicas = 1;
        cfg.mttf_trials = 10;
        let out = LifetimeSim::new(cfg).run().expect("lifetime sim");
        maps.push((policy, out));
    }

    let (t_min, t_max) = maps.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |acc, (_, o)| {
        o.initial_hot_layer_map.iter().fold(acc, |(lo, hi), &t| (lo.min(t), hi.max(t)))
    });
    println!(
        "Common scale: {t_min:.0} °C (' ') … {t_max:.0} °C ('@');  paper color bar: 111–147 °C\n"
    );

    let static_avg = avg(&maps[0].1.initial_hot_layer_map);
    for (policy, out) in &maps {
        let mean = avg(&out.initial_hot_layer_map);
        let peak = out.initial_hot_layer_map.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        println!(
            "{policy}: hottest-layer avg {mean:.1} °C, peak {peak:.1} °C, Δ vs Static {:+.1} °C",
            mean - static_avg
        );
        print!("{}", render(&out.initial_hot_layer_map, out.map_nx, out.map_ny, t_min, t_max));
        println!();
    }
    let lite_avg = avg(&maps[1].1.initial_hot_layer_map);
    let pro_avg = avg(&maps[2].1.initial_hot_layer_map);
    println!(
        "Average reduction over Static — Lite: {:.0} °C (paper: up to 24 °C), Pro: {:.0} °C (paper: up to 33 °C)",
        static_avg - lite_avg,
        static_avg - pro_avg
    );
}

fn avg(map: &[f64]) -> f64 {
    map.iter().sum::<f64>() / map.len().max(1) as f64
}
