//! Ablation — repair-assignment strategies: balanced (sorted pairing) vs
//! locality-aware (nearest-layer greedy) pipeline formation.
//!
//! Both salvage the same number of pipelines; they differ in the vertical
//! span instructions must cross through the crossbar, which sets the MIV
//! path length (§III-A's delay budget).

use r2d3_bench::format::Table;
use r2d3_bench::header;
use r2d3_core::repair::{form_pipelines, form_pipelines_local};
use r2d3_physical::MivModel;
use r2d3_pipeline_sim::StageId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    header("Ablation", "pipeline-formation strategies under random fault maps");
    let miv = MivModel::default();
    let mut rng = StdRng::seed_from_u64(0xF0F0);

    let mut t = Table::new(&[
        "Faults",
        "Formed",
        "Balanced avg span",
        "Local avg span",
        "Balanced worst ps",
        "Local worst ps",
    ]);
    for faults in [2usize, 4, 8, 12, 16] {
        let trials = 200;
        let mut formed_total = 0usize;
        let mut span_balanced = 0.0;
        let mut span_local = 0.0;
        let mut worst_balanced = 0usize;
        let mut worst_local = 0usize;
        let mut count = 0usize;
        for _ in 0..trials {
            let mut dead = [false; 40];
            for _ in 0..faults {
                dead[rng.gen_range(0..40usize)] = true;
            }
            let usable = |s: StageId| !dead[s.flat_index()];
            let balanced = form_pipelines(8, usable, 8);
            let local = form_pipelines_local(8, usable, 8);
            formed_total += balanced.len();
            for p in &balanced {
                span_balanced += p.max_span() as f64;
                worst_balanced = worst_balanced.max(p.max_span());
                count += 1;
            }
            for p in &local {
                span_local += p.max_span() as f64;
                worst_local = worst_local.max(p.max_span());
            }
        }
        t.row(&[
            format!("{faults}"),
            format!("{:.1}", formed_total as f64 / trials as f64),
            format!("{:.2}", span_balanced / count.max(1) as f64),
            format!("{:.2}", span_local / count.max(1) as f64),
            format!("{:.0}", miv.crossing_delay_ps(worst_balanced)),
            format!("{:.0}", miv.crossing_delay_ps(worst_local)),
        ]);
    }
    t.print();
    println!();
    println!(
        "Both strategies salvage identically (the count is fixed by per-unit \
         availability). The locality-aware variant shortens *average* crossbar \
         spans — less switching energy per transfer — while its greedy last \
         picks occasionally span the full stack; either way the worst case \
         stays inside the §III-A single-cycle MIV budget (the crossing delay \
         column vs the 1000 ps period)."
    );
}
