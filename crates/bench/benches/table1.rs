//! Table I — the feature-comparison matrix.
//!
//! Prior-work rows are literature data reproduced from the paper; the
//! R2D3 row is *measured* by this repository: detection coverage from the
//! ATPG campaign (Fig. 4 pipeline), performance from the 8-year lifetime
//! sweep, and overheads from the calibrated physical model.

use r2d3_bench::format::Table;
use r2d3_bench::{fig4_campaigns, fig5_sweep, header, Fig4Config};
use r2d3_core::policy::PolicyKind;
use r2d3_isa::kernels::KernelKind;
use r2d3_physical::{DesignVariant, PhysicalModel};

struct Prior {
    name: &'static str,
    granularity: &'static str,
    detection: &'static str,
    repair: bool,
    lifetime: &'static str,
    perf_oh: &'static str,
    area_oh: &'static str,
    power_oh: &'static str,
}

const PRIOR: &[Prior] = &[
    Prior {
        name: "ARGUS",
        granularity: "Core",
        detection: "98%",
        repair: false,
        lifetime: "-",
        perf_oh: "3.9",
        area_oh: "17.0",
        power_oh: "N.R.",
    },
    Prior {
        name: "BulletProof",
        granularity: "Pipeline stage",
        detection: "89%",
        repair: false,
        lifetime: "-",
        perf_oh: "18.0",
        area_oh: "5.9",
        power_oh: "N.R.",
    },
    Prior {
        name: "ACE",
        granularity: "Core",
        detection: "99%",
        repair: false,
        lifetime: "-",
        perf_oh: "5.5",
        area_oh: "5.8",
        power_oh: "4.0",
    },
    Prior {
        name: "CoreCannibal",
        granularity: "Pipeline stage",
        detection: "-",
        repair: true,
        lifetime: "Performance: 2.4",
        perf_oh: "12.0",
        area_oh: "3.5",
        power_oh: "N.R.",
    },
    Prior {
        name: "3DFAR",
        granularity: "Pipeline stage",
        detection: "-",
        repair: true,
        lifetime: "Frequency: 16%",
        perf_oh: "5.0",
        area_oh: "7.0",
        power_oh: "N.R.",
    },
    Prior {
        name: "StageNet",
        granularity: "Pipeline stage",
        detection: "-",
        repair: true,
        lifetime: "Throughput: 30%",
        perf_oh: "33.0",
        area_oh: "17.0",
        power_oh: "16.0",
    },
    Prior {
        name: "Viper",
        granularity: "Pipeline stage",
        detection: "-",
        repair: true,
        lifetime: "Failure: 20%",
        perf_oh: "24.0",
        area_oh: "8.0",
        power_oh: "N.R.",
    },
    Prior {
        name: "NBTI 3D",
        granularity: "Core",
        detection: "-",
        repair: false,
        lifetime: "MTTF: 30%",
        perf_oh: "9.0",
        area_oh: "N.R.",
        power_oh: "N.R.",
    },
    Prior {
        name: "Bubblewrap",
        granularity: "Core",
        detection: "-",
        repair: false,
        lifetime: "Performance: 25%",
        perf_oh: "N.R.",
        area_oh: "N.R.",
        power_oh: "up to 90.0",
    },
    Prior {
        name: "NBTI Multicore",
        granularity: "Core",
        detection: "-",
        repair: false,
        lifetime: "Performance: 78%",
        perf_oh: "6.0",
        area_oh: "N.R.",
        power_oh: "N.R.",
    },
    Prior {
        name: "Artemis",
        granularity: "Core",
        detection: "-",
        repair: false,
        lifetime: "Lifetime: 116%",
        perf_oh: "2.0",
        area_oh: "N.R.",
        power_oh: "N.R.",
    },
];

fn main() {
    header(
        "Table I",
        "feature comparison matrix (prior work = literature data; R2D3 row measured)",
    );

    // Measured coverage (stage-level detectable fraction).
    let fig4 = fig4_campaigns(&Fig4Config::default());
    let coverage = fig4.total.detectable_pct();

    // Measured 8-year performance improvement (time-averaged Pro vs NoRecon).
    let sweep = fig5_sweep(KernelKind::Gemm);
    let avg = |k: PolicyKind| {
        let s = &sweep.policy(k).series.norm_ipc;
        s.iter().sum::<f64>() / s.len() as f64
    };
    let perf_gain = 100.0 * (avg(PolicyKind::Pro) / avg(PolicyKind::NoRecon) - 1.0);

    // Measured overheads.
    let model = PhysicalModel::table_iii();
    let design = model.design(DesignVariant::R2d3);

    let mut t = Table::new(&[
        "Solution",
        "Granularity",
        "Detection",
        "Repair",
        "Lifetime mgmt",
        "Perf OH %",
        "Area OH %",
        "Power OH %",
    ]);
    for p in PRIOR {
        t.row(&[
            p.name.into(),
            p.granularity.into(),
            p.detection.into(),
            if p.repair { "yes".into() } else { "-".to_string() },
            p.lifetime.into(),
            p.perf_oh.into(),
            p.area_oh.into(),
            p.power_oh.into(),
        ]);
    }
    t.row(&[
        "R2D3 [this work]".into(),
        "Pipeline stage".into(),
        format!("{coverage:.0}% (paper 96%)"),
        "yes".into(),
        format!("Performance: {perf_gain:.0}% (paper 78%)"),
        format!("{:.1} (paper 8.2)", 100.0 * design.frequency_overhead),
        format!("{:.1} (paper 7.4)", 100.0 * design.area_overhead),
        format!("{:.1} (paper 6.5)", 100.0 * design.power_overhead),
    ]);
    t.print();
    println!();
    println!(
        "R2D3 is the only row providing detection+diagnosis, repair and lifetime management simultaneously."
    );
}
