//! Fig. 5(a) — NBTI ΔVth degradation over 8 years for the four systems.

use r2d3_bench::format::Table;
use r2d3_bench::{fig5a_sweep, header};
use r2d3_core::policy::PolicyKind;
use r2d3_isa::kernels::KernelKind;

fn main() {
    header("Fig. 5(a)", "Vth degradation over 8 years (NoRecon / Static / Lite / Pro)");
    let sweep = fig5a_sweep(KernelKind::Gemm);

    let mut t = Table::new(&["Year", "NoRecon (V)", "Static (V)", "R2D3-Lite (V)", "R2D3-Pro (V)"]);
    let at = |k: PolicyKind, m: usize| sweep.policy(k).series.max_vth[m.min(95)];
    for year in 0..=8 {
        let m = if year == 0 { 0 } else { year * 12 - 1 };
        t.row(&[
            format!("{year}"),
            format!("{:.4}", at(PolicyKind::NoRecon, m)),
            format!("{:.4}", at(PolicyKind::Static, m)),
            format!("{:.4}", at(PolicyKind::Lite, m)),
            format!("{:.4}", at(PolicyKind::Pro, m)),
        ]);
    }
    t.print();

    let end = |k: PolicyKind| at(k, 95);
    let base = end(PolicyKind::NoRecon);
    println!();
    println!("ΔVth at 8 years: NoRecon {:.3} V (paper ≈ 0.10 V)", base);
    println!(
        "R2D3-Lite reduction vs NoRecon: {:.0} %  — paper: 31 %",
        100.0 * (1.0 - end(PolicyKind::Lite) / base)
    );
    println!(
        "R2D3-Pro  reduction vs NoRecon: {:.0} %  — paper: 53 %",
        100.0 * (1.0 - end(PolicyKind::Pro) / base)
    );
    println!(
        "Pro extra reduction over Lite:  {:.0} %  — paper: 30 %",
        100.0 * (1.0 - end(PolicyKind::Pro) / end(PolicyKind::Lite))
    );
    println!();
    println!(
        "Note: the paper's NoRecon and Static curves coincide; here Static runs \
         marginally hotter because it carries the fabric's 6.5 % power overhead."
    );
}
