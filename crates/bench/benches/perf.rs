//! Criterion micro-benchmarks: throughput of the four substrates the
//! reproduction is built on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use r2d3_atpg::campaign::{run_campaign, CampaignConfig};
use r2d3_atpg::fault::collapsed_faults;
use r2d3_isa::kernels::gemm;
use r2d3_isa::Unit;
use r2d3_netlist::stages::{stage_netlist, StageSizing};
use r2d3_pipeline_sim::{System3d, SystemConfig};
use r2d3_thermal::{Floorplan, GridConfig, PowerMap, ThermalGrid};

fn pipeline_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_sim");
    let cycles = 50_000u64;
    group.throughput(Throughput::Elements(cycles * 8));
    group.bench_function("8core_gemm_cycles", |b| {
        b.iter(|| {
            let mut sys = System3d::new(&SystemConfig::default());
            for p in 0..8 {
                sys.load_program(p, gemm(16, 16, 16, p as u64 + 1).program().clone()).unwrap();
            }
            sys.run(cycles).unwrap();
            sys.aggregate_ipc()
        });
    });
    group.finish();
}

fn netlist_eval(c: &mut Criterion) {
    let sn = stage_netlist(Unit::Exu, &StageSizing::default());
    let nl = sn.netlist().clone();
    let inputs: Vec<u64> = (0..nl.num_inputs() as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
    let mut group = c.benchmark_group("netlist");
    group.throughput(Throughput::Elements(nl.num_gates() as u64 * 64));
    group.bench_function("exu_eval_64_patterns", |b| {
        b.iter(|| nl.eval(&inputs));
    });
    group.finish();
}

fn fault_sim(c: &mut Criterion) {
    let sizing = StageSizing { gates_per_mm2: 3_000.0, ..Default::default() };
    let sn = stage_netlist(Unit::Ffu, &sizing);
    let faults = collapsed_faults(sn.netlist());
    let cc = CampaignConfig { max_patterns: 256, seed: 1, threads: 1 };
    let mut group = c.benchmark_group("atpg");
    group.throughput(Throughput::Elements(faults.len() as u64));
    group.bench_function("ffu_campaign_256_patterns", |b| {
        b.iter(|| run_campaign(sn.netlist(), &faults, &cc));
    });
    group.finish();
}

fn thermal_solve(c: &mut Criterion) {
    let fp = Floorplan::opensparc_3d(8);
    let grid = ThermalGrid::new(&fp, &GridConfig { nx: 8, ny: 6, ..Default::default() });
    let mut power = PowerMap::new(&fp);
    for layer in 0..8 {
        for unit in Unit::ALL {
            power.set_block(layer, unit, 0.03);
        }
    }
    let mut group = c.benchmark_group("thermal");
    group.bench_function("steady_state_8x6x8", |b| {
        b.iter(|| grid.steady_state(&power).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = pipeline_sim, netlist_eval, fault_sim, thermal_solve
}
criterion_main!(benches);
