//! Criterion micro-benchmarks plus the machine-readable perf report.
//!
//! After the four substrate micro-benches run, this harness measures the
//! PR-level performance claims head-to-head and writes them to
//! `BENCH_perf.json` at the workspace root:
//!
//! - **Campaign**: incremental cone-restricted fault simulation
//!   ([`run_campaign`]) vs the full-re-evaluation oracle
//!   ([`run_campaign_reference`]) on the EXU stage netlist, same seed and
//!   budget, with the fault classification asserted identical.
//! - **Rewritten netlist**: the 8-stage composed pipeline chain put
//!   through the IR rewrite pipeline ([`r2d3_netlist::rewrite`]), with
//!   campaign gate-evals/s, logic depth and fault-universe size measured
//!   before and after — the rewrite must not regress fault-sim
//!   throughput.
//! - **Fault campaign**: adversarial fault-injection scenario throughput
//!   ([`r2d3_core::campaign`]) on both reliability substrates, asserted
//!   failure-free (no misdiagnosis, silent corruption or engine error).
//! - **Lifetime**: replica-parallel Monte-Carlo at 1 vs 4 threads, with
//!   the averaged [`LifetimeSeries`] asserted bit-identical.
//! - **Substrate**: the same detect → diagnose → repair scenario driven
//!   by one engine over the behavioral and gate-level substrates, with
//!   epoch throughput for both and the verdicts asserted identical.
//! - **Telemetry**: the same repair scenario with the compiled-away
//!   `NullSink` vs a recording `RingSink` — the overhead budget (<5 %
//!   target) and the metrics-identity determinism check, plus the
//!   detection-latency and replay-count histograms.
//! - **Thermal**: sweeps-to-convergence of a warm-started SOR solve vs a
//!   cold solve, for both a perturbed power map and an exact re-solve.
//!
//! [`LifetimeSeries`]: r2d3_core::lifetime::LifetimeSeries

use criterion::{criterion_group, Criterion, Throughput};
use r2d3_atpg::campaign::{run_campaign, run_campaign_reference, CampaignConfig};
use r2d3_atpg::fault::{all_faults, collapsed_faults};
use r2d3_core::engine::R2d3Engine;
use r2d3_core::lifetime::{LifetimeConfig, LifetimeSim};
use r2d3_core::policy::PolicyKind;
use r2d3_core::substrate::{NetlistSubstrate, NetlistSubstrateConfig, ReliabilitySubstrate};
use r2d3_core::R2d3Config;
use r2d3_isa::kernels::{gemm, gemv, KernelKind};
use r2d3_isa::Unit;
use r2d3_netlist::stages::{stage_netlist, StageSizing};
use r2d3_netlist::FaultSim;
use r2d3_pipeline_sim::{FaultEffect, StageId, System3d, SystemConfig};
use r2d3_thermal::{Floorplan, GridConfig, PowerMap, ThermalGrid};
use std::time::Instant;

fn pipeline_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_sim");
    let cycles = 50_000u64;
    group.throughput(Throughput::Elements(cycles * 8));
    group.bench_function("8core_gemm_cycles", |b| {
        b.iter(|| {
            let mut sys = System3d::new(&SystemConfig::default());
            for p in 0..8 {
                sys.load_program(p, gemm(16, 16, 16, p as u64 + 1).program().clone()).unwrap();
            }
            sys.run(cycles).unwrap();
            sys.aggregate_ipc()
        });
    });
    group.finish();
}

fn netlist_eval(c: &mut Criterion) {
    let sn = stage_netlist(Unit::Exu, &StageSizing::default());
    let nl = sn.netlist().clone();
    let inputs: Vec<u64> = (0..nl.num_inputs() as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
    let mut group = c.benchmark_group("netlist");
    group.throughput(Throughput::Elements(nl.num_gates() as u64 * 64));
    group.bench_function("exu_eval_64_patterns", |b| {
        b.iter(|| nl.eval(&inputs));
    });
    group.finish();
}

fn fault_sim(c: &mut Criterion) {
    let sizing = StageSizing { gates_per_mm2: 3_000.0, ..Default::default() };
    let sn = stage_netlist(Unit::Ffu, &sizing);
    let faults = collapsed_faults(sn.netlist());
    let cc = CampaignConfig { max_patterns: 256, seed: 1, threads: 1 };
    let mut group = c.benchmark_group("atpg");
    group.throughput(Throughput::Elements(faults.len() as u64));
    group.bench_function("ffu_campaign_256_patterns", |b| {
        b.iter(|| run_campaign(sn.netlist(), &faults, &cc));
    });
    group.finish();
}

fn thermal_solve(c: &mut Criterion) {
    let fp = Floorplan::opensparc_3d(8);
    let grid = ThermalGrid::new(&fp, &GridConfig { nx: 8, ny: 6, ..Default::default() });
    let mut power = PowerMap::new(&fp);
    for layer in 0..8 {
        for unit in Unit::ALL {
            power.set_block(layer, unit, 0.03);
        }
    }
    let mut group = c.benchmark_group("thermal");
    group.bench_function("steady_state_8x6x8", |b| {
        b.iter(|| grid.steady_state(&power).unwrap());
    });
    group.finish();
}

fn substrate_epoch(c: &mut Criterion) {
    let mut sub = NetlistSubstrate::new(&NetlistSubstrateConfig::default());
    let mut engine = R2d3Engine::builder().build().unwrap();
    let cycles = R2d3Config::default().t_epoch;
    let mut group = c.benchmark_group("substrate");
    group.throughput(Throughput::Elements(cycles * sub.pipeline_count() as u64));
    group.bench_function("netlist_epoch_8x6", |b| {
        b.iter(|| engine.run_epoch(&mut sub).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = pipeline_sim, netlist_eval, fault_sim, thermal_solve, substrate_epoch
}

/// Runs `f` `runs` times and returns the last result with the best
/// wall-clock time in seconds.
fn time_best<R>(runs: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (out.expect("runs >= 1"), best)
}

fn campaign_report(json: &mut String) {
    let sn = stage_netlist(Unit::Exu, &StageSizing::default());
    let nl = sn.netlist();
    // The honest deliverable is a verdict for *every* stuck-at fault:
    // `run_campaign` collapses the universe internally and expands the
    // verdicts back, while the reference simulates each fault outright.
    // Measuring over the full universe credits the collapsing win to the
    // normalized rate below.
    let faults = all_faults(nl);
    // The default pattern budget: survivors of the first block are
    // re-simulated over up to 127 further blocks, which is where the
    // incremental engine's early exits pay off.
    let cfg = CampaignConfig { max_patterns: 8192, seed: 1, threads: 1 };
    let simd_kernel = FaultSim::new(nl).kernel().name();

    let (inc, inc_secs) = time_best(5, || run_campaign(nl, &faults, &cfg));
    let (reference, ref_secs) = time_best(2, || run_campaign_reference(nl, &faults, &cfg));

    assert_eq!(inc.counts(), reference.counts(), "incremental vs reference classification");
    assert_eq!(inc.patterns_applied(), reference.patterns_applied(), "patterns applied");
    let (detected, undetected, undetectable) = inc.counts();

    // Normalized work: the gate evaluations a full re-evaluation performs
    // for this budget. Same numerator for both engines, so the rate ratio
    // equals the wall-clock speedup.
    let blocks = inc.patterns_applied() / 64;
    let gate_evals = (nl.num_gates() * faults.len() * blocks) as f64;
    let speedup = ref_secs / inc_secs;

    println!(
        "perf campaign exu: incremental {inc_secs:.3}s, reference {ref_secs:.3}s, {speedup:.1}x"
    );
    json.push_str(&format!(
        concat!(
            "  \"campaign\": {{\n",
            "    \"netlist\": \"exu_stage\",\n",
            "    \"simd_kernel\": \"{}\",\n",
            "    \"gates\": {},\n",
            "    \"faults\": {},\n",
            "    \"patterns_applied\": {},\n",
            "    \"detected\": {},\n",
            "    \"undetected\": {},\n",
            "    \"undetectable\": {},\n",
            "    \"counts_identical\": true,\n",
            "    \"incremental_secs\": {:.6},\n",
            "    \"reference_secs\": {:.6},\n",
            "    \"incremental_gate_evals_per_sec\": {:.1},\n",
            "    \"reference_gate_evals_per_sec\": {:.1},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n"
        ),
        simd_kernel,
        nl.num_gates(),
        faults.len(),
        inc.patterns_applied(),
        detected,
        undetected,
        undetectable,
        inc_secs,
        ref_secs,
        gate_evals / inc_secs,
        gate_evals / ref_secs,
        speedup,
    ));
}

fn rewritten_netlist_report(json: &mut String) {
    use r2d3_netlist::{analyze_levels, compose_chain, rewrite, Netlist};

    // The 8-stage logical pipeline: Unit::ALL cycled, as formed by the
    // reconfiguration layer when it chains stages across layers.
    let sizing = StageSizing::default();
    let stages: Vec<Netlist> = Unit::ALL
        .iter()
        .cycle()
        .take(8)
        .map(|&u| stage_netlist(u, &sizing).netlist().clone())
        .collect();
    let refs: Vec<&Netlist> = stages.iter().collect();
    let (chain, _maps) = compose_chain(&refs).expect("compose 8-stage chain");

    let outcome = rewrite(&chain).expect("rewrite 8-stage chain");
    let rewritten = &outcome.netlist;
    let stats = &outcome.stats;
    debug_assert_eq!(stats.depth_after, analyze_levels(rewritten).depth());

    let faults_before = all_faults(&chain);
    let faults_after = all_faults(rewritten);
    let cfg = CampaignConfig { max_patterns: 8192, seed: 1, threads: 1 };

    let (before, before_secs) = time_best(3, || run_campaign(&chain, &faults_before, &cfg));
    let (after, after_secs) = time_best(3, || run_campaign(rewritten, &faults_after, &cfg));

    // Same normalization as the campaign row: gate evaluations a full
    // re-evaluation would perform for the applied budget.
    let evals = |nl: &Netlist, faults: usize, patterns: usize| {
        (nl.num_gates() * faults) as f64 * (patterns / 64) as f64
    };
    let before_rate = evals(&chain, faults_before.len(), before.patterns_applied()) / before_secs;
    let after_rate = evals(rewritten, faults_after.len(), after.patterns_applied()) / after_secs;

    // The acceptance gate: rewriting must never cost fault-sim
    // throughput on the composed chain (it should win — fewer gates,
    // fewer fault sites, shallower logic).
    assert!(
        after_rate >= before_rate,
        "rewrite regressed chain fault-sim throughput: {after_rate:.3e} < {before_rate:.3e}"
    );

    println!(
        "perf rewritten netlist: 8-stage chain {} → {} gates, depth {} → {}, \
         {:.2e} → {:.2e} gate-evals/s",
        stats.gates_before,
        stats.gates_after,
        stats.depth_before,
        stats.depth_after,
        before_rate,
        after_rate,
    );
    json.push_str(&format!(
        concat!(
            "  \"rewritten_netlist\": {{\n",
            "    \"netlist\": \"8_stage_chain\",\n",
            "    \"gates_before\": {},\n",
            "    \"gates_after\": {},\n",
            "    \"depth_before\": {},\n",
            "    \"depth_after\": {},\n",
            "    \"faults_before\": {},\n",
            "    \"faults_after\": {},\n",
            "    \"merged_duplicates\": {},\n",
            "    \"rebalanced_chains\": {},\n",
            "    \"dead_gates_removed\": {},\n",
            "    \"before_secs\": {:.6},\n",
            "    \"after_secs\": {:.6},\n",
            "    \"before_gate_evals_per_sec\": {:.1},\n",
            "    \"after_gate_evals_per_sec\": {:.1},\n",
            "    \"rewrite_speedup\": {:.2}\n",
            "  }},\n"
        ),
        stats.gates_before,
        stats.gates_after,
        stats.depth_before,
        stats.depth_after,
        faults_before.len(),
        faults_after.len(),
        stats.merged_duplicates,
        stats.rebalanced_chains,
        stats.dead_gates_removed,
        before_secs,
        after_secs,
        before_rate,
        after_rate,
        after_rate / before_rate,
    ));
}

fn lifetime_report(json: &mut String) {
    let months = 24;
    let replicas = 8;
    let mk = |threads: usize| LifetimeConfig {
        months,
        replicas,
        threads,
        mttf_trials: 100,
        grid: GridConfig { nx: 8, ny: 6, ..Default::default() },
        ..LifetimeConfig::new(
            PolicyKind::Pro,
            KernelKind::Gemm.core_demand_fraction(),
            KernelKind::Gemm.activity_weight(),
        )
    };

    let (serial, serial_secs) =
        time_best(3, || LifetimeSim::new(mk(1)).run().expect("serial lifetime run"));
    let (par, par_secs) =
        time_best(3, || LifetimeSim::new(mk(4)).run().expect("parallel lifetime run"));
    assert_eq!(serial.series, par.series, "1-thread vs 4-thread averaged series");

    let sim_months = (months * replicas) as f64;
    let speedup = serial_secs / par_secs;
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!(
        "perf lifetime: serial {serial_secs:.3}s, 4 threads {par_secs:.3}s, \
         {speedup:.2}x on {host}-core host, series bit-identical"
    );
    json.push_str(&format!(
        concat!(
            "  \"lifetime\": {{\n",
            "    \"months\": {},\n",
            "    \"replicas\": {},\n",
            "    \"host_parallelism\": {},\n",
            "    \"serial_secs\": {:.6},\n",
            "    \"threads4_secs\": {:.6},\n",
            "    \"serial_months_per_sec\": {:.1},\n",
            "    \"threads4_months_per_sec\": {:.1},\n",
            "    \"speedup\": {:.2},\n",
            "    \"series_bit_identical\": true\n",
            "  }},\n"
        ),
        months,
        replicas,
        host,
        serial_secs,
        par_secs,
        sim_months / serial_secs,
        sim_months / par_secs,
        speedup,
    ));
}

fn fault_campaign_report(json: &mut String) {
    use r2d3_core::campaign::{
        generate_scenarios, run_substrate_sweep, CampaignConfig, ScenarioSpace, SubstrateKind,
    };

    // Shrinking off: it only triggers on failures, and a bench that
    // failed would abort on the assert below anyway.
    let config =
        CampaignConfig { scenarios_per_substrate: 18, shrink: false, ..Default::default() };
    let space = ScenarioSpace {
        seed: config.seed,
        count: config.scenarios_per_substrate,
        pipelines: config.pipelines,
        layers: config.layers,
        settle_epochs: config.settle_epochs,
    };
    let scenarios = generate_scenarios(&space);

    let (behav, behav_secs) =
        time_best(3, || run_substrate_sweep(SubstrateKind::Behavioral, &scenarios, &config));
    let (gate, gate_secs) =
        time_best(3, || run_substrate_sweep(SubstrateKind::Netlist, &scenarios, &config));

    let failures =
        behav.results.iter().chain(&gate.results).filter(|r| r.outcome.is_failure()).count();
    assert_eq!(failures, 0, "campaign bench sweep must be failure-free");

    let n = scenarios.len() as f64;
    println!(
        "perf fault campaign: {} scenarios — behavioral {behav_secs:.3}s \
         ({:.1}/s), netlist {gate_secs:.3}s ({:.1}/s)",
        scenarios.len(),
        n / behav_secs,
        n / gate_secs,
    );
    json.push_str(&format!(
        concat!(
            "  \"fault_campaign\": {{\n",
            "    \"scenarios_per_substrate\": {},\n",
            "    \"behavioral_secs\": {:.6},\n",
            "    \"netlist_secs\": {:.6},\n",
            "    \"behavioral_scenarios_per_sec\": {:.1},\n",
            "    \"netlist_scenarios_per_sec\": {:.1},\n",
            "    \"failures\": 0\n",
            "  }},\n"
        ),
        scenarios.len(),
        behav_secs,
        gate_secs,
        n / behav_secs,
        n / gate_secs,
    ));
}

/// One engine-managed repair scenario on a substrate: injects a fault,
/// runs epochs until diagnosis (or the epoch budget), returns
/// `(epochs_run, diagnosed)`.
fn drive_scenario<S: ReliabilitySubstrate>(
    sys: &mut S,
    victim: StageId,
    max_epochs: usize,
) -> (usize, bool) {
    let mut engine = R2d3Engine::builder().build().unwrap();
    for epoch in 1..=max_epochs {
        engine.run_epoch(sys).expect("epoch");
        if engine.is_believed_faulty(victim) {
            return (epoch, true);
        }
    }
    (max_epochs, false)
}

fn substrate_report(json: &mut String) {
    let victim = StageId::new(2, Unit::Exu);
    let epochs = 8usize;
    let t_epoch = R2d3Config::default().t_epoch;

    // Behavioral backend: same detect → diagnose → repair scenario.
    let ((behav_epochs, behav_hit), behav_secs) = time_best(3, || {
        let mut sys = System3d::new(&SystemConfig { pipelines: 6, ..Default::default() });
        for p in 0..6 {
            sys.load_program(p, gemv(32, 32, 7).program().clone()).unwrap();
        }
        sys.inject_fault(victim, FaultEffect { bit: 0, stuck: true }).unwrap();
        drive_scenario(&mut sys, victim, epochs)
    });

    // Gate-level backend, one R2D3 engine over both.
    let ((gate_epochs, gate_hit), gate_secs) = time_best(3, || {
        let mut sub = NetlistSubstrate::new(&NetlistSubstrateConfig::default());
        let fault = sub.output_fault(Unit::Exu, 0, true);
        sub.inject_fault(victim, fault).unwrap();
        drive_scenario(&mut sub, victim, epochs)
    });

    assert!(behav_hit && gate_hit, "both substrates must diagnose the EXU fault");
    let behav_cycles = (behav_epochs as u64 * t_epoch) as f64;
    let gate_cycles = (gate_epochs as u64 * t_epoch) as f64;

    println!(
        "perf substrate: behavioral {behav_secs:.3}s / {behav_epochs} epochs, \
         netlist {gate_secs:.3}s / {gate_epochs} epochs to diagnosis"
    );
    json.push_str(&format!(
        concat!(
            "  \"substrate\": {{\n",
            "    \"scenario\": \"exu_l2_stuck_at_1_detect_diagnose_repair\",\n",
            "    \"t_epoch\": {},\n",
            "    \"behavioral_epochs_to_diagnosis\": {},\n",
            "    \"netlist_epochs_to_diagnosis\": {},\n",
            "    \"behavioral_secs\": {:.6},\n",
            "    \"netlist_secs\": {:.6},\n",
            "    \"behavioral_cycles_per_sec\": {:.1},\n",
            "    \"netlist_cycles_per_sec\": {:.1},\n",
            "    \"verdicts_identical\": true\n",
            "  }},\n"
        ),
        t_epoch,
        behav_epochs,
        gate_epochs,
        behav_secs,
        gate_secs,
        behav_cycles / behav_secs,
        gate_cycles / gate_secs,
    ));
}

fn telemetry_report(json: &mut String) {
    use r2d3_core::telemetry::RingSink;

    let victim = StageId::new(2, Unit::Exu);
    let epochs = 8usize;

    let make_sys = || {
        let mut sys = System3d::new(&SystemConfig { pipelines: 6, ..Default::default() });
        for p in 0..6 {
            sys.load_program(p, gemv(32, 32, 7).program().clone()).unwrap();
        }
        sys.inject_fault(victim, FaultEffect { bit: 0, stuck: true }).unwrap();
        sys
    };

    // Same scenario, compiled-away NullSink vs a recording RingSink.
    let (null_metrics, null_secs) = time_best(5, || {
        let mut sys = make_sys();
        let mut engine = R2d3Engine::builder().build().unwrap();
        for _ in 0..epochs {
            engine.run_epoch(&mut sys).unwrap();
        }
        engine.metrics()
    });
    let ((ring_metrics, events), ring_secs) = time_best(5, || {
        let mut sys = make_sys();
        let mut engine = R2d3Engine::builder().telemetry(RingSink::new()).build().unwrap();
        for _ in 0..epochs {
            engine.run_epoch(&mut sys).unwrap();
        }
        (engine.metrics(), engine.telemetry().len())
    });

    // The determinism contract, timed: recording must not perturb the
    // engine's observable behavior.
    assert_eq!(null_metrics, ring_metrics, "metrics identical with and without telemetry");
    assert!(events > 0, "the recording run must have captured events");

    let overhead_pct = 100.0 * (ring_secs - null_secs) / null_secs;
    println!(
        "perf telemetry: {epochs} epochs — NullSink {null_secs:.3}s, \
         RingSink {ring_secs:.3}s ({events} events, {overhead_pct:+.1}% overhead)"
    );
    json.push_str(&format!(
        concat!(
            "  \"telemetry\": {{\n",
            "    \"scenario\": \"exu_l2_stuck_at_1_detect_diagnose_repair\",\n",
            "    \"epochs\": {},\n",
            "    \"null_sink_secs\": {:.6},\n",
            "    \"ring_sink_secs\": {:.6},\n",
            "    \"overhead_pct\": {:.2},\n",
            "    \"events_recorded\": {},\n",
            "    \"metrics_identical\": true,\n",
            "    \"detection_latency\": {},\n",
            "    \"replay_count\": {}\n",
            "  }},\n"
        ),
        epochs,
        null_secs,
        ring_secs,
        overhead_pct,
        events,
        ring_metrics.detection_latency.to_json(),
        ring_metrics.replay_count.to_json(),
    ));
}

fn thermal_report(json: &mut String) {
    let fp = Floorplan::opensparc_3d(8);
    let grid = ThermalGrid::new(&fp, &GridConfig { nx: 8, ny: 6, ..Default::default() });
    let mut power = PowerMap::new(&fp);
    for layer in 0..8 {
        for unit in Unit::ALL {
            power.set_block(layer, unit, 0.03);
        }
    }
    let mut perturbed = PowerMap::new(&fp);
    for layer in 0..8 {
        for unit in Unit::ALL {
            perturbed.set_block(layer, unit, if layer % 2 == 0 { 0.033 } else { 0.027 });
        }
    }

    let cold = grid.steady_state_warm(&power, None).expect("cold solve");
    let perturbed_cold = grid.steady_state_warm(&perturbed, None).expect("perturbed cold solve");
    let warm = grid.steady_state_warm(&perturbed, Some(&cold.field)).expect("warm solve");
    let resolve = grid.steady_state_warm(&power, Some(&cold.field)).expect("warm re-solve");

    println!(
        "perf thermal: cold {} sweeps, warm (perturbed power) {} vs {} cold, exact re-solve {}",
        cold.sweeps, warm.sweeps, perturbed_cold.sweeps, resolve.sweeps
    );
    json.push_str(&format!(
        concat!(
            "  \"thermal_warm_start\": {{\n",
            "    \"cold_sweeps\": {},\n",
            "    \"perturbed_cold_sweeps\": {},\n",
            "    \"perturbed_warm_sweeps\": {},\n",
            "    \"exact_resolve_warm_sweeps\": {}\n",
            "  }}\n"
        ),
        cold.sweeps, perturbed_cold.sweeps, warm.sweeps, resolve.sweeps,
    ));
}

fn main() {
    benches();

    let mut json = String::from("{\n");
    campaign_report(&mut json);
    rewritten_netlist_report(&mut json);
    fault_campaign_report(&mut json);
    lifetime_report(&mut json);
    substrate_report(&mut json);
    telemetry_report(&mut json);
    thermal_report(&mut json);
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json");
    std::fs::write(path, &json).expect("write BENCH_perf.json");
    println!("wrote {path}");
    print!("{json}");
}
