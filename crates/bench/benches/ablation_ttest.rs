//! Ablation — the `T_test` trade-off (§III-C / §V-B).
//!
//! "To enhance fault coverage, we can evaluate the underlying hardware
//! for a longer period (higher T_test)… However, using the leftovers for
//! fault detection adds power overhead and there exists a trade-off
//! between test duration/fault coverage ratio and the added power
//! overhead." The paper settles on T_test = 5 k cycles. This harness
//! sweeps the test-window length and reports coverage-within-window vs
//! the leftover-power proxy (test duty × leftover power).

use r2d3_atpg::campaign::{run_campaign, CampaignConfig};
use r2d3_atpg::fault::collapsed_faults;
use r2d3_atpg::report::unit_report;
use r2d3_bench::format::Table;
use r2d3_bench::header;
use r2d3_netlist::stages::{all_stage_netlists, StageSizing};
use r2d3_physical::PhysicalModel;

fn main() {
    header("Ablation", "T_test sweep: coverage within the test window vs leftover power");
    let stages = all_stage_netlists(&StageSizing::default());
    let faults: Vec<_> = stages.iter().map(|s| collapsed_faults(s.netlist())).collect();

    // One long campaign; coverage within a window of W patterns is the
    // fraction of detectable faults whose first detection index < W.
    let cc = CampaignConfig { max_patterns: 1 << 15, seed: 11, threads: 8 };
    let outcomes: Vec<_> =
        stages.iter().zip(&faults).map(|(s, f)| run_campaign(s.netlist(), f, &cc)).collect();

    let mut detectable = 0usize;
    let mut latencies: Vec<usize> = Vec::new();
    for o in &outcomes {
        let r = unit_report("", o);
        detectable += r.detected + r.undetected;
        latencies.extend(o.detected().map(|(_, p)| p));
    }

    let t_epoch = 20_000.0;
    let unit_power_w: f64 = PhysicalModel::table_iii().unit_powers_w().iter().sum();
    let mut t = Table::new(&["T_test (cycles)", "Coverage in window (%)", "Leftover power (mW)"]);
    for window in [50usize, 500, 1_000, 5_000, 10_000, 20_000] {
        let covered = latencies.iter().filter(|&&p| p < window).count();
        let coverage = 100.0 * covered as f64 / detectable.max(1) as f64;
        // Power proxy: one leftover per unit re-executing for T_test of
        // every T_epoch cycles.
        let power_mw = 1000.0 * unit_power_w * (window as f64 / t_epoch).min(1.0);
        t.row(&[format!("{window}"), format!("{coverage:.1}"), format!("{power_mw:.1}")]);
    }
    t.print();
    println!();
    println!(
        "The knee sits near T_test = 5 k cycles — longer windows buy little \
         coverage for linearly growing leftover power, matching the paper's choice."
    );
}
