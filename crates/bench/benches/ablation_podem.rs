//! Ablation — deterministic ATPG cleanup (the PODEM phase).
//!
//! The paper's TetraMAX flow is deterministic; our Fig. 4 campaign uses
//! random patterns for speed. This harness quantifies what the
//! deterministic phase adds: PODEM settles the random-resistant tail,
//! upgrading undetected faults to detected (with a witness vector) or
//! proving them undetectable.

use r2d3_atpg::campaign::CampaignConfig;
use r2d3_atpg::fault::collapsed_faults;
use r2d3_atpg::flow::{run_full_flow, FlowConfig};
use r2d3_bench::format::Table;
use r2d3_bench::header;
use r2d3_netlist::stages::{all_stage_netlists, StageSizing};

fn main() {
    header("Ablation", "random-only vs random+PODEM fault classification per unit");
    let stages = all_stage_netlists(&StageSizing::default());

    let mut t = Table::new(&[
        "Unit",
        "Faults",
        "Random det %",
        "Flow det %",
        "PODEM proved untestable",
        "Aborted",
    ]);
    let mut total_random_det = 0usize;
    let mut total_flow_det = 0usize;
    let mut total_faults = 0usize;
    for sn in &stages {
        let faults = collapsed_faults(sn.netlist());
        let config = FlowConfig {
            random: CampaignConfig { max_patterns: 4096, seed: 17, threads: 8 },
            podem_backtracks: 4_000,
        };
        let random_only = r2d3_atpg::campaign::run_campaign(sn.netlist(), &faults, &config.random);
        let (flow, stats) = run_full_flow(sn.netlist(), &faults, &config);

        let (rd, _, _) = random_only.counts();
        let (fd, _, _) = flow.counts();
        total_random_det += rd;
        total_flow_det += fd;
        total_faults += faults.len();
        t.row(&[
            sn.unit().name().into(),
            format!("{}", faults.len()),
            format!("{:.1}", 100.0 * rd as f64 / faults.len() as f64),
            format!("{:.1}", 100.0 * fd as f64 / faults.len() as f64),
            format!("{}", stats.proven_untestable),
            format!("{}", stats.aborted),
        ]);
    }
    t.print();

    println!();
    println!(
        "Deterministic cleanup lifts detection from {:.1} % to {:.1} % of all faults \
         and converts budget-limited 'undetected' verdicts into proofs — the reason \
         commercial flows (and the paper's coverage numbers) rely on deterministic ATPG.",
        100.0 * total_random_det as f64 / total_faults as f64,
        100.0 * total_flow_det as f64 / total_faults as f64,
    );
}
