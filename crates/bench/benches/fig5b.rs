//! Fig. 5(b) — mean time to failure over 8 years for the four systems.

use r2d3_bench::format::Table;
use r2d3_bench::{fig5_sweep, header};
use r2d3_core::policy::PolicyKind;
use r2d3_isa::kernels::KernelKind;

fn main() {
    header("Fig. 5(b)", "MTTF over 8 years (forward Monte-Carlo, total-loss criterion)");
    let sweep = fig5_sweep(KernelKind::Gemm);

    let mut t =
        Table::new(&["Year", "NoRecon (mo)", "Static (mo)", "R2D3-Lite (mo)", "R2D3-Pro (mo)"]);
    let at = |k: PolicyKind, m: usize| sweep.policy(k).series.mttf_months[m.min(95)];
    for year in 0..=8 {
        let m = if year == 0 { 0 } else { year * 12 - 1 };
        t.row(&[
            format!("{year}"),
            format!("{:.0}", at(PolicyKind::NoRecon, m)),
            format!("{:.0}", at(PolicyKind::Static, m)),
            format!("{:.0}", at(PolicyKind::Lite, m)),
            format!("{:.0}", at(PolicyKind::Pro, m)),
        ]);
    }
    t.print();

    let end = |k: PolicyKind| at(k, 95);
    println!();
    println!(
        "MTTF improvement at 8 years vs NoRecon: Lite {:.2}×  (paper 1.63×), Pro {:.2}×  (paper 2.16×)",
        end(PolicyKind::Lite) / end(PolicyKind::NoRecon),
        end(PolicyKind::Pro) / end(PolicyKind::NoRecon)
    );
    println!(
        "Both R2D3 policies postpone total loss by salvaging stages and slowing \
         wear; our fault model shows Lite ≈ Pro at end of life (the paper's MC \
         separates them further — see EXPERIMENTS.md)."
    );
}
