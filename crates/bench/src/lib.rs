#![warn(missing_docs)]

//! Shared experiment drivers for the per-table / per-figure harnesses.
//!
//! Each `[[bench]]` target in this crate regenerates one table or figure
//! of the paper (`cargo bench -p r2d3-bench --bench fig5a` etc.), printing
//! the paper's reported value next to the measured one. The heavy lifting
//! lives here so the bench binaries stay thin and the drivers are
//! unit-testable.

pub mod fig4;
pub mod fig5;
pub mod format;

pub use fig4::{fig4_campaigns, Fig4Config, Fig4Results};
pub use fig5::{fig5_sweep, fig5a_sweep, quick_lifetime_config, Fig5Results};

/// Prints the standard harness header.
pub fn header(id: &str, what: &str) {
    println!("==================================================================");
    println!("R2D3 reproduction — {id}: {what}");
    println!("==================================================================");
}
