//! Plain-text table formatting for the harness output.

/// A simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| (*s).to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (cells are displayed as given).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            line.push_str(&format!("{:>width$}  ", h, width = widths[i]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols));
        out.push('\n');
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate().take(cols) {
                line.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a measured-vs-paper pair.
#[must_use]
pub fn vs(measured: f64, paper: f64, unit: &str) -> String {
    format!("{measured:.1}{unit} (paper {paper:.1}{unit})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    fn vs_format() {
        assert_eq!(vs(95.5, 96.0, "%"), "95.5% (paper 96.0%)");
    }
}
