//! CI bench smoke: a reduced-budget version of the `perf` harness's two
//! hard performance gates, exiting nonzero (panicking) on violation.
//!
//! - **Campaign**: the incremental collapsed/SIMD engine must classify
//!   every fault identically to the full-re-evaluation oracle (counts,
//!   statuses, applied patterns) and must not regress below a
//!   conservative speedup floor on the reduced budget.
//! - **Lifetime**: the replica-parallel Monte-Carlo must produce a
//!   bit-identical averaged series at 1 and 2 worker threads (the
//!   striped thermal cache must never change results).
//!
//! Thresholds here are deliberately loose relative to `BENCH_perf.json`
//! (shared CI hosts are noisy); the full harness records the honest
//! numbers.

use r2d3_atpg::campaign::{run_campaign, run_campaign_reference, CampaignConfig};
use r2d3_atpg::fault::all_faults;
use r2d3_core::lifetime::{LifetimeConfig, LifetimeSim};
use r2d3_core::policy::PolicyKind;
use r2d3_isa::kernels::KernelKind;
use r2d3_isa::Unit;
use r2d3_netlist::stages::{stage_netlist, StageSizing};
use r2d3_netlist::FaultSim;
use r2d3_thermal::GridConfig;
use std::time::Instant;

/// Minimum incremental-vs-reference speedup tolerated in CI. The full
/// bench targets far higher; this floor only catches real regressions
/// (an incremental path slower than ~1.5x the oracle is broken).
const MIN_CAMPAIGN_SPEEDUP: f64 = 1.5;

fn time<R>(runs: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (out.expect("runs >= 1"), best)
}

fn campaign_smoke() {
    let sn = stage_netlist(Unit::Exu, &StageSizing::default());
    let nl = sn.netlist();
    // Full uncollapsed universe: `run_campaign` collapses internally,
    // the reference simulates every fault, and the status comparison
    // below is the `counts_identical` CI gate.
    let faults = all_faults(nl);
    // Reduced pattern budget: enough blocks for the incremental engine's
    // early exits to matter, small enough for CI.
    let cfg = CampaignConfig { max_patterns: 1024, seed: 1, threads: 1 };

    let (inc, inc_secs) = time(3, || run_campaign(nl, &faults, &cfg));
    let (reference, ref_secs) = time(1, || run_campaign_reference(nl, &faults, &cfg));

    assert_eq!(
        inc.statuses(),
        reference.statuses(),
        "bench smoke: incremental statuses differ from reference (counts_identical=false)"
    );
    assert_eq!(
        inc.patterns_applied(),
        reference.patterns_applied(),
        "bench smoke: applied-pattern counts differ"
    );
    let speedup = ref_secs / inc_secs;
    println!(
        "bench smoke campaign: {} faults, kernel {}, incremental {inc_secs:.3}s, \
         reference {ref_secs:.3}s, {speedup:.2}x",
        faults.len(),
        FaultSim::new(nl).kernel().name(),
    );
    assert!(
        speedup >= MIN_CAMPAIGN_SPEEDUP,
        "bench smoke: incremental path regressed — {speedup:.2}x < {MIN_CAMPAIGN_SPEEDUP}x floor"
    );
}

fn lifetime_smoke() {
    let mk = |threads: usize| LifetimeConfig {
        months: 12,
        replicas: 4,
        threads,
        mttf_trials: 50,
        grid: GridConfig { nx: 8, ny: 6, ..Default::default() },
        ..LifetimeConfig::new(
            PolicyKind::Pro,
            KernelKind::Gemm.core_demand_fraction(),
            KernelKind::Gemm.activity_weight(),
        )
    };
    let (serial, serial_secs) = time(1, || LifetimeSim::new(mk(1)).run().expect("serial run"));
    let (par, par_secs) = time(1, || LifetimeSim::new(mk(2)).run().expect("2-thread run"));
    assert_eq!(
        serial.series, par.series,
        "bench smoke: lifetime series not bit-identical across thread counts"
    );
    println!(
        "bench smoke lifetime: serial {serial_secs:.3}s, 2 threads {par_secs:.3}s, \
         series bit-identical"
    );
}

fn main() {
    campaign_smoke();
    lifetime_smoke();
    println!("bench smoke OK");
}
