//! Driver for the Fig. 5 lifetime sweeps.

use r2d3_core::lifetime::{LifetimeConfig, LifetimeOutcome, LifetimeSim};
use r2d3_core::policy::PolicyKind;
use r2d3_isa::kernels::KernelKind;
use r2d3_thermal::GridConfig;

/// One lifetime outcome per policy, in [`PolicyKind::ALL`] order.
#[derive(Debug, Clone)]
pub struct Fig5Results {
    /// Outcomes for NoRecon, Static, Lite, Pro.
    pub outcomes: Vec<LifetimeOutcome>,
}

impl Fig5Results {
    /// The outcome for one policy.
    ///
    /// # Panics
    ///
    /// Panics if the sweep did not include the policy (it always does).
    #[must_use]
    pub fn policy(&self, kind: PolicyKind) -> &LifetimeOutcome {
        self.outcomes.iter().find(|o| o.policy == kind).expect("sweep covers all policies")
    }
}

/// The default 8-year configuration used by the figure harnesses.
#[must_use]
pub fn quick_lifetime_config(policy: PolicyKind, workload: KernelKind) -> LifetimeConfig {
    LifetimeConfig {
        replicas: 8,
        mttf_trials: 300,
        grid: GridConfig { nx: 8, ny: 6, ..Default::default() },
        ..LifetimeConfig::new(policy, workload.core_demand_fraction(), workload.activity_weight())
    }
}

/// Runs the 8-year lifetime simulation for all four policies.
///
/// # Panics
///
/// Panics if a thermal solve fails (does not happen with the default
/// grid).
#[must_use]
pub fn fig5_sweep(workload: KernelKind) -> Fig5Results {
    sweep_with(workload, true)
}

/// Fig. 5(a)'s pure-aging variant: stochastic hard faults disabled so the
/// ΔVth trajectories show the policies' wear management alone (a dead
/// stage stops aging, which would otherwise freeze the max-ΔVth metric —
/// the paper evaluates the degradation and failure pillars separately).
#[must_use]
pub fn fig5a_sweep(workload: KernelKind) -> Fig5Results {
    sweep_with(workload, false)
}

fn sweep_with(workload: KernelKind, faults: bool) -> Fig5Results {
    let outcomes = PolicyKind::ALL
        .iter()
        .map(|&policy| {
            let mut cfg = quick_lifetime_config(policy, workload);
            if !faults {
                cfg.reliability.base_rate_per_month = 0.0;
                cfg.replicas = 1; // deterministic without fault sampling
            }
            LifetimeSim::new(cfg).run().expect("lifetime simulation")
        })
        .collect();
    Fig5Results { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_orders_policies_on_vth() {
        // Short horizon keeps the test fast; ordering must already hold.
        let mut results = Vec::new();
        for &policy in &PolicyKind::ALL {
            let mut cfg = quick_lifetime_config(policy, KernelKind::Gemm);
            cfg.months = 18;
            cfg.replicas = 2;
            cfg.mttf_trials = 50;
            cfg.reliability.base_rate_per_month = 0.0;
            results.push(LifetimeSim::new(cfg).run().unwrap());
        }
        let vth = |k: PolicyKind| {
            *results.iter().find(|o| o.policy == k).unwrap().series.max_vth.last().unwrap()
        };
        assert!(vth(PolicyKind::Pro) < vth(PolicyKind::Lite));
        assert!(vth(PolicyKind::Lite) < vth(PolicyKind::NoRecon));
    }
}
