//! Driver for the Fig. 4(b)/4(c) fault-coverage campaigns.

use r2d3_atpg::campaign::{run_campaign, CampaignConfig};
use r2d3_atpg::fault::collapsed_faults;
use r2d3_atpg::observe::core_level_campaign_with;
use r2d3_atpg::report::{unit_report, UnitReport};
use r2d3_netlist::stages::{all_stage_netlists, StageSizing};
use r2d3_netlist::ComposeOptions;

/// Campaign sizing for the figure harnesses.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Config {
    /// Netlist sizing (gate budgets per unit).
    pub sizing: StageSizing,
    /// Test-pattern budget (the paper runs 10 M ATPG instructions; the
    /// default here keeps the harness under a minute while preserving the
    /// coverage plateau).
    pub max_patterns: usize,
    /// Worker threads.
    pub threads: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config { sizing: StageSizing::default(), max_patterns: 1 << 14, threads: 8, seed: 7 }
    }
}

/// Per-unit stage-level reports, their aggregate, and the core-level
/// aggregate — everything Fig. 4(b) and 4(c) plot.
#[derive(Debug, Clone)]
pub struct Fig4Results {
    /// One report per unit (stage-boundary observation).
    pub units: Vec<UnitReport>,
    /// Aggregate over all units (the figure's "Total" bar).
    pub total: UnitReport,
    /// Core-boundary observation aggregate (the "Core Level" bar).
    pub core_level: UnitReport,
}

/// Runs both observation models over the five generated unit netlists.
#[must_use]
pub fn fig4_campaigns(config: &Fig4Config) -> Fig4Results {
    let stages = all_stage_netlists(&config.sizing);
    let cc = CampaignConfig {
        max_patterns: config.max_patterns,
        seed: config.seed,
        threads: config.threads,
    };

    let mut units = Vec::new();
    let mut total: Option<UnitReport> = None;
    for sn in &stages {
        let faults = collapsed_faults(sn.netlist());
        let outcome = run_campaign(sn.netlist(), &faults, &cc);
        let report = unit_report(sn.unit().name(), &outcome);
        match &mut total {
            None => total = Some(UnitReport { label: "Total".into(), ..report.clone() }),
            Some(t) => t.merge(&report),
        }
        units.push(report);
    }
    let total = total.expect("five units");

    let netlists: Vec<_> = stages.iter().map(|s| s.netlist()).collect();
    let faults: Vec<_> = netlists.iter().map(|n| collapsed_faults(n)).collect();
    let outcomes = core_level_campaign_with(&netlists, &faults, &cc, &ComposeOptions::core_level())
        .expect("non-empty chain");
    let mut core_level: Option<UnitReport> = None;
    for (sn, outcome) in stages.iter().zip(&outcomes) {
        let report = unit_report(sn.unit().name(), outcome);
        match &mut core_level {
            None => {
                core_level = Some(UnitReport { label: "Core-Level".into(), ..report.clone() });
            }
            Some(t) => t.merge(&report),
        }
    }

    Fig4Results { units, total, core_level: core_level.expect("five units") }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d3_atpg::report::LatencyBucket;

    #[test]
    fn small_campaign_reproduces_stage_vs_core_gap() {
        let config = Fig4Config {
            sizing: StageSizing { gates_per_mm2: 4_000.0, ..Default::default() },
            max_patterns: 4096,
            threads: 4,
            seed: 3,
        };
        let r = fig4_campaigns(&config);
        assert_eq!(r.units.len(), 5);
        // Core-level observability must not beat stage-level (Fig. 4(b)).
        assert!(
            r.core_level.detectable_pct() < r.total.detectable_pct(),
            "core {:.1} vs stage {:.1}",
            r.core_level.detectable_pct(),
            r.total.detectable_pct()
        );
        // And detection within 5k patterns is slower at core level (4(c)).
        assert!(
            r.core_level.cumulative_detected_pct(LatencyBucket::Lt5k)
                < r.total.cumulative_detected_pct(LatencyBucket::Lt5k)
        );
    }
}
