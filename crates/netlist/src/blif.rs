//! BLIF interchange (Berkeley Logic Interchange Format).
//!
//! The generated stage netlists stand in for the paper's synthesized
//! OpenSPARC units; exporting them as BLIF lets downstream users run the
//! academic logic toolchain (ABC, SIS, mockturtle, …) on exactly the
//! circuits the campaigns measure — and import variants back. The writer
//! emits one `.names` cover per gate; the reader accepts the same subset
//! (single-output covers over the primitive functions this crate emits).
//!
//! # Example
//!
//! ```
//! use r2d3_netlist::{blif, NetlistBuilder};
//!
//! # fn main() -> Result<(), r2d3_netlist::blif::ParseBlifError> {
//! let mut b = NetlistBuilder::new();
//! let i = b.inputs(2);
//! let x = b.xor2(i[0], i[1]);
//! b.output(x);
//! let nl = b.finish();
//!
//! let text = blif::write_blif(&nl, "halfadd");
//! let back = blif::parse_blif(&text)?;
//! assert_eq!(back.eval(&[0b01, 0b10])[0] & 0b11, 0b11);
//! # Ok(())
//! # }
//! ```

use crate::builder::NetlistBuilder;
use crate::netlist::{GateKind, NetId, Netlist};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Errors produced while parsing BLIF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBlifError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blif line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseBlifError {}

fn net_name(n: NetId) -> String {
    format!("n{}", n.index())
}

/// Serializes a netlist as BLIF.
///
/// Gates are emitted as `.names` covers; `Mux` gates as the 3-input
/// cover, constants as constant covers.
#[must_use]
pub fn write_blif(netlist: &Netlist, model: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {model}");
    let inputs: Vec<String> = netlist.inputs().map(net_name).collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<String> = netlist.outputs().iter().map(|o| net_name(*o)).collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));

    for gate in netlist.gates() {
        let ins: Vec<String> = gate.inputs.iter().map(|n| net_name(*n)).collect();
        let o = net_name(gate.output);
        match gate.kind {
            GateKind::Buf => {
                let _ = writeln!(out, ".names {} {o}\n1 1", ins[0]);
            }
            GateKind::Not => {
                let _ = writeln!(out, ".names {} {o}\n0 1", ins[0]);
            }
            GateKind::And => {
                let _ = writeln!(out, ".names {} {} {o}\n11 1", ins[0], ins[1]);
            }
            GateKind::Or => {
                let _ = writeln!(out, ".names {} {} {o}\n1- 1\n-1 1", ins[0], ins[1]);
            }
            GateKind::Nand => {
                let _ = writeln!(out, ".names {} {} {o}\n0- 1\n-0 1", ins[0], ins[1]);
            }
            GateKind::Nor => {
                let _ = writeln!(out, ".names {} {} {o}\n00 1", ins[0], ins[1]);
            }
            GateKind::Xor => {
                let _ = writeln!(out, ".names {} {} {o}\n10 1\n01 1", ins[0], ins[1]);
            }
            GateKind::Xnor => {
                let _ = writeln!(out, ".names {} {} {o}\n11 1\n00 1", ins[0], ins[1]);
            }
            GateKind::Mux => {
                // out = sel ? a : b  (inputs: sel, a, b)
                let _ = writeln!(out, ".names {} {} {} {o}\n11- 1\n0-1 1", ins[0], ins[1], ins[2]);
            }
            GateKind::Const0 => {
                let _ = writeln!(out, ".names {o}");
            }
            GateKind::Const1 => {
                let _ = writeln!(out, ".names {o}\n 1");
            }
        }
    }
    out.push_str(".end\n");
    out
}

/// Parses the BLIF subset produced by [`write_blif`]: single-output
/// `.names` covers whose function matches one of this crate's gate
/// primitives.
///
/// # Errors
///
/// Returns [`ParseBlifError`] on malformed input or covers that do not
/// correspond to a supported primitive.
pub fn parse_blif(text: &str) -> Result<Netlist, ParseBlifError> {
    let mut inputs: Vec<&str> = Vec::new();
    let mut outputs: Vec<&str> = Vec::new();
    struct Cover<'a> {
        line: usize,
        ins: Vec<&'a str>,
        out: &'a str,
        rows: Vec<&'a str>,
    }
    let mut covers: Vec<Cover> = Vec::new();

    let mut lines = text.lines().enumerate().peekable();
    while let Some((li, raw)) = lines.next() {
        let line = li + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        if let Some(rest) = stripped.strip_prefix(".inputs") {
            inputs.extend(rest.split_whitespace());
        } else if let Some(rest) = stripped.strip_prefix(".outputs") {
            outputs.extend(rest.split_whitespace());
        } else if let Some(rest) = stripped.strip_prefix(".names") {
            let mut names: Vec<&str> = rest.split_whitespace().collect();
            let out = names
                .pop()
                .ok_or_else(|| ParseBlifError { line, message: ".names needs a target".into() })?;
            let mut rows = Vec::new();
            while let Some((_, next)) = lines.peek() {
                let t = next.split('#').next().unwrap_or("").trim();
                if t.is_empty() || t.starts_with('.') {
                    break;
                }
                rows.push(lines.next().expect("peeked").1.trim());
            }
            covers.push(Cover { line, ins: names, out, rows });
        } else if stripped.starts_with(".model") || stripped.starts_with(".end") {
            // metadata / terminator
        } else {
            return Err(ParseBlifError {
                line,
                message: format!("unsupported construct `{stripped}`"),
            });
        }
    }

    // Build: map names to nets; inputs first, then each cover in order
    // (the writer emits topological order; we require it).
    let mut b = NetlistBuilder::new();
    let mut map: HashMap<&str, NetId> = HashMap::new();
    for name in &inputs {
        map.insert(name, b.input());
    }
    for cover in &covers {
        let line = cover.line;
        let resolve = |map: &HashMap<&str, NetId>, n: &str| {
            map.get(n).copied().ok_or_else(|| ParseBlifError {
                line,
                message: format!("net `{n}` used before definition"),
            })
        };
        let kind = classify_cover(&cover.rows, cover.ins.len()).ok_or_else(|| ParseBlifError {
            line,
            message: format!("unsupported cover {:?}", cover.rows),
        })?;
        let net = match kind {
            GateKind::Const0 | GateKind::Const1 => b.gate(kind, &[]),
            _ => {
                let ins: Vec<NetId> =
                    cover.ins.iter().map(|n| resolve(&map, n)).collect::<Result<_, _>>()?;
                b.gate(kind, &ins)
            }
        };
        if map.insert(cover.out, net).is_some() {
            // A redefined name silently orphans the earlier cover's net,
            // which the IR validator cannot attribute to a source line —
            // report it here with one.
            return Err(ParseBlifError {
                line,
                message: format!("net `{}` driven more than once", cover.out),
            });
        }
    }
    for name in &outputs {
        let net = map.get(name).copied().ok_or_else(|| ParseBlifError {
            line: 0,
            message: format!("output `{name}` never defined"),
        })?;
        b.output(net);
    }
    let netlist = b.finish();
    // Anything the line-based checks above cannot see (dangling nets,
    // arity or ordering damage) is caught by the structural validator,
    // so a successful parse always yields a valid IR netlist.
    crate::ir::validate(&netlist)
        .map_err(|e| ParseBlifError { line: 0, message: format!("invalid netlist: {e}") })?;
    Ok(netlist)
}

/// Maps a cover's rows back to a gate primitive.
fn classify_cover(rows: &[&str], arity: usize) -> Option<GateKind> {
    let rows: Vec<&str> = rows.iter().map(|r| r.trim()).collect();
    match (arity, rows.as_slice()) {
        (0, []) => Some(GateKind::Const0),
        (0, ["1"]) => Some(GateKind::Const1),
        (1, ["1 1"]) => Some(GateKind::Buf),
        (1, ["0 1"]) => Some(GateKind::Not),
        (2, ["11 1"]) => Some(GateKind::And),
        (2, ["1- 1", "-1 1"]) | (2, ["-1 1", "1- 1"]) => Some(GateKind::Or),
        (2, ["0- 1", "-0 1"]) | (2, ["-0 1", "0- 1"]) => Some(GateKind::Nand),
        (2, ["00 1"]) => Some(GateKind::Nor),
        (2, ["10 1", "01 1"]) | (2, ["01 1", "10 1"]) => Some(GateKind::Xor),
        (2, ["11 1", "00 1"]) | (2, ["00 1", "11 1"]) => Some(GateKind::Xnor),
        (3, ["11- 1", "0-1 1"]) | (3, ["0-1 1", "11- 1"]) => Some(GateKind::Mux),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::{stage_netlist, StageSizing};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_preserves_function_on_stage_netlists() {
        let sizing = StageSizing { gates_per_mm2: 1_000.0, ..Default::default() };
        for unit in [r2d3_isa::Unit::Exu, r2d3_isa::Unit::Tlu] {
            let sn = stage_netlist(unit, &sizing);
            let nl = sn.netlist();
            let text = write_blif(nl, unit.name());
            let back = parse_blif(&text).unwrap();
            assert_eq!(back.num_inputs(), nl.num_inputs());
            assert_eq!(back.outputs().len(), nl.outputs().len());

            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..8 {
                let inputs: Vec<u64> = (0..nl.num_inputs()).map(|_| rng.gen()).collect();
                assert_eq!(back.eval(&inputs), nl.eval(&inputs), "{unit} function changed");
            }
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = ".model x\n.inputs a\n.outputs z\n.names a z\n11 1\n.end\n";
        let e = parse_blif(bad).unwrap_err();
        assert_eq!(e.line, 4, "{e}");

        let undef = ".model x\n.inputs a\n.outputs z\n.names q z\n1 1\n.end\n";
        assert!(parse_blif(undef).unwrap_err().message.contains("before definition"));
    }

    #[test]
    fn duplicate_drivers_are_typed_errors() {
        let twice = ".model x\n.inputs a b\n.outputs z\n\
                     .names a b z\n11 1\n.names a b z\n00 1\n.end\n";
        let e = parse_blif(twice).unwrap_err();
        assert_eq!(e.line, 6, "{e}");
        assert!(e.message.contains("driven more than once"), "{e}");

        // Redefining an input is also a second driver.
        let input_redef = ".model x\n.inputs a b\n.outputs a\n.names b a\n1 1\n.end\n";
        let e = parse_blif(input_redef).unwrap_err();
        assert!(e.message.contains("driven more than once"), "{e}");
    }

    #[test]
    fn parsed_netlists_pass_ir_validation() {
        let sizing = StageSizing { gates_per_mm2: 1_000.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Ffu, &sizing);
        let text = write_blif(sn.netlist(), "ffu");
        let back = parse_blif(&text).unwrap();
        crate::ir::validate(&back).unwrap();
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text =
            "# header\n.model m\n.inputs a b\n\n.outputs z\n.names a b z # and\n11 1\n.end\n";
        let nl = parse_blif(text).unwrap();
        assert_eq!(nl.eval(&[0b11, 0b01])[0] & 0b11, 0b01);
    }
}
