//! Importer for Yosys' JSON netlist format (`write_json`).
//!
//! Like the BLIF exporter in [`crate::blif`], the parser is hand-rolled
//! (no serde-JSON dependency): a small recursive-descent JSON reader
//! with line tracking feeds a cell mapper that understands the Yosys
//! single-bit cell library (`$_AND_`, `$_NOT_`, `$_MUX_`, …) and the
//! common word-level cells (`$and`, `$not`, `$mux`, `$reduce_*`, …).
//! The result is a validated, topologically numbered [`Netlist`] ready
//! for the fault simulator and the rewrite pipeline.
//!
//! Semantics notes:
//!
//! * Yosys `$_MUX_` / `$mux` compute `Y = S ? B : A`; this crate's
//!   [`GateKind::Mux`] computes `sel ? a : b`, so pins map `S→sel`,
//!   `B→a`, `A→b`.
//! * Constant bits `"0"`/`"1"` become shared `Const0`/`Const1` gates
//!   recorded in the redundancy ground truth; `"x"` (don't-care) is
//!   imported as constant 0.
//! * Only combinational cells are accepted — flops (`$dff`, `$_DFF_*`)
//!   are a typed error, matching the combinational-core scope of the
//!   stage substrate.

use crate::ir;
use crate::netlist::{Gate, GateKind, NetId, Netlist};
use std::collections::HashMap;
use std::fmt;

/// Errors from parsing or mapping a Yosys JSON netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YosysJsonError {
    /// 1-based line in the JSON text (0 when the problem is structural
    /// rather than syntactic).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for YosysJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "yosys json: {}", self.message)
        } else {
            write!(f, "yosys json line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for YosysJsonError {}

/// A combinational core imported from Yosys JSON.
#[derive(Debug, Clone)]
pub struct ImportedCore {
    /// Module name in the JSON.
    pub name: String,
    /// The validated netlist (inputs first, gates topologically
    /// ordered and numbered).
    pub netlist: Netlist,
    /// Input ports in declaration order, as `(name, width)`.
    pub input_ports: Vec<(String, usize)>,
    /// Output ports in declaration order, as `(name, width)`.
    pub output_ports: Vec<(String, usize)>,
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (order-preserving objects, line-tracked errors).
// ---------------------------------------------------------------------------

enum Json {
    Null,
    /// Payload unused: the importer never consumes JSON booleans.
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser { bytes: text.as_bytes(), pos: 0, line: 1 }
    }

    fn error(&self, message: impl Into<String>) -> YosysJsonError {
        YosysJsonError { line: self.line, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), YosysJsonError> {
        self.skip_ws();
        match self.bump() {
            Some(b) if b == byte => Ok(()),
            Some(b) => {
                Err(self.error(format!("expected `{}`, found `{}`", byte as char, b as char)))
            }
            None => Err(self.error(format!("expected `{}`, found end of input", byte as char))),
        }
    }

    fn parse_value(&mut self) -> Result<Json, YosysJsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool),
            Some(b'f') => self.parse_literal("false", Json::Bool),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.error(format!("unexpected character `{}`", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, word: &str, value: Json) -> Result<Json, YosysJsonError> {
        for expected in word.bytes() {
            match self.bump() {
                Some(b) if b == expected => {}
                _ => return Err(self.error(format!("invalid literal (expected `{word}`)"))),
            }
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Json, YosysJsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, YosysJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(byte) => {
                    // Re-assemble UTF-8 sequences byte by byte.
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let mut buf = vec![byte];
                        while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                            buf.push(self.bump().expect("peeked"));
                        }
                        out.push_str(
                            std::str::from_utf8(&buf)
                                .map_err(|_| self.error("invalid UTF-8 in string"))?,
                        );
                    }
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, YosysJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, YosysJsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(entries)),
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cell mapping.
// ---------------------------------------------------------------------------

/// One resolved connection bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BitRef {
    /// Yosys bit index.
    Wire(u64),
    Const(bool),
}

fn structural(message: impl Into<String>) -> YosysJsonError {
    YosysJsonError { line: 0, message: message.into() }
}

fn parse_bit(value: &Json, cell: &str) -> Result<BitRef, YosysJsonError> {
    match value {
        Json::Num(n) => Ok(BitRef::Wire(*n as u64)),
        Json::Str(s) => match s.as_str() {
            "0" => Ok(BitRef::Const(false)),
            "1" => Ok(BitRef::Const(true)),
            // Don't-care: any constant is a legal implementation.
            "x" | "z" => Ok(BitRef::Const(false)),
            other => Err(structural(format!("cell `{cell}`: unsupported bit literal `{other}`"))),
        },
        _ => Err(structural(format!("cell `{cell}`: connection bit must be number or string"))),
    }
}

struct CellConn {
    name: String,
    kind: String,
    /// Port name → resolved bits, in JSON order.
    ports: Vec<(String, Vec<BitRef>)>,
}

impl CellConn {
    fn port(&self, name: &str) -> Result<&[BitRef], YosysJsonError> {
        self.ports.iter().find(|(p, _)| p == name).map(|(_, bits)| bits.as_slice()).ok_or_else(
            || structural(format!("cell `{}` ({}): missing port `{name}`", self.name, self.kind)),
        )
    }

    fn single(&self, name: &str) -> Result<BitRef, YosysJsonError> {
        let bits = self.port(name)?;
        if bits.len() != 1 {
            return Err(structural(format!(
                "cell `{}` ({}): port `{name}` must be 1 bit wide, is {}",
                self.name,
                self.kind,
                bits.len()
            )));
        }
        Ok(bits[0])
    }
}

/// Builder that allocates nets in emission order, which keeps the gate
/// list topologically ordered *and* numbered (every output above its
/// inputs — the fault simulator's packing invariant).
struct CoreBuilder {
    next_net: u32,
    gates: Vec<Gate>,
    redundant: Vec<(NetId, bool)>,
    const_nets: [Option<NetId>; 2],
    bit_nets: HashMap<u64, NetId>,
}

impl CoreBuilder {
    fn alloc(&mut self) -> NetId {
        let net = NetId(self.next_net);
        self.next_net += 1;
        net
    }

    fn const_net(&mut self, value: bool) -> NetId {
        if let Some(net) = self.const_nets[usize::from(value)] {
            return net;
        }
        let net = self.alloc();
        let kind = if value { GateKind::Const1 } else { GateKind::Const0 };
        self.gates.push(Gate { kind, inputs: vec![], output: net });
        self.redundant.push((net, value));
        self.const_nets[usize::from(value)] = Some(net);
        net
    }

    fn bit(&mut self, bit: BitRef, cell: &str) -> Result<NetId, YosysJsonError> {
        match bit {
            BitRef::Const(v) => Ok(self.const_net(v)),
            BitRef::Wire(w) => self.bit_nets.get(&w).copied().ok_or_else(|| {
                structural(format!("cell `{cell}`: bit {w} has no driver and is not an input"))
            }),
        }
    }

    fn emit(&mut self, kind: GateKind, inputs: Vec<NetId>) -> NetId {
        let out = self.alloc();
        self.gates.push(Gate { kind, inputs, output: out });
        out
    }

    fn define(&mut self, bit: u64, net: NetId, cell: &str) -> Result<(), YosysJsonError> {
        if self.bit_nets.insert(bit, net).is_some() {
            return Err(structural(format!("cell `{cell}`: bit {bit} driven more than once")));
        }
        Ok(())
    }
}

/// Maps one cell into gates. `CoreBuilder::bit` resolves reads;
/// produced bits are registered via `define`.
fn emit_cell(builder: &mut CoreBuilder, cell: &CellConn) -> Result<(), YosysJsonError> {
    let name = cell.name.as_str();
    let unary = |kind: GateKind| -> Result<(Vec<BitRef>, Vec<BitRef>, GateKind), YosysJsonError> {
        Ok((cell.port("A")?.to_vec(), cell.port("Y")?.to_vec(), kind))
    };
    match cell.kind.as_str() {
        // Single-bit gate library.
        "$_BUF_" | "$_NOT_" => {
            let kind = if cell.kind == "$_BUF_" { GateKind::Buf } else { GateKind::Not };
            let a = builder.bit(cell.single("A")?, name)?;
            let out = builder.emit(kind, vec![a]);
            bind_output(builder, cell.single("Y")?, out, name)?;
        }
        "$_AND_" | "$_OR_" | "$_XOR_" | "$_XNOR_" | "$_NAND_" | "$_NOR_" => {
            let kind = match cell.kind.as_str() {
                "$_AND_" => GateKind::And,
                "$_OR_" => GateKind::Or,
                "$_XOR_" => GateKind::Xor,
                "$_XNOR_" => GateKind::Xnor,
                "$_NAND_" => GateKind::Nand,
                _ => GateKind::Nor,
            };
            let a = builder.bit(cell.single("A")?, name)?;
            let b = builder.bit(cell.single("B")?, name)?;
            let out = builder.emit(kind, vec![a, b]);
            bind_output(builder, cell.single("Y")?, out, name)?;
        }
        "$_MUX_" => {
            // Yosys: Y = S ? B : A. Ours: Mux(sel, a, b) = sel ? a : b.
            let s = builder.bit(cell.single("S")?, name)?;
            let a = builder.bit(cell.single("A")?, name)?;
            let b = builder.bit(cell.single("B")?, name)?;
            let out = builder.emit(GateKind::Mux, vec![s, b, a]);
            bind_output(builder, cell.single("Y")?, out, name)?;
        }
        // Word-level cells, mapped bitwise with zero extension.
        "$buf" | "$not" => {
            let (a, y, kind) =
                unary(if cell.kind == "$buf" { GateKind::Buf } else { GateKind::Not })?;
            for (i, &ybit) in y.iter().enumerate() {
                let abit = a.get(i).copied().unwrap_or(BitRef::Const(false));
                let an = builder.bit(abit, name)?;
                let out = builder.emit(kind, vec![an]);
                bind_output(builder, ybit, out, name)?;
            }
        }
        "$and" | "$or" | "$xor" | "$xnor" => {
            let kind = match cell.kind.as_str() {
                "$and" => GateKind::And,
                "$or" => GateKind::Or,
                "$xor" => GateKind::Xor,
                _ => GateKind::Xnor,
            };
            let a = cell.port("A")?.to_vec();
            let b = cell.port("B")?.to_vec();
            let y = cell.port("Y")?.to_vec();
            for (i, &ybit) in y.iter().enumerate() {
                let abit = a.get(i).copied().unwrap_or(BitRef::Const(false));
                let bbit = b.get(i).copied().unwrap_or(BitRef::Const(false));
                let an = builder.bit(abit, name)?;
                let bn = builder.bit(bbit, name)?;
                let out = builder.emit(kind, vec![an, bn]);
                bind_output(builder, ybit, out, name)?;
            }
        }
        "$mux" => {
            let s = builder.bit(cell.single("S")?, name)?;
            let a = cell.port("A")?.to_vec();
            let b = cell.port("B")?.to_vec();
            let y = cell.port("Y")?.to_vec();
            for (i, &ybit) in y.iter().enumerate() {
                let abit = a.get(i).copied().unwrap_or(BitRef::Const(false));
                let bbit = b.get(i).copied().unwrap_or(BitRef::Const(false));
                let an = builder.bit(abit, name)?;
                let bn = builder.bit(bbit, name)?;
                // Y = S ? B : A
                let out = builder.emit(GateKind::Mux, vec![s, bn, an]);
                bind_output(builder, ybit, out, name)?;
            }
        }
        "$reduce_and" | "$reduce_or" | "$reduce_xor" | "$reduce_bool" => {
            let kind = match cell.kind.as_str() {
                "$reduce_and" => GateKind::And,
                "$reduce_xor" => GateKind::Xor,
                _ => GateKind::Or,
            };
            let a = cell.port("A")?.to_vec();
            let y = cell.port("Y")?.to_vec();
            let mut acc = builder.bit(a.first().copied().unwrap_or(BitRef::Const(false)), name)?;
            for &abit in a.iter().skip(1) {
                let an = builder.bit(abit, name)?;
                acc = builder.emit(kind, vec![acc, an]);
            }
            // Single-bit reduction result; upper Y bits are zero.
            let first = *y.first().ok_or_else(|| {
                structural(format!("cell `{name}` ({}): empty Y port", cell.kind))
            })?;
            // Reductions of a single wire still need a gate so the Y bit
            // has a driver of its own.
            if a.len() <= 1 {
                acc = builder.emit(GateKind::Buf, vec![acc]);
            }
            bind_output(builder, first, acc, name)?;
            for &ybit in y.iter().skip(1) {
                let zero = builder.const_net(false);
                let out = builder.emit(GateKind::Buf, vec![zero]);
                bind_output(builder, ybit, out, name)?;
            }
        }
        other if other.starts_with("$_DFF") || other.starts_with("$dff") || other == "$ff" => {
            return Err(structural(format!(
                "cell `{name}`: sequential cell `{other}` — only combinational cores import"
            )));
        }
        other => {
            return Err(structural(format!("cell `{name}`: unsupported cell type `{other}`")));
        }
    }
    Ok(())
}

fn bind_output(
    builder: &mut CoreBuilder,
    ybit: BitRef,
    net: NetId,
    cell: &str,
) -> Result<(), YosysJsonError> {
    match ybit {
        BitRef::Wire(w) => builder.define(w, net, cell),
        BitRef::Const(_) => {
            Err(structural(format!("cell `{cell}`: output pin tied to a constant")))
        }
    }
}

/// Which wire bits a cell drives (its Y port), used for dependency
/// ordering before emission.
fn driven_bits(cell: &CellConn) -> Vec<u64> {
    cell.ports
        .iter()
        .filter(|(p, _)| p == "Y")
        .flat_map(|(_, bits)| bits.iter())
        .filter_map(|b| match b {
            BitRef::Wire(w) => Some(*w),
            BitRef::Const(_) => None,
        })
        .collect()
}

fn read_bits(cell: &CellConn) -> Vec<u64> {
    cell.ports
        .iter()
        .filter(|(p, _)| p != "Y")
        .flat_map(|(_, bits)| bits.iter())
        .filter_map(|b| match b {
            BitRef::Wire(w) => Some(*w),
            BitRef::Const(_) => None,
        })
        .collect()
}

/// Parses Yosys `write_json` output into a validated combinational
/// netlist.
///
/// `top` selects the module to import; with `None` the JSON must
/// contain exactly one module. Input ports become primary inputs in
/// declaration order (bit 0 of the first port is net 0), cells are
/// topologically sorted and mapped to gates, and output ports become
/// primary outputs. The result always passes [`ir::validate`].
///
/// # Errors
///
/// Returns a [`YosysJsonError`] for JSON syntax problems (with line
/// numbers), unsupported or sequential cells, undriven or
/// multiply-driven bits, combinational cycles, and any residual
/// structural violation found by the IR validator.
pub fn parse_yosys_json(text: &str, top: Option<&str>) -> Result<ImportedCore, YosysJsonError> {
    let root = JsonParser::new(text).parse_value()?;
    let modules = root
        .get("modules")
        .and_then(Json::as_obj)
        .ok_or_else(|| structural("missing `modules` object"))?;
    let (module_name, module) = match top {
        Some(name) => modules
            .iter()
            .find(|(k, _)| k == name)
            .ok_or_else(|| structural(format!("module `{name}` not found")))?,
        None => {
            if modules.len() != 1 {
                let names: Vec<&str> = modules.iter().map(|(k, _)| k.as_str()).collect();
                return Err(structural(format!(
                    "JSON has {} modules ({}); pick one with --top",
                    modules.len(),
                    names.join(", ")
                )));
            }
            &modules[0]
        }
    };

    // Ports, in declaration order.
    let ports = module.get("ports").and_then(Json::as_obj).unwrap_or(&[]);
    let mut input_ports: Vec<(String, usize)> = Vec::new();
    let mut output_ports: Vec<(String, usize)> = Vec::new();
    let mut input_bits: Vec<u64> = Vec::new();
    let mut output_bits: Vec<Vec<BitRef>> = Vec::new();
    for (port_name, port) in ports {
        let direction = port
            .get("direction")
            .and_then(Json::as_str)
            .ok_or_else(|| structural(format!("port `{port_name}`: missing direction")))?;
        let bits = port
            .get("bits")
            .and_then(Json::as_arr)
            .ok_or_else(|| structural(format!("port `{port_name}`: missing bits")))?;
        let resolved: Vec<BitRef> =
            bits.iter().map(|b| parse_bit(b, port_name)).collect::<Result<_, _>>()?;
        match direction {
            "input" => {
                input_ports.push((port_name.clone(), resolved.len()));
                for bit in resolved {
                    match bit {
                        BitRef::Wire(w) => input_bits.push(w),
                        BitRef::Const(_) => {
                            return Err(structural(format!(
                                "port `{port_name}`: input bit tied to a constant"
                            )))
                        }
                    }
                }
            }
            "output" => {
                output_ports.push((port_name.clone(), resolved.len()));
                output_bits.push(resolved);
            }
            "inout" => {
                return Err(structural(format!("port `{port_name}`: inout ports unsupported")))
            }
            other => {
                return Err(structural(format!("port `{port_name}`: unknown direction `{other}`")))
            }
        }
    }

    // Cells, resolved but not yet ordered.
    let cells_json = module.get("cells").and_then(Json::as_obj).unwrap_or(&[]);
    let mut cells: Vec<CellConn> = Vec::with_capacity(cells_json.len());
    for (cell_name, cell) in cells_json {
        let kind = cell
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| structural(format!("cell `{cell_name}`: missing type")))?
            .to_string();
        let connections = cell.get("connections").and_then(Json::as_obj).unwrap_or(&[]);
        let mut ports: Vec<(String, Vec<BitRef>)> = Vec::with_capacity(connections.len());
        for (port_name, bits) in connections {
            let bits = bits.as_arr().ok_or_else(|| {
                structural(format!("cell `{cell_name}`: port `{port_name}` bits must be an array"))
            })?;
            let resolved: Vec<BitRef> =
                bits.iter().map(|b| parse_bit(b, cell_name)).collect::<Result<_, _>>()?;
            ports.push((port_name.clone(), resolved));
        }
        cells.push(CellConn { name: cell_name.clone(), kind, ports });
    }

    // Kahn over cell→cell dependencies; deterministic (declaration
    // order seeds and FIFO processing).
    let mut bit_driver: HashMap<u64, u32> = HashMap::new();
    for (ci, cell) in cells.iter().enumerate() {
        for bit in driven_bits(cell) {
            if input_bits.contains(&bit) {
                return Err(structural(format!("cell `{}`: drives input bit {bit}", cell.name)));
            }
            if bit_driver.insert(bit, ci as u32).is_some() {
                return Err(structural(format!(
                    "cell `{}`: bit {bit} driven more than once",
                    cell.name
                )));
            }
        }
    }
    let mut pending: Vec<u32> = vec![0; cells.len()];
    let mut readers: Vec<Vec<u32>> = vec![Vec::new(); cells.len()];
    for (ci, cell) in cells.iter().enumerate() {
        for bit in read_bits(cell) {
            if let Some(&driver) = bit_driver.get(&bit) {
                pending[ci] += 1;
                readers[driver as usize].push(ci as u32);
            }
        }
    }
    let mut queue: Vec<u32> =
        (0..cells.len() as u32).filter(|&ci| pending[ci as usize] == 0).collect();
    let mut order: Vec<usize> = Vec::with_capacity(cells.len());
    let mut head = 0;
    while head < queue.len() {
        let ci = queue[head] as usize;
        head += 1;
        order.push(ci);
        for &reader in &readers[ci] {
            pending[reader as usize] -= 1;
            if pending[reader as usize] == 0 {
                queue.push(reader);
            }
        }
    }
    if order.len() != cells.len() {
        let stuck = cells
            .iter()
            .enumerate()
            .find(|(ci, _)| pending[*ci] > 0)
            .map(|(_, c)| c.name.clone())
            .unwrap_or_default();
        return Err(structural(format!("combinational cycle through cell `{stuck}`")));
    }

    // Emission: inputs first, then cells in topological order.
    let mut builder = CoreBuilder {
        next_net: 0,
        gates: Vec::new(),
        redundant: Vec::new(),
        const_nets: [None, None],
        bit_nets: HashMap::with_capacity(input_bits.len() + cells.len()),
    };
    for &bit in &input_bits {
        let net = builder.alloc();
        if builder.bit_nets.insert(bit, net).is_some() {
            return Err(structural(format!("input bit {bit} appears in two ports")));
        }
    }
    let num_inputs = builder.next_net as usize;
    for &ci in &order {
        emit_cell(&mut builder, &cells[ci])?;
    }
    let mut outputs: Vec<NetId> = Vec::new();
    for bits in &output_bits {
        for &bit in bits {
            let net = builder.bit(bit, "<output port>")?;
            outputs.push(net);
        }
    }

    let netlist = Netlist::from_parts(
        builder.next_net as usize,
        num_inputs,
        builder.gates,
        outputs,
        builder.redundant,
    );
    ir::validate(&netlist)
        .map_err(|e| structural(format!("imported netlist failed validation: {e}")))?;
    Ok(ImportedCore { name: module_name.clone(), netlist, input_ports, output_ports })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"{
      "creator": "Yosys test fixture",
      "modules": {
        "adder1": {
          "ports": {
            "a": { "direction": "input", "bits": [2] },
            "b": { "direction": "input", "bits": [3] },
            "cin": { "direction": "input", "bits": [4] },
            "sum": { "direction": "output", "bits": [5] },
            "cout": { "direction": "output", "bits": [6] }
          },
          "cells": {
            "x1": { "type": "$_XOR_", "connections": { "A": [2], "B": [3], "Y": [7] } },
            "s":  { "type": "$_XOR_", "connections": { "A": [7], "B": [4], "Y": [5] } },
            "a1": { "type": "$_AND_", "connections": { "A": [2], "B": [3], "Y": [8] } },
            "a2": { "type": "$_AND_", "connections": { "A": [7], "B": [4], "Y": [9] } },
            "c":  { "type": "$_OR_",  "connections": { "A": [8], "B": [9], "Y": [6] } }
          }
        }
      }
    }"#;

    #[test]
    fn imports_full_adder() {
        let core = parse_yosys_json(SMALL, None).unwrap();
        assert_eq!(core.name, "adder1");
        assert_eq!(core.netlist.num_inputs(), 3);
        assert_eq!(core.netlist.outputs().len(), 2);
        assert_eq!(core.netlist.num_gates(), 5);
        // Exhaustive check against the full-adder truth table.
        let a = 0b11110000u64;
        let b = 0b11001100u64;
        let cin = 0b10101010u64;
        let out = core.netlist.eval(&[a, b, cin]);
        let sum = a ^ b ^ cin;
        let cout = (a & b) | ((a ^ b) & cin);
        assert_eq!(out[0] & 0xff, sum & 0xff);
        assert_eq!(out[1] & 0xff, cout & 0xff);
    }

    #[test]
    fn cells_out_of_order_are_sorted() {
        // Same adder with cells listed in reverse dependency order.
        let scrambled = r#"{
          "modules": { "m": {
            "ports": {
              "a": { "direction": "input", "bits": [2] },
              "b": { "direction": "input", "bits": [3] },
              "y": { "direction": "output", "bits": [4] }
            },
            "cells": {
              "second": { "type": "$_NOT_", "connections": { "A": [5], "Y": [4] } },
              "first":  { "type": "$_AND_", "connections": { "A": [2], "B": [3], "Y": [5] } }
            }
          } }
        }"#;
        let core = parse_yosys_json(scrambled, None).unwrap();
        let out = core.netlist.eval(&[0b1100, 0b1010]);
        assert_eq!(out[0] & 0xf, !(0b1100u64 & 0b1010) & 0xf, "nand via and+not");
    }

    #[test]
    fn mux_pin_order_follows_yosys_semantics() {
        // Y = S ? B : A.
        let text = r#"{
          "modules": { "m": {
            "ports": {
              "s": { "direction": "input", "bits": [2] },
              "a": { "direction": "input", "bits": [3] },
              "b": { "direction": "input", "bits": [4] },
              "y": { "direction": "output", "bits": [5] }
            },
            "cells": {
              "m0": { "type": "$_MUX_", "connections": { "S": [2], "A": [3], "B": [4], "Y": [5] } }
            }
          } }
        }"#;
        let core = parse_yosys_json(text, None).unwrap();
        let s = 0b10u64;
        let a = 0b01u64;
        let b = 0b10u64;
        let out = core.netlist.eval(&[s, a, b]);
        // lane0: s=0 -> A=1; lane1: s=1 -> B=1.
        assert_eq!(out[0] & 0b11, 0b11);
    }

    #[test]
    fn constant_bits_become_redundant_consts() {
        let text = r#"{
          "modules": { "m": {
            "ports": {
              "a": { "direction": "input", "bits": [2] },
              "y": { "direction": "output", "bits": [3] }
            },
            "cells": {
              "g": { "type": "$_AND_", "connections": { "A": [2], "B": ["1"], "Y": [3] } }
            }
          } }
        }"#;
        let core = parse_yosys_json(text, None).unwrap();
        assert_eq!(core.netlist.redundant_constants().len(), 1);
        let out = core.netlist.eval(&[0b10]);
        assert_eq!(out[0] & 0b11, 0b10);
    }

    #[test]
    fn word_level_cells_map_bitwise() {
        let text = r#"{
          "modules": { "m": {
            "ports": {
              "a": { "direction": "input", "bits": [2, 3] },
              "b": { "direction": "input", "bits": [4, 5] },
              "y": { "direction": "output", "bits": [6, 7] },
              "r": { "direction": "output", "bits": [8] }
            },
            "cells": {
              "w": { "type": "$xor", "connections": { "A": [2, 3], "B": [4, 5], "Y": [6, 7] } },
              "red": { "type": "$reduce_or", "connections": { "A": [6, 7], "Y": [8] } }
            }
          } }
        }"#;
        let core = parse_yosys_json(text, None).unwrap();
        let out = core.netlist.eval(&[0b1100, 0b1010, 0b0110, 0b0101]);
        assert_eq!(out[0] & 0xf, (0b1100 ^ 0b0110) & 0xf);
        assert_eq!(out[1] & 0xf, (0b1010 ^ 0b0101) & 0xf);
        assert_eq!(out[2] & 0xf, ((0b1100 ^ 0b0110) | (0b1010 ^ 0b0101)) & 0xf);
    }

    #[test]
    fn rejects_multiple_drivers() {
        let text = r#"{
          "modules": { "m": {
            "ports": {
              "a": { "direction": "input", "bits": [2] },
              "y": { "direction": "output", "bits": [3] }
            },
            "cells": {
              "g1": { "type": "$_NOT_", "connections": { "A": [2], "Y": [3] } },
              "g2": { "type": "$_BUF_", "connections": { "A": [2], "Y": [3] } }
            }
          } }
        }"#;
        let err = parse_yosys_json(text, None).unwrap_err();
        assert!(err.message.contains("driven more than once"), "{err}");
    }

    #[test]
    fn rejects_cycle() {
        let text = r#"{
          "modules": { "m": {
            "ports": {
              "a": { "direction": "input", "bits": [2] },
              "y": { "direction": "output", "bits": [3] }
            },
            "cells": {
              "g1": { "type": "$_AND_", "connections": { "A": [2], "B": [4], "Y": [3] } },
              "g2": { "type": "$_BUF_", "connections": { "A": [3], "Y": [4] } }
            }
          } }
        }"#;
        let err = parse_yosys_json(text, None).unwrap_err();
        assert!(err.message.contains("cycle"), "{err}");
    }

    #[test]
    fn rejects_sequential_cells() {
        let text = r#"{
          "modules": { "m": {
            "ports": {
              "clk": { "direction": "input", "bits": [2] },
              "d": { "direction": "input", "bits": [3] },
              "q": { "direction": "output", "bits": [4] }
            },
            "cells": {
              "ff": { "type": "$_DFF_P_", "connections": { "C": [2], "D": [3], "Q": [4] } }
            }
          } }
        }"#;
        let err = parse_yosys_json(text, None).unwrap_err();
        assert!(err.message.contains("combinational"), "{err}");
    }

    #[test]
    fn rejects_undriven_bit() {
        let text = r#"{
          "modules": { "m": {
            "ports": {
              "a": { "direction": "input", "bits": [2] },
              "y": { "direction": "output", "bits": [3] }
            },
            "cells": {
              "g": { "type": "$_AND_", "connections": { "A": [2], "B": [9], "Y": [3] } }
            }
          } }
        }"#;
        let err = parse_yosys_json(text, None).unwrap_err();
        assert!(err.message.contains("no driver"), "{err}");
    }

    #[test]
    fn json_syntax_errors_carry_line_numbers() {
        let err = parse_yosys_json("{\n  \"modules\": {\n  oops\n", None).unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn top_selects_among_modules() {
        let text = r#"{
          "modules": {
            "m1": { "ports": { "a": { "direction": "input", "bits": [2] },
                                "y": { "direction": "output", "bits": [3] } },
                    "cells": { "g": { "type": "$_NOT_", "connections": { "A": [2], "Y": [3] } } } },
            "m2": { "ports": { "a": { "direction": "input", "bits": [2] },
                                "y": { "direction": "output", "bits": [3] } },
                    "cells": { "g": { "type": "$_BUF_", "connections": { "A": [2], "Y": [3] } } } }
          }
        }"#;
        assert!(parse_yosys_json(text, None).is_err(), "ambiguous without --top");
        let core = parse_yosys_json(text, Some("m2")).unwrap();
        assert_eq!(core.name, "m2");
        assert_eq!(core.netlist.gates()[0].kind, GateKind::Buf);
    }

    #[test]
    fn imported_core_survives_rewrite() {
        let core = parse_yosys_json(SMALL, None).unwrap();
        let out = crate::ir::rewrite(&core.netlist).unwrap();
        let a = 0b11110000u64;
        let b = 0b11001100u64;
        let cin = 0b10101010u64;
        assert_eq!(core.netlist.eval(&[a, b, cin]), out.netlist.eval(&[a, b, cin]));
    }
}
