//! Level analysis: longest-path depth of every net from the primary
//! inputs. The fault simulator's level-major slot permutation and
//! event-walk buckets are built directly from this map.

use crate::netlist::{NetId, Netlist};

/// Per-net logic levels produced by [`analyze_levels`].
///
/// Primary inputs and constant gates sit at level 0 (a constant gate's
/// output is `max()` over zero inputs, so it levels like an input);
/// every other gate output sits one above the deepest of its inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelMap {
    net_level: Vec<u32>,
    depth: u32,
}

impl LevelMap {
    /// Level of a single net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for the analyzed netlist.
    #[must_use]
    pub fn net_level(&self, net: NetId) -> u32 {
        self.net_level[net.index()]
    }

    /// Levels for all nets, indexed by net id.
    #[must_use]
    pub fn net_levels(&self) -> &[u32] {
        &self.net_level
    }

    /// Consumes the map, returning the per-net level vector.
    #[must_use]
    pub fn into_net_levels(self) -> Vec<u32> {
        self.net_level
    }

    /// Maximum gate level: the combinational logic depth of the
    /// netlist. 0 for a gateless netlist.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of distinct levels including level 0 (`depth() + 1`).
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.depth as usize + 1
    }
}

/// Computes logic levels for every net in one forward sweep.
///
/// Requires a netlist whose stored gate order is a valid evaluation
/// order (what [`super::validate`] checks); on such input the sweep is
/// exact longest-path labeling. Levels for driven nets are
/// `1 + max(level of inputs)`; inputs and never-driven nets are 0.
#[must_use]
pub fn analyze_levels(netlist: &Netlist) -> LevelMap {
    let mut net_level = vec![0u32; netlist.num_nets()];
    let mut depth = 0u32;
    for gate in netlist.gates() {
        let level = gate.inputs.iter().map(|n| net_level[n.index()]).max().unwrap_or(0) + 1;
        net_level[gate.output.index()] = level;
        depth = depth.max(level);
    }
    LevelMap { net_level, depth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn levels_count_longest_path() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let x = b.xor2(i[0], i[1]); // level 1
        let y = b.and2(x, i[0]); // level 2
        let z = b.or2(y, x); // level 3
        b.output(z);
        let nl = b.finish();
        let levels = analyze_levels(&nl);
        assert_eq!(levels.net_level(i[0]), 0);
        assert_eq!(levels.net_level(x), 1);
        assert_eq!(levels.net_level(y), 2);
        assert_eq!(levels.net_level(z), 3);
        assert_eq!(levels.depth(), 3);
        assert_eq!(levels.num_levels(), 4);
    }

    #[test]
    fn gateless_netlist_has_depth_zero() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(1);
        b.output(i[0]);
        let nl = b.finish();
        assert_eq!(analyze_levels(&nl).depth(), 0);
    }
}
