//! Deterministic human-readable text format for netlists.
//!
//! The format is line-based and order-preserving, so
//! `text_parse(text_emit(n)) == n` holds exactly (PartialEq identity,
//! not just functional equivalence) and the same netlist always emits
//! byte-identical text:
//!
//! ```text
//! r2d3-netlist v1
//! nets 5
//! inputs 2
//! gate xor n2 n0 n1
//! gate and n3 n2 n0
//! gate or n4 n3 n2
//! output n4
//! redundant n3 0
//! end
//! ```
//!
//! Gate lines list the output net first, then the inputs, in stored
//! (topological) order. `redundant` lines record the
//! constant-by-construction ground truth used by fault preclassify.

use super::{validate, IrError};
use crate::netlist::{Gate, GateKind, NetId, Netlist};
use std::fmt::Write as _;

/// Magic first line of the text format.
const HEADER: &str = "r2d3-netlist v1";

fn kind_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Buf => "buf",
        GateKind::Not => "not",
        GateKind::And => "and",
        GateKind::Or => "or",
        GateKind::Nand => "nand",
        GateKind::Nor => "nor",
        GateKind::Xor => "xor",
        GateKind::Xnor => "xnor",
        GateKind::Mux => "mux",
        GateKind::Const0 => "const0",
        GateKind::Const1 => "const1",
    }
}

fn kind_from_name(name: &str) -> Option<GateKind> {
    Some(match name {
        "buf" => GateKind::Buf,
        "not" => GateKind::Not,
        "and" => GateKind::And,
        "or" => GateKind::Or,
        "nand" => GateKind::Nand,
        "nor" => GateKind::Nor,
        "xor" => GateKind::Xor,
        "xnor" => GateKind::Xnor,
        "mux" => GateKind::Mux,
        "const0" => GateKind::Const0,
        "const1" => GateKind::Const1,
        _ => return None,
    })
}

/// Emits the netlist in the deterministic text format.
///
/// Same netlist → byte-identical string, on every platform.
#[must_use]
pub fn text_emit(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "nets {}", netlist.num_nets());
    let _ = writeln!(out, "inputs {}", netlist.num_inputs());
    for gate in netlist.gates() {
        let _ = write!(out, "gate {} {}", kind_name(gate.kind), gate.output);
        for input in &gate.inputs {
            let _ = write!(out, " {input}");
        }
        out.push('\n');
    }
    for output in netlist.outputs() {
        let _ = writeln!(out, "output {output}");
    }
    for &(net, value) in netlist.redundant_constants() {
        let _ = writeln!(out, "redundant {} {}", net, u8::from(value));
    }
    out.push_str("end\n");
    out
}

/// Parses the text format back into a netlist and validates it.
///
/// # Errors
///
/// Returns [`IrError::Text`] with a 1-based line number for syntax
/// problems, or the structural [`IrError`] from [`validate`] if the
/// parsed netlist violates IR invariants.
pub fn text_parse(text: &str) -> Result<Netlist, IrError> {
    let err = |line: usize, message: String| IrError::Text { line, message };
    let mut lines = text.lines().enumerate();

    let (line_no, first) = lines.next().ok_or_else(|| err(1, "empty input".into()))?;
    if first.trim() != HEADER {
        return Err(err(line_no + 1, format!("expected header `{HEADER}`")));
    }

    let parse_net = |token: &str, line: usize| -> Result<NetId, IrError> {
        let digits = token
            .strip_prefix('n')
            .ok_or_else(|| err(line, format!("expected net id like `n12`, got `{token}`")))?;
        let id: u32 = digits.parse().map_err(|_| err(line, format!("invalid net id `{token}`")))?;
        Ok(NetId(id))
    };

    let mut num_nets: Option<usize> = None;
    let mut num_inputs: Option<usize> = None;
    let mut gates: Vec<Gate> = Vec::new();
    let mut outputs: Vec<NetId> = Vec::new();
    let mut redundant: Vec<(NetId, bool)> = Vec::new();
    let mut saw_end = false;

    for (idx, raw) in lines {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if saw_end {
            return Err(err(line, "content after `end`".into()));
        }
        let mut tokens = trimmed.split_whitespace();
        let keyword = tokens.next().unwrap_or_default();
        match keyword {
            "nets" | "inputs" => {
                let value: usize = tokens
                    .next()
                    .ok_or_else(|| err(line, format!("`{keyword}` needs a count")))?
                    .parse()
                    .map_err(|_| err(line, format!("invalid `{keyword}` count")))?;
                let slot = if keyword == "nets" { &mut num_nets } else { &mut num_inputs };
                if slot.replace(value).is_some() {
                    return Err(err(line, format!("duplicate `{keyword}` line")));
                }
            }
            "gate" => {
                let kind_token =
                    tokens.next().ok_or_else(|| err(line, "`gate` needs a kind".into()))?;
                let kind = kind_from_name(kind_token)
                    .ok_or_else(|| err(line, format!("unknown gate kind `{kind_token}`")))?;
                let output_token =
                    tokens.next().ok_or_else(|| err(line, "`gate` needs an output net".into()))?;
                let output = parse_net(output_token, line)?;
                let mut inputs = Vec::with_capacity(kind.arity());
                for token in tokens {
                    inputs.push(parse_net(token, line)?);
                }
                // Arity is re-checked structurally by `validate`, but a
                // syntax-level check gives the better (line-numbered) error.
                if inputs.len() != kind.arity() {
                    return Err(err(
                        line,
                        format!(
                            "gate `{kind_token}` expects {} inputs, got {}",
                            kind.arity(),
                            inputs.len()
                        ),
                    ));
                }
                gates.push(Gate { kind, inputs, output });
            }
            "output" => {
                let token =
                    tokens.next().ok_or_else(|| err(line, "`output` needs a net".into()))?;
                outputs.push(parse_net(token, line)?);
            }
            "redundant" => {
                let net_token =
                    tokens.next().ok_or_else(|| err(line, "`redundant` needs a net".into()))?;
                let net = parse_net(net_token, line)?;
                let value = match tokens.next() {
                    Some("0") => false,
                    Some("1") => true,
                    other => {
                        return Err(err(
                            line,
                            format!("`redundant` needs a 0/1 value, got `{}`", other.unwrap_or("")),
                        ))
                    }
                };
                redundant.push((net, value));
            }
            "end" => {
                if tokens.next().is_some() {
                    return Err(err(line, "trailing tokens after `end`".into()));
                }
                saw_end = true;
            }
            other => return Err(err(line, format!("unknown keyword `{other}`"))),
        }
    }
    if !saw_end {
        return Err(err(text.lines().count().max(1), "missing `end` line".into()));
    }
    let num_nets = num_nets.ok_or_else(|| err(1, "missing `nets` line".into()))?;
    let num_inputs = num_inputs.ok_or_else(|| err(1, "missing `inputs` line".into()))?;

    let netlist = Netlist::from_parts(num_nets, num_inputs, gates, outputs, redundant);
    validate(&netlist)?;
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(3);
        let x = b.xor2(i[0], i[1]);
        let y = b.and2(x, i[2]);
        let m = b.mux2(i[2], x, y);
        b.output(y);
        b.output(m);
        b.finish()
    }

    #[test]
    fn round_trip_is_identity() {
        let nl = sample();
        let text = text_emit(&nl);
        let back = text_parse(&text).unwrap();
        assert_eq!(back, nl);
    }

    #[test]
    fn emission_is_deterministic() {
        let a = text_emit(&sample());
        let b = text_emit(&sample());
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(matches!(text_parse("bogus v9\nend\n"), Err(IrError::Text { line: 1, .. })));
    }

    #[test]
    fn parse_rejects_unknown_kind() {
        let text = "r2d3-netlist v1\nnets 2\ninputs 1\ngate nandy n1 n0\nend\n";
        assert!(matches!(text_parse(text), Err(IrError::Text { line: 4, .. })));
    }

    #[test]
    fn parse_rejects_wrong_arity() {
        let text = "r2d3-netlist v1\nnets 3\ninputs 2\ngate and n2 n0\nend\n";
        assert!(matches!(text_parse(text), Err(IrError::Text { line: 4, .. })));
    }

    #[test]
    fn parse_surfaces_structural_errors() {
        // Two drivers for n1: syntax is fine, structure is not.
        let text = "r2d3-netlist v1\nnets 2\ninputs 1\n\
                    gate buf n1 n0\ngate not n1 n0\noutput n1\nend\n";
        assert!(matches!(text_parse(text), Err(IrError::MultipleDrivers { net: NetId(1) })));
    }

    #[test]
    fn parse_rejects_missing_end() {
        let text = "r2d3-netlist v1\nnets 1\ninputs 1\noutput n0\n";
        assert!(matches!(text_parse(text), Err(IrError::Text { .. })));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "r2d3-netlist v1\n# a comment\nnets 2\n\ninputs 1\n\
                    gate not n1 n0\noutput n1\nend\n";
        let nl = text_parse(text).unwrap();
        assert_eq!(nl.num_gates(), 1);
    }
}
