//! Deterministic rewrite passes over validated netlists.
//!
//! The pass order is fixed and is part of the determinism contract:
//!
//! 1. **Constant folding** — propagate `Const0`/`Const1` through gate
//!    functions, apply controlling-value and same-input identities.
//! 2. **Buf/inv chain cleanup** — forward every `Buf` to its source,
//!    collapse `Not(Not(x))` to `x`.
//! 3. **AIG-style normalization** — canonical (ascending) pin order for
//!    commutative gates plus structural hashing, merging structurally
//!    identical gates into a single driver.
//! 4. **Chain→tree rebalancing** — flatten fanout-free `And`/`Or`/`Xor`
//!    chains and rebuild them as balanced trees, cutting logic depth
//!    (fewer event-walk levels in [`crate::sim::FaultSim`]).
//!
//! A final compaction removes dead gates, re-sorts topologically and
//! renumbers nets densely (inputs keep `0..num_inputs`, each gate
//! output is numbered above everything it reads — the invariant the
//! fault simulator's cone builder relies on). The same input netlist
//! always produces a byte-identical rewritten netlist.

use super::{analyze_levels, validate, IrError};
use crate::netlist::{Gate, GateKind, NetId, Netlist};
use std::collections::{BTreeSet, HashMap};

/// Counters describing what the rewrite pipeline did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RewriteStats {
    /// Gate count before rewriting.
    pub gates_before: usize,
    /// Gate count after rewriting.
    pub gates_after: usize,
    /// Logic depth before rewriting.
    pub depth_before: u32,
    /// Logic depth after rewriting.
    pub depth_after: u32,
    /// Gates reduced to constants by folding.
    pub folded_constants: usize,
    /// `Buf` gates forwarded and `Not(Not(x))` pairs collapsed.
    pub removed_buffers: usize,
    /// Structurally duplicate gates merged by normalization.
    pub merged_duplicates: usize,
    /// `And`/`Or`/`Xor` chains rebuilt as balanced trees.
    pub rebalanced_chains: usize,
    /// Gates removed by dead-code elimination during compaction.
    pub dead_gates_removed: usize,
}

/// Result of running the rewrite pipeline.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The rewritten, validated netlist (topologically renumbered).
    pub netlist: Netlist,
    /// For each net of the *original* netlist, the net in the rewritten
    /// netlist that carries the same logic function, or `None` if the
    /// net was eliminated (folded to a removed constant or dead code).
    /// Fault sites survive this map with both polarities intact: nets
    /// are only merged when their driving functions are identical.
    pub net_map: Vec<Option<NetId>>,
    /// What the passes did.
    pub stats: RewriteStats,
}

/// Runs the fixed rewrite pipeline. Construct with
/// [`PassManager::standard`]; the pass order is not configurable — a
/// fixed order is what makes rewritten netlists reproducible across
/// the campaign and bench layers.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassManager {
    _private: (),
}

impl PassManager {
    /// The standard pipeline (the only one): constant folding, buf/inv
    /// cleanup, normalization, rebalancing, compaction.
    #[must_use]
    pub fn standard() -> Self {
        PassManager { _private: () }
    }

    /// Validates `netlist`, rewrites it, and validates the result.
    ///
    /// # Errors
    ///
    /// Returns the [`IrError`] from validating the input; rewriting a
    /// valid netlist cannot fail.
    pub fn run(&self, netlist: &Netlist) -> Result<RewriteOutcome, IrError> {
        validate(netlist)?;
        let mut stats = RewriteStats {
            gates_before: netlist.num_gates(),
            depth_before: analyze_levels(netlist).depth(),
            ..RewriteStats::default()
        };
        let mut work = Work::new(netlist);
        stats.folded_constants = work.const_fold();
        stats.removed_buffers = work.cleanup_buf_inv();
        stats.merged_duplicates = work.normalize();
        stats.rebalanced_chains = work.rebalance();
        let (rewritten, net_map, dead) = work.finish();
        stats.dead_gates_removed = dead;
        stats.gates_after = rewritten.num_gates();
        stats.depth_after = analyze_levels(&rewritten).depth();
        validate(&rewritten)?;
        Ok(RewriteOutcome { netlist: rewritten, net_map, stats })
    }
}

/// Convenience wrapper: [`PassManager::standard`]`.run(netlist)`.
///
/// # Errors
///
/// Returns the [`IrError`] from validating the input netlist.
pub fn rewrite(netlist: &Netlist) -> Result<RewriteOutcome, IrError> {
    PassManager::standard().run(netlist)
}

const NONE: u32 = u32::MAX;

/// Mutable rewrite workspace. Gates stay in their original slots
/// (deleted ones become `None`) so slot index order remains the
/// topological order throughout the forward passes; only `rebalance`
/// appends out-of-order gates, and `finish` re-sorts.
struct Work {
    num_inputs: usize,
    orig_num_nets: usize,
    gates: Vec<Option<Gate>>,
    /// Net → driving slot (`NONE` for inputs / undriven).
    driver: Vec<u32>,
    /// Net → replacement net; identity when the net stands for itself.
    alias: Vec<u32>,
    /// Net → proven constant value.
    konst: Vec<Option<bool>>,
    outputs: Vec<NetId>,
    redundant: Vec<(NetId, bool)>,
}

fn resolve(alias: &mut [u32], mut net: u32) -> u32 {
    while alias[net as usize] != net {
        let parent = alias[net as usize];
        alias[net as usize] = alias[parent as usize];
        net = alias[net as usize];
    }
    net
}

/// What a single gate simplifies to, given resolved inputs and any
/// proven-constant values among them.
enum Simplified {
    Keep,
    ToConst(bool),
    ToGate(GateKind, Vec<u32>),
}

fn simplify(kind: GateKind, ins: &[u32], kv: &[Option<bool>]) -> Simplified {
    use GateKind::*;
    use Simplified::*;
    let buf = |n: u32| ToGate(Buf, vec![n]);
    let inv = |n: u32| ToGate(Not, vec![n]);
    match kind {
        Const0 => ToConst(false),
        Const1 => ToConst(true),
        Buf => match kv[0] {
            Some(v) => ToConst(v),
            None => Keep,
        },
        Not => match kv[0] {
            Some(v) => ToConst(!v),
            None => Keep,
        },
        And | Or | Nand | Nor | Xor | Xnor => {
            let (a, b) = (ins[0], ins[1]);
            match (kv[0], kv[1]) {
                (Some(x), Some(y)) => {
                    let v = match kind {
                        And => x & y,
                        Or => x | y,
                        Nand => !(x & y),
                        Nor => !(x | y),
                        Xor => x ^ y,
                        Xnor => !(x ^ y),
                        _ => unreachable!(),
                    };
                    ToConst(v)
                }
                (Some(c), None) | (None, Some(c)) => {
                    let other = if kv[0].is_some() { b } else { a };
                    match (kind, c) {
                        (And, false) | (Nor, true) => ToConst(false),
                        (Or, true) | (Nand, false) => ToConst(true),
                        (And, true) | (Or, false) | (Xor, false) | (Xnor, true) => buf(other),
                        (Nand, true) | (Nor, false) | (Xor, true) | (Xnor, false) => inv(other),
                        _ => unreachable!(),
                    }
                }
                (None, None) if a == b => match kind {
                    And | Or => buf(a),
                    Nand | Nor => inv(a),
                    Xor => ToConst(false),
                    Xnor => ToConst(true),
                    _ => unreachable!(),
                },
                _ => Keep,
            }
        }
        Mux => {
            let (s, a, b) = (ins[0], ins[1], ins[2]);
            match (kv[0], kv[1], kv[2]) {
                (Some(true), _, _) => buf(a),
                (Some(false), _, _) => buf(b),
                (None, Some(x), Some(y)) if x == y => ToConst(x),
                (None, Some(true), Some(false)) => buf(s),
                (None, Some(false), Some(true)) => inv(s),
                (None, Some(true), None) => ToGate(Or, vec![s, b]),
                (None, None, Some(false)) => ToGate(And, vec![s, a]),
                _ => {
                    if a == b {
                        buf(a)
                    } else if s == a {
                        // s ? s : b == s | b
                        ToGate(Or, vec![s, b])
                    } else if s == b {
                        // s ? a : s == s & a
                        ToGate(And, vec![s, a])
                    } else {
                        Keep
                    }
                }
            }
        }
    }
}

impl Work {
    fn new(netlist: &Netlist) -> Self {
        let num_nets = netlist.num_nets();
        let mut driver = vec![NONE; num_nets];
        let gates: Vec<Option<Gate>> = netlist.gates().iter().cloned().map(Some).collect();
        for (slot, gate) in gates.iter().enumerate() {
            let gate = gate.as_ref().expect("fresh workspace has no holes");
            driver[gate.output.index()] = slot as u32;
        }
        Work {
            num_inputs: netlist.num_inputs(),
            orig_num_nets: num_nets,
            gates,
            driver,
            alias: (0..num_nets as u32).collect(),
            konst: vec![None; num_nets],
            outputs: netlist.outputs().to_vec(),
            redundant: netlist.redundant_constants().to_vec(),
        }
    }

    /// Resolves a gate's inputs in place; returns the resolved ids.
    fn resolved_inputs(&mut self, slot: usize) -> Vec<u32> {
        let gate = self.gates[slot].as_mut().expect("live gate");
        let mut ins = Vec::with_capacity(gate.inputs.len());
        for pin in &mut gate.inputs {
            let r = resolve(&mut self.alias, pin.0);
            *pin = NetId(r);
            ins.push(r);
        }
        ins
    }

    /// Pass 1: constant folding and local identities. Single forward
    /// sweep is exhaustive because gates are in topological order;
    /// each gate is re-simplified to a fixpoint so e.g.
    /// `And(x, 1) → Buf(x)` with constant `x` folds all the way.
    fn const_fold(&mut self) -> usize {
        let mut folded = 0usize;
        for slot in 0..self.gates.len() {
            if self.gates[slot].is_none() {
                continue;
            }
            loop {
                let ins = self.resolved_inputs(slot);
                let kv: Vec<Option<bool>> = ins.iter().map(|&n| self.konst[n as usize]).collect();
                let kind = self.gates[slot].as_ref().expect("live gate").kind;
                match simplify(kind, &ins, &kv) {
                    Simplified::Keep => break,
                    Simplified::ToConst(value) => {
                        let gate = self.gates[slot].as_mut().expect("live gate");
                        let was_const = matches!(gate.kind, GateKind::Const0 | GateKind::Const1);
                        gate.kind = if value { GateKind::Const1 } else { GateKind::Const0 };
                        gate.inputs.clear();
                        self.konst[gate.output.index()] = Some(value);
                        if !was_const {
                            folded += 1;
                        }
                        break;
                    }
                    Simplified::ToGate(kind, ins) => {
                        let gate = self.gates[slot].as_mut().expect("live gate");
                        gate.kind = kind;
                        gate.inputs = ins.into_iter().map(NetId).collect();
                        // Loop: the new form may simplify further.
                    }
                }
            }
        }
        folded
    }

    /// Pass 2: forward `Buf` outputs to their sources and collapse
    /// double inversions.
    fn cleanup_buf_inv(&mut self) -> usize {
        let mut removed = 0usize;
        for slot in 0..self.gates.len() {
            if self.gates[slot].is_none() {
                continue;
            }
            let ins = self.resolved_inputs(slot);
            let gate = self.gates[slot].as_ref().expect("live gate");
            match gate.kind {
                GateKind::Buf => {
                    let out = gate.output.0;
                    self.alias[out as usize] = ins[0];
                    self.gates[slot] = None;
                    removed += 1;
                }
                GateKind::Not => {
                    let src = ins[0] as usize;
                    if src >= self.num_inputs {
                        let d = self.driver[src];
                        if d != NONE {
                            if let Some(inner) = &self.gates[d as usize] {
                                if inner.kind == GateKind::Not {
                                    let target = resolve(&mut self.alias, inner.inputs[0].0);
                                    let out =
                                        self.gates[slot].as_ref().expect("live gate").output.0;
                                    self.alias[out as usize] = target;
                                    self.gates[slot] = None;
                                    removed += 1;
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        removed
    }

    /// Pass 3: canonical pin order for commutative gates + structural
    /// hashing. Two gates with the same kind and (canonicalized)
    /// inputs compute the same function, so the later one is merged
    /// into the earlier one.
    fn normalize(&mut self) -> usize {
        let mut merged = 0usize;
        let mut table: HashMap<(u8, u32, u32, u32), u32> = HashMap::new();
        for slot in 0..self.gates.len() {
            if self.gates[slot].is_none() {
                continue;
            }
            let mut ins = self.resolved_inputs(slot);
            let gate = self.gates[slot].as_mut().expect("live gate");
            let commutative = matches!(
                gate.kind,
                GateKind::And
                    | GateKind::Or
                    | GateKind::Nand
                    | GateKind::Nor
                    | GateKind::Xor
                    | GateKind::Xnor
            );
            if commutative && ins[0] > ins[1] {
                ins.swap(0, 1);
                gate.inputs.swap(0, 1);
            }
            let key = (
                gate.kind as u8,
                *ins.first().unwrap_or(&NONE),
                *ins.get(1).unwrap_or(&NONE),
                *ins.get(2).unwrap_or(&NONE),
            );
            let out = gate.output.0;
            match table.get(&key) {
                Some(&canonical) => {
                    self.alias[out as usize] = canonical;
                    self.gates[slot] = None;
                    merged += 1;
                }
                None => {
                    table.insert(key, out);
                }
            }
        }
        merged
    }

    fn alloc_net(&mut self) -> u32 {
        let net = self.alias.len() as u32;
        self.alias.push(net);
        self.konst.push(None);
        self.driver.push(NONE);
        net
    }

    /// Pass 4: rebuild deep fanout-free `And`/`Or`/`Xor` chains as
    /// balanced trees. The chain root's slot and output net are reused
    /// (so downstream readers and fault sites are untouched);
    /// flattened internal gates are deleted and fresh intermediate
    /// nets are appended. Gates are visited in reverse order so roots
    /// (which sit deepest in topological order) claim their chains
    /// before the internals are visited.
    fn rebalance(&mut self) -> usize {
        let total = self.alias.len();
        let mut fanout = vec![0u32; total];
        for gate in self.gates.iter().flatten() {
            for pin in &gate.inputs {
                fanout[pin.index()] += 1;
            }
        }
        let mut is_output = vec![false; total];
        for i in 0..self.outputs.len() {
            let o = resolve(&mut self.alias, self.outputs[i].0);
            is_output[o as usize] = true;
        }

        let mut rebuilt = 0usize;
        let mut visited = vec![false; self.gates.len()];
        for slot in (0..self.gates.len()).rev() {
            let Some(gate) = &self.gates[slot] else { continue };
            if visited[slot] || !matches!(gate.kind, GateKind::And | GateKind::Or | GateKind::Xor) {
                continue;
            }
            visited[slot] = true;
            let kind = gate.kind;
            let root_out = gate.output.0;
            let (lhs, rhs) = (gate.inputs[0].0, gate.inputs[1].0);

            let mut leaves: Vec<u32> = Vec::new();
            let mut consumed: Vec<usize> = Vec::new();
            let dl = collect_chain(
                &self.gates,
                &self.driver,
                &fanout,
                &is_output,
                self.num_inputs,
                kind,
                lhs,
                &mut visited,
                &mut leaves,
                &mut consumed,
            );
            let dr = collect_chain(
                &self.gates,
                &self.driver,
                &fanout,
                &is_output,
                self.num_inputs,
                kind,
                rhs,
                &mut visited,
                &mut leaves,
                &mut consumed,
            );
            let depth = dl.max(dr) + 1;
            let balanced_depth = ceil_log2(leaves.len());
            if leaves.len() < 4 || depth <= balanced_depth {
                continue; // nothing to gain; leave the chain alone
            }

            rebuilt += 1;
            for &dead in &consumed {
                self.gates[dead] = None;
            }
            // Pairwise reduction; the final combine reuses the root
            // slot so the root's output net id is preserved.
            let mut level: Vec<u32> = leaves;
            while level.len() > 2 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                let mut chunks = level.chunks_exact(2);
                for pair in &mut chunks {
                    let out = self.alloc_net();
                    let new_slot = self.gates.len() as u32;
                    self.gates.push(Some(Gate {
                        kind,
                        inputs: vec![NetId(pair[0]), NetId(pair[1])],
                        output: NetId(out),
                    }));
                    self.driver[out as usize] = new_slot;
                    next.push(out);
                }
                next.extend(chunks.remainder().iter().copied());
                level = next;
            }
            self.gates[slot] = Some(Gate {
                kind,
                inputs: vec![NetId(level[0]), NetId(level[1])],
                output: NetId(root_out),
            });
        }
        rebuilt
    }

    /// Compaction: dead-code elimination, deterministic topological
    /// re-sort, dense renumbering. Returns the rewritten netlist, the
    /// original-net survival map, and the dead-gate count.
    fn finish(mut self) -> (Netlist, Vec<Option<NetId>>, usize) {
        let total = self.alias.len();

        // Resolve every remaining reference once, up front.
        for slot in 0..self.gates.len() {
            if self.gates[slot].is_some() {
                self.resolved_inputs(slot);
            }
        }
        let outputs: Vec<u32> =
            (0..self.outputs.len()).map(|i| resolve(&mut self.alias, self.outputs[i].0)).collect();

        // DCE: iteratively drop gates whose output nobody reads or
        // observes. Confluent, so processing order does not affect the
        // surviving set.
        let mut reads = vec![0u32; total];
        for gate in self.gates.iter().flatten() {
            for pin in &gate.inputs {
                reads[pin.index()] += 1;
            }
        }
        let mut observed = vec![false; total];
        for &o in &outputs {
            observed[o as usize] = true;
        }
        let mut dead_removed = 0usize;
        let mut stack: Vec<usize> =
            (0..self.gates.len()).filter(|&s| self.gates[s].is_some()).collect();
        while let Some(slot) = stack.pop() {
            let Some(gate) = &self.gates[slot] else { continue };
            let out = gate.output.index();
            if reads[out] > 0 || observed[out] {
                continue;
            }
            let gate = self.gates[slot].take().expect("checked live");
            dead_removed += 1;
            for pin in &gate.inputs {
                reads[pin.index()] -= 1;
                if reads[pin.index()] == 0 && pin.index() >= self.num_inputs {
                    let d = self.driver[pin.index()];
                    if d != NONE {
                        stack.push(d as usize);
                    }
                }
            }
        }

        // Deterministic Kahn ordering over live gates: seed queue in
        // ascending slot order, FIFO processing, reader lists recorded
        // in ascending slot order.
        let live: Vec<usize> = (0..self.gates.len()).filter(|&s| self.gates[s].is_some()).collect();
        let mut pending: HashMap<usize, u32> = HashMap::with_capacity(live.len());
        let mut readers: Vec<Vec<u32>> = vec![Vec::new(); total];
        for &slot in &live {
            let gate = self.gates[slot].as_ref().expect("live gate");
            let mut need = 0u32;
            for pin in &gate.inputs {
                if pin.index() >= self.num_inputs {
                    need += 1;
                    readers[pin.index()].push(slot as u32);
                }
            }
            pending.insert(slot, need);
        }
        let mut queue: Vec<u32> = Vec::with_capacity(live.len());
        for &slot in &live {
            if pending[&slot] == 0 {
                queue.push(slot as u32);
            }
        }
        let mut order: Vec<usize> = Vec::with_capacity(live.len());
        let mut head = 0usize;
        while head < queue.len() {
            let slot = queue[head] as usize;
            head += 1;
            order.push(slot);
            let out = self.gates[slot].as_ref().expect("live gate").output.index();
            for &reader in &readers[out] {
                let reader = reader as usize;
                let entry = pending.get_mut(&reader).expect("reader is live");
                *entry -= 1;
                if *entry == 0 {
                    queue.push(reader as u32);
                }
            }
        }
        debug_assert_eq!(order.len(), live.len(), "live gate graph must be acyclic");

        // Dense renumbering: inputs keep their ids, each gate output is
        // numbered after everything it reads.
        let mut net_map_all: Vec<Option<u32>> = vec![None; total];
        for (i, slot) in net_map_all.iter_mut().enumerate().take(self.num_inputs) {
            *slot = Some(i as u32);
        }
        let mut new_gates: Vec<Gate> = Vec::with_capacity(order.len());
        let mut next = self.num_inputs as u32;
        for &slot in &order {
            let gate = self.gates[slot].as_ref().expect("live gate");
            let out = next;
            next += 1;
            net_map_all[gate.output.index()] = Some(out);
            new_gates.push(Gate {
                kind: gate.kind,
                inputs: gate
                    .inputs
                    .iter()
                    .map(|pin| {
                        NetId(net_map_all[pin.index()].expect("topo order maps inputs first"))
                    })
                    .collect(),
                output: NetId(out),
            });
        }
        let new_outputs: Vec<NetId> = outputs
            .iter()
            .map(|&o| NetId(net_map_all[o as usize].expect("observed nets survive DCE")))
            .collect();

        // Redundancy ground truth: original entries that survive, plus
        // every net the fold pass proved constant. Sorted and deduped
        // so emission is deterministic.
        let mut redundant: BTreeSet<(u32, bool)> = BTreeSet::new();
        for i in 0..self.redundant.len() {
            let (net, value) = self.redundant[i];
            let r = resolve(&mut self.alias, net.0);
            if let Some(new) = net_map_all[r as usize] {
                redundant.insert((new, value));
            }
        }
        for net in 0..total {
            if let Some(value) = self.konst[net] {
                let r = resolve(&mut self.alias, net as u32);
                if let Some(new) = net_map_all[r as usize] {
                    redundant.insert((new, value));
                }
            }
        }
        let redundant: Vec<(NetId, bool)> =
            redundant.into_iter().map(|(n, v)| (NetId(n), v)).collect();

        let net_map: Vec<Option<NetId>> = (0..self.orig_num_nets as u32)
            .map(|n| {
                let r = resolve(&mut self.alias, n);
                net_map_all[r as usize].map(NetId)
            })
            .collect();

        let netlist =
            Netlist::from_parts(next as usize, self.num_inputs, new_gates, new_outputs, redundant);
        (netlist, net_map, dead_removed)
    }
}

/// DFS leaf collection for `rebalance`: descends through same-kind
/// gates whose output has exactly one reader and is not observed,
/// marking them consumed; everything else is a leaf. Returns the
/// subtree depth (leaf = 0). Leaves come out in deterministic
/// left-to-right pin order.
#[allow(clippy::too_many_arguments)]
fn collect_chain(
    gates: &[Option<Gate>],
    driver: &[u32],
    fanout: &[u32],
    is_output: &[bool],
    num_inputs: usize,
    kind: GateKind,
    net: u32,
    visited: &mut [bool],
    leaves: &mut Vec<u32>,
    consumed: &mut Vec<usize>,
) -> u32 {
    let n = net as usize;
    if n >= num_inputs && fanout[n] == 1 && !is_output[n] {
        let d = driver[n];
        if d != NONE {
            let slot = d as usize;
            if let Some(inner) = &gates[slot] {
                if inner.kind == kind && !visited[slot] {
                    visited[slot] = true;
                    consumed.push(slot);
                    let (a, b) = (inner.inputs[0].0, inner.inputs[1].0);
                    let dl = collect_chain(
                        gates, driver, fanout, is_output, num_inputs, kind, a, visited, leaves,
                        consumed,
                    );
                    let dr = collect_chain(
                        gates, driver, fanout, is_output, num_inputs, kind, b, visited, leaves,
                        consumed,
                    );
                    return dl.max(dr) + 1;
                }
            }
        }
    }
    leaves.push(net);
    0
}

/// `ceil(log2(n))` for `n >= 1`.
fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn eval_pair(a: &Netlist, b: &Netlist, inputs: &[u64]) {
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert_eq!(a.outputs().len(), b.outputs().len());
        assert_eq!(a.eval(inputs), b.eval(inputs), "functional mismatch");
    }

    #[test]
    fn folds_constants_through() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let zero = b.constant(false);
        let x = b.and2(i[0], zero); // == 0
        let y = b.or2(x, i[1]); // == i1
        b.output(y);
        let nl = b.finish();
        let out = rewrite(&nl).unwrap();
        assert!(out.stats.folded_constants >= 1);
        eval_pair(&nl, &out.netlist, &[0b1100, 0b1010]);
        // The folded net must land in the redundancy ground truth.
        assert!(!out.netlist.redundant_constants().is_empty() || out.netlist.num_gates() == 0);
    }

    #[test]
    fn removes_buf_and_double_inversion() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(1);
        let n1 = b.not(i[0]);
        let n2 = b.not(n1);
        let n3 = b.gate(GateKind::Buf, &[n2]);
        b.output(n3);
        let nl = b.finish();
        let out = rewrite(&nl).unwrap();
        assert_eq!(out.netlist.num_gates(), 0, "buf(not(not(x))) is just x");
        assert_eq!(out.netlist.outputs(), &[NetId(0)]);
        eval_pair(&nl, &out.netlist, &[0b1010]);
    }

    #[test]
    fn merges_structural_duplicates() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let x = b.and2(i[0], i[1]);
        let y = b.and2(i[1], i[0]); // same function, swapped pins
        let z = b.xor2(x, y); // == 0
        b.output(z);
        let nl = b.finish();
        let out = rewrite(&nl).unwrap();
        assert!(out.stats.merged_duplicates >= 1);
        eval_pair(&nl, &out.netlist, &[0b1100, 0b1010]);
    }

    #[test]
    fn rebalances_chain_and_cuts_depth() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(8);
        let mut acc = i[0];
        for &input in &i[1..] {
            acc = b.and2(acc, input);
        }
        b.output(acc);
        let nl = b.finish();
        let before = analyze_levels(&nl).depth();
        assert_eq!(before, 7);
        let out = rewrite(&nl).unwrap();
        assert_eq!(out.stats.rebalanced_chains, 1);
        assert_eq!(out.stats.depth_after, 3, "8-leaf chain balances to depth 3");
        assert_eq!(out.netlist.num_gates(), nl.num_gates(), "same gate count, less depth");
        for pattern in [[0u64; 8], [!0u64; 8], [0x5555, 0xFF, !0, 0, 1, 2, 3, 4]] {
            eval_pair(&nl, &out.netlist, &pattern);
        }
    }

    #[test]
    fn preserves_fanout_boundaries_when_rebalancing() {
        // The chain's midpoint feeds a second output, so only the
        // fanout-free suffix may be flattened.
        let mut b = NetlistBuilder::new();
        let i = b.inputs(8);
        let mut acc = i[0];
        for &input in &i[1..4] {
            acc = b.and2(acc, input);
        }
        let mid = acc;
        for &input in &i[4..] {
            acc = b.and2(acc, input);
        }
        b.output(acc);
        b.output(mid);
        let nl = b.finish();
        let out = rewrite(&nl).unwrap();
        eval_pair(&nl, &out.netlist, &[0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0]);
    }

    #[test]
    fn dead_code_is_removed() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let live = b.xor2(i[0], i[1]);
        let _dead = b.and2(i[0], i[1]); // never observed
        b.output(live);
        let nl = b.finish();
        let out = rewrite(&nl).unwrap();
        assert_eq!(out.stats.dead_gates_removed, 1);
        assert_eq!(out.netlist.num_gates(), 1);
        assert_eq!(out.net_map[3], None, "dead net is gone");
    }

    #[test]
    fn rewrite_is_deterministic_and_idempotent_on_structure() {
        let stage = crate::stages::stage_netlist(
            r2d3_isa::Unit::Exu,
            &crate::stages::StageSizing::default(),
        );
        let a = rewrite(stage.netlist()).unwrap();
        let b = rewrite(stage.netlist()).unwrap();
        assert_eq!(a.netlist, b.netlist, "same input, byte-identical output");
        assert_eq!(a.net_map, b.net_map);
        // Emitted text is identical too (the bench/CLI determinism contract).
        assert_eq!(super::super::text_emit(&a.netlist), super::super::text_emit(&b.netlist));
    }

    #[test]
    fn rewritten_stage_is_functionally_identical() {
        let stage = crate::stages::stage_netlist(
            r2d3_isa::Unit::Ifu,
            &crate::stages::StageSizing::default(),
        );
        let nl = stage.netlist();
        let out = rewrite(nl).unwrap();
        assert!(out.stats.gates_after <= out.stats.gates_before);
        let mut pattern = vec![0u64; nl.num_inputs()];
        for (k, slot) in pattern.iter_mut().enumerate() {
            *slot = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(k as u64 + 1);
        }
        eval_pair(nl, &out.netlist, &pattern);
    }

    #[test]
    fn net_map_points_at_equivalent_nets() {
        let stage = crate::stages::stage_netlist(
            r2d3_isa::Unit::Ffu,
            &crate::stages::StageSizing::default(),
        );
        let nl = stage.netlist();
        let out = rewrite(nl).unwrap();
        let mut pattern = vec![0u64; nl.num_inputs()];
        for (k, slot) in pattern.iter_mut().enumerate() {
            *slot = 0xD134_2543_DE82_EF95u64.wrapping_mul(k as u64 + 7);
        }
        let old_values = nl.eval_all(&pattern);
        let new_values = out.netlist.eval_all(&pattern);
        for (old, mapped) in out.net_map.iter().enumerate() {
            if let Some(new) = mapped {
                assert_eq!(
                    old_values[old],
                    new_values[new.index()],
                    "net {old} must keep its function across rewrite"
                );
            }
        }
    }
}
