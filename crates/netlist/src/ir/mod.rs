//! Validated intermediate representation over [`Netlist`].
//!
//! The rest of the workspace treats [`Netlist`] as an IR with hard
//! invariants — topological gate order, single drivers, exact arities,
//! no dangling nets — but until this module existed those invariants
//! were only enforced by the builder and spot-checked with
//! `debug_assert!`s scattered through the simulator. This module makes
//! the contract explicit and machine-checkable:
//!
//! * [`validate`] — the structural validator. Single-driver, acyclic,
//!   arity-checked, no dangling nets; returns typed [`IrError`]s and
//!   never panics, so importers ([`crate::blif`],
//!   [`crate::yosys_json`]) can surface malformed input as errors
//!   instead of producing a netlist that fails later in simulation.
//! * [`text_emit`] / [`text_parse`] — a deterministic, human-readable
//!   text format that round-trips exactly (`text_parse(text_emit(n)) ==
//!   n`), used as the interchange artifact between `r2d3 import` and
//!   the campaign commands.
//! * [`PassManager`] / [`rewrite`] — rewrite passes in a fixed order
//!   (constant folding, buf/inv chain cleanup, AIG-style normalization,
//!   chain→tree rebalancing) with a net-survival map so fault sites and
//!   redundancy ground truth can be carried across the rewrite.
//! * [`analyze_levels`] — the level-analysis pass whose output drives
//!   the level-major slot permutation and event-walk buckets in
//!   [`crate::sim::FaultSim`].
//!
//! # Determinism contract
//!
//! Every function here is a pure function of netlist structure: the
//! same input netlist produces a byte-identical post-rewrite netlist,
//! text emission, and level assignment on every run, platform, and
//! thread count. The campaign layers rely on this the same way they
//! rely on seed-determinism of pattern generation.

mod level;
mod passes;
mod text;
mod validate;

pub use level::{analyze_levels, LevelMap};
pub use passes::{rewrite, PassManager, RewriteOutcome, RewriteStats};
pub use text::{text_emit, text_parse};
pub use validate::validate;

use crate::netlist::{GateKind, NetId};
use std::fmt;

/// Structural IR violations, reported by [`validate`] and
/// [`text_parse`]. Each variant names the first offending site; the
/// validator never panics on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A gate pin, output, or redundancy entry references a net outside
    /// `0..num_nets`.
    NetOutOfRange {
        /// The out-of-range net.
        net: NetId,
        /// The netlist's net count.
        num_nets: usize,
    },
    /// A gate's input count does not match its kind's arity.
    ArityMismatch {
        /// Index of the gate in stored order.
        gate_index: usize,
        /// The gate kind.
        kind: GateKind,
        /// `kind.arity()`.
        expected: usize,
        /// Inputs actually present.
        got: usize,
    },
    /// A net has more than one driver.
    MultipleDrivers {
        /// The multiply-driven net.
        net: NetId,
    },
    /// A gate drives a primary-input net (inputs own `0..num_inputs`).
    InputDriven {
        /// Index of the driving gate.
        gate_index: usize,
        /// The driven input net.
        net: NetId,
    },
    /// A net is read by a gate or listed as an output but has no driver
    /// and is not a primary input.
    UndrivenNet {
        /// The undriven net.
        net: NetId,
    },
    /// A net exists in the numbering but is never driven, read, or
    /// observed — the net count overstates the circuit.
    DanglingNet {
        /// The dangling net.
        net: NetId,
    },
    /// The gate graph contains a combinational cycle.
    CombinationalCycle {
        /// The output net of a gate on the cycle.
        net: NetId,
    },
    /// The graph is acyclic but the stored gate order is not a valid
    /// evaluation order (a gate reads a net driven later).
    NotTopological {
        /// Index of the gate that reads ahead.
        gate_index: usize,
        /// The net it reads before its driver runs.
        net: NetId,
    },
    /// The text format could not be parsed.
    Text {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::NetOutOfRange { net, num_nets } => {
                write!(f, "net {net} out of range (netlist has {num_nets} nets)")
            }
            IrError::ArityMismatch { gate_index, kind, expected, got } => {
                write!(f, "gate {gate_index} ({kind:?}) expects {expected} inputs, has {got}")
            }
            IrError::MultipleDrivers { net } => write!(f, "net {net} has multiple drivers"),
            IrError::InputDriven { gate_index, net } => {
                write!(f, "gate {gate_index} drives primary-input net {net}")
            }
            IrError::UndrivenNet { net } => write!(f, "net {net} is used but has no driver"),
            IrError::DanglingNet { net } => {
                write!(f, "net {net} is never driven, read, or observed")
            }
            IrError::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net {net}")
            }
            IrError::NotTopological { gate_index, net } => {
                write!(f, "gate {gate_index} reads net {net} before its driver runs")
            }
            IrError::Text { line, message } => write!(f, "ir text line {line}: {message}"),
        }
    }
}

impl std::error::Error for IrError {}
