//! Structural IR validator.

use super::IrError;
use crate::netlist::{NetId, Netlist};

/// Checks every structural invariant the simulator and ATPG layers rely
/// on: net indices in range, gate arities exact, a single driver per
/// net, no gate driving a primary input, no net that is read or
/// observed without a driver, no net missing from the circuit entirely,
/// an acyclic gate graph, and a stored gate order that is a valid
/// evaluation order.
///
/// Nets that are *driven* but never read or observed are legal — width
/// adaptation in [`crate::netlist::compose_chain_with`] deliberately
/// drops logic cones, and the rewrite passes' dead-code elimination is
/// an optimization, not an invariant.
///
/// # Errors
///
/// Returns the first violated invariant as a typed [`IrError`]; never
/// panics, even on arbitrarily malformed input.
pub fn validate(netlist: &Netlist) -> Result<(), IrError> {
    let num_nets = netlist.num_nets();
    let num_inputs = netlist.num_inputs();
    if num_inputs > num_nets {
        return Err(IrError::NetOutOfRange { net: NetId(num_nets as u32), num_nets });
    }
    let check = |net: NetId| {
        if net.index() < num_nets {
            Ok(())
        } else {
            Err(IrError::NetOutOfRange { net, num_nets })
        }
    };

    // Range, arity and driver uniqueness in one sweep.
    const NO_DRIVER: u32 = u32::MAX;
    let mut driver = vec![NO_DRIVER; num_nets];
    for (gi, gate) in netlist.gates().iter().enumerate() {
        let expected = gate.kind.arity();
        if gate.inputs.len() != expected {
            return Err(IrError::ArityMismatch {
                gate_index: gi,
                kind: gate.kind,
                expected,
                got: gate.inputs.len(),
            });
        }
        for &input in &gate.inputs {
            check(input)?;
        }
        check(gate.output)?;
        if gate.output.index() < num_inputs {
            return Err(IrError::InputDriven { gate_index: gi, net: gate.output });
        }
        if driver[gate.output.index()] != NO_DRIVER {
            return Err(IrError::MultipleDrivers { net: gate.output });
        }
        driver[gate.output.index()] = gi as u32;
    }
    for &output in netlist.outputs() {
        check(output)?;
    }
    for &(net, _) in netlist.redundant_constants() {
        check(net)?;
    }

    // Every non-input net must be driven if it participates at all, and
    // must participate somehow (dangling nets bloat the fault universe
    // with sites that do not exist in the circuit).
    let mut used = vec![false; num_nets];
    for gate in netlist.gates() {
        for &input in &gate.inputs {
            used[input.index()] = true;
        }
    }
    for &output in netlist.outputs() {
        used[output.index()] = true;
    }
    for (net, &drv) in driver.iter().enumerate().skip(num_inputs) {
        if drv == NO_DRIVER {
            let net = NetId(net as u32);
            return Err(if used[net.index()] {
                IrError::UndrivenNet { net }
            } else {
                IrError::DanglingNet { net }
            });
        }
    }

    // Stored order must be a valid evaluation order; if it is not,
    // distinguish a mere misordering from a genuine cycle.
    let mut ready = vec![false; num_nets];
    for slot in ready.iter_mut().take(num_inputs) {
        *slot = true;
    }
    for (gi, gate) in netlist.gates().iter().enumerate() {
        for &input in &gate.inputs {
            if !ready[input.index()] {
                return Err(match find_cycle_net(netlist, &driver) {
                    Some(net) => IrError::CombinationalCycle { net },
                    None => IrError::NotTopological { gate_index: gi, net: input },
                });
            }
        }
        ready[gate.output.index()] = true;
    }
    Ok(())
}

/// Kahn scheduling over the gate graph ignoring stored order; returns
/// the output net of the first unschedulable gate (a gate on or behind
/// a cycle), or `None` if the graph is acyclic.
fn find_cycle_net(netlist: &Netlist, driver: &[u32]) -> Option<NetId> {
    let gates = netlist.gates();
    let num_inputs = netlist.num_inputs();
    let mut pending: Vec<u32> = gates
        .iter()
        .map(|g| g.inputs.iter().filter(|n| n.index() >= num_inputs).count() as u32)
        .collect();
    // Reader adjacency: for each gate, which gates consume its output.
    let mut readers: Vec<Vec<u32>> = vec![Vec::new(); gates.len()];
    for (gi, gate) in gates.iter().enumerate() {
        for &input in &gate.inputs {
            if input.index() >= num_inputs {
                let d = driver[input.index()];
                if d != u32::MAX {
                    readers[d as usize].push(gi as u32);
                }
            }
        }
    }
    let mut queue: Vec<u32> =
        (0..gates.len() as u32).filter(|&gi| pending[gi as usize] == 0).collect();
    let mut scheduled = 0usize;
    let mut head = 0usize;
    while head < queue.len() {
        let gi = queue[head] as usize;
        head += 1;
        scheduled += 1;
        for &reader in &readers[gi] {
            pending[reader as usize] -= 1;
            if pending[reader as usize] == 0 {
                queue.push(reader);
            }
        }
    }
    if scheduled == gates.len() {
        return None;
    }
    let mut done = vec![false; gates.len()];
    for &gi in &queue {
        done[gi as usize] = true;
    }
    gates.iter().enumerate().find(|(gi, _)| !done[*gi]).map(|(_, gate)| gate.output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::netlist::{Gate, GateKind};

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let x = b.xor2(i[0], i[1]);
        let y = b.and2(x, i[0]);
        b.output(y);
        b.finish()
    }

    #[test]
    fn accepts_builder_output() {
        validate(&sample()).unwrap();
    }

    #[test]
    fn rejects_out_of_range_net() {
        let gates = vec![Gate { kind: GateKind::Buf, inputs: vec![NetId(9)], output: NetId(1) }];
        let nl = Netlist::from_parts(2, 1, gates, vec![NetId(1)], vec![]);
        assert!(matches!(validate(&nl), Err(IrError::NetOutOfRange { net: NetId(9), .. })));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let gates = vec![Gate { kind: GateKind::And, inputs: vec![NetId(0)], output: NetId(1) }];
        let nl = Netlist::from_parts(2, 1, gates, vec![NetId(1)], vec![]);
        assert!(matches!(validate(&nl), Err(IrError::ArityMismatch { expected: 2, got: 1, .. })));
    }

    #[test]
    fn rejects_multiple_drivers() {
        let gates = vec![
            Gate { kind: GateKind::Buf, inputs: vec![NetId(0)], output: NetId(1) },
            Gate { kind: GateKind::Not, inputs: vec![NetId(0)], output: NetId(1) },
        ];
        let nl = Netlist::from_parts(2, 1, gates, vec![NetId(1)], vec![]);
        assert!(matches!(validate(&nl), Err(IrError::MultipleDrivers { net: NetId(1) })));
    }

    #[test]
    fn rejects_driving_primary_input() {
        let gates = vec![Gate { kind: GateKind::Buf, inputs: vec![NetId(0)], output: NetId(1) }];
        let nl = Netlist::from_parts(2, 2, gates, vec![NetId(1)], vec![]);
        assert!(matches!(validate(&nl), Err(IrError::InputDriven { net: NetId(1), .. })));
    }

    #[test]
    fn rejects_undriven_read_net() {
        let gates = vec![Gate { kind: GateKind::Buf, inputs: vec![NetId(2)], output: NetId(1) }];
        let nl = Netlist::from_parts(3, 1, gates, vec![NetId(1)], vec![]);
        assert!(matches!(validate(&nl), Err(IrError::UndrivenNet { net: NetId(2) })));
    }

    #[test]
    fn rejects_dangling_net() {
        let gates = vec![Gate { kind: GateKind::Buf, inputs: vec![NetId(0)], output: NetId(1) }];
        let nl = Netlist::from_parts(3, 1, gates, vec![NetId(1)], vec![]);
        assert!(matches!(validate(&nl), Err(IrError::DanglingNet { net: NetId(2) })));
    }

    #[test]
    fn rejects_cycle() {
        let gates = vec![
            Gate { kind: GateKind::And, inputs: vec![NetId(0), NetId(2)], output: NetId(1) },
            Gate { kind: GateKind::Buf, inputs: vec![NetId(1)], output: NetId(2) },
        ];
        let nl = Netlist::from_parts(3, 1, gates, vec![NetId(2)], vec![]);
        assert!(matches!(validate(&nl), Err(IrError::CombinationalCycle { .. })));
    }

    #[test]
    fn rejects_misordered_gates() {
        let gates = vec![
            Gate { kind: GateKind::Buf, inputs: vec![NetId(2)], output: NetId(1) },
            Gate { kind: GateKind::Not, inputs: vec![NetId(0)], output: NetId(2) },
        ];
        let nl = Netlist::from_parts(3, 1, gates, vec![NetId(1)], vec![]);
        assert!(matches!(
            validate(&nl),
            Err(IrError::NotTopological { gate_index: 0, net: NetId(2) })
        ));
    }

    #[test]
    fn accepts_driven_but_unread_net() {
        // Dropped cones from compose_chain leave driven-unused nets.
        let gates = vec![
            Gate { kind: GateKind::Buf, inputs: vec![NetId(0)], output: NetId(1) },
            Gate { kind: GateKind::Not, inputs: vec![NetId(0)], output: NetId(2) },
        ];
        let nl = Netlist::from_parts(3, 1, gates, vec![NetId(1)], vec![]);
        validate(&nl).unwrap();
    }

    #[test]
    fn accepts_all_generated_stages() {
        for &unit in r2d3_isa::Unit::ALL.iter() {
            let stage = crate::stages::stage_netlist(unit, &crate::stages::StageSizing::default());
            validate(stage.netlist()).unwrap();
        }
    }
}
