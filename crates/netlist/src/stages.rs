//! Structural netlist generators for the five OpenSPARC T1 pipeline units.
//!
//! The paper's ATPG study runs on the synthesized 45 nm netlist of each
//! unit. We substitute generated structural models: each unit gets a
//! hand-built *architectural core* (the datapath a designer would expect —
//! next-PC logic for the IFU, an ALU for the EXU, address/tag logic for the
//! LSU, trap priority logic for the TLU, a multiplier array for the FFU)
//! padded with deterministic *filler logic* up to a gate budget
//! proportional to the unit's Table III silicon area. The filler mixes
//! easily-sensitized (XOR) and masking (AND/OR/MUX) structures so the
//! random-pattern testability profile resembles real control/datapath mix,
//! and a configurable fraction of provably redundant gates provides exact
//! ground truth for undetectable stuck-at faults.

use crate::builder::NetlistBuilder;
use crate::netlist::{GateKind, NetId, Netlist};
use r2d3_isa::Unit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-unit silicon area in mm² from the paper's Table III (45 nm SOI).
///
/// Order matches [`Unit::ALL`]: IFU, EXU, LSU, TLU, FFU.
pub const UNIT_AREA_MM2: [f64; 5] = [0.056, 0.036, 0.067, 0.040, 0.014];

/// Sizing knobs for stage-netlist generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageSizing {
    /// Gate density used to convert Table III areas into gate budgets.
    /// The default (15 000 gates/mm²) keeps the full five-unit fault
    /// universe in the tens of thousands so campaigns run in seconds.
    pub gates_per_mm2: f64,
    /// Fraction of the gate budget spent on provably redundant logic
    /// (ground truth for the "undetectable" class in Fig. 4(b); the paper
    /// reports ~4 % of total faults undetectable at stage level).
    pub redundant_fraction: f64,
    /// Seed for the deterministic filler generator.
    pub seed: u64,
}

impl Default for StageSizing {
    fn default() -> Self {
        StageSizing { gates_per_mm2: 15_000.0, redundant_fraction: 0.032, seed: 0xD3D3 }
    }
}

impl StageSizing {
    /// Gate budget for one unit.
    #[must_use]
    pub fn gate_budget(&self, unit: Unit) -> usize {
        (UNIT_AREA_MM2[unit.index()] * self.gates_per_mm2).round() as usize
    }
}

/// A generated pipeline-unit netlist.
#[derive(Debug, Clone)]
pub struct StageNetlist {
    unit: Unit,
    netlist: Netlist,
    core_outputs: usize,
}

impl StageNetlist {
    /// Which pipeline unit this netlist models.
    #[must_use]
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// The netlist itself.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Number of *architectural* outputs (the unit's real stage-boundary
    /// signals; the remaining outputs are filler observation points).
    #[must_use]
    pub fn core_output_count(&self) -> usize {
        self.core_outputs
    }

    /// Wraps an externally built netlist (e.g. a Yosys-JSON import) as a
    /// stage for `unit`, validating it against the IR invariants first.
    /// All of the netlist's outputs are treated as architectural
    /// stage-boundary signals (`core_outputs` clamps to the output
    /// count).
    ///
    /// # Errors
    ///
    /// Returns the [`crate::ir::IrError`] if the netlist violates any
    /// structural IR invariant.
    pub fn from_netlist(
        unit: Unit,
        netlist: Netlist,
        core_outputs: usize,
    ) -> Result<Self, crate::ir::IrError> {
        crate::ir::validate(&netlist)?;
        let core_outputs = core_outputs.min(netlist.outputs().len());
        Ok(StageNetlist { unit, netlist, core_outputs })
    }
}

/// Generates the structural netlist for one pipeline unit.
///
/// The result is deterministic in `(unit, sizing)`.
#[must_use]
pub fn stage_netlist(unit: Unit, sizing: &StageSizing) -> StageNetlist {
    let mut b = NetlistBuilder::new();
    let core_outputs = match unit {
        Unit::Ifu => build_ifu(&mut b),
        Unit::Exu => build_exu(&mut b),
        Unit::Lsu => build_lsu(&mut b),
        Unit::Tlu => build_tlu(&mut b),
        Unit::Ffu => build_ffu(&mut b),
    };

    let budget = sizing.gate_budget(unit);
    let seed = sizing.seed ^ (unit.index() as u64).wrapping_mul(0x9e37_79b9);
    let filler_outputs = add_filler(&mut b, &core_outputs, budget, sizing.redundant_fraction, seed);

    let core_output_count = core_outputs.len();
    b.outputs(&core_outputs);
    b.outputs(&filler_outputs);
    let netlist = b.finish();
    StageNetlist { unit, netlist, core_outputs: core_output_count }
}

/// Generates all five unit netlists with the same sizing.
#[must_use]
pub fn all_stage_netlists(sizing: &StageSizing) -> Vec<StageNetlist> {
    Unit::ALL.iter().map(|&u| stage_netlist(u, sizing)).collect()
}

const WORD: usize = 16;

/// IFU: next-PC pipeline — PC incrementer, branch-target mux, and a
/// branch-predictor index/tag slice.
fn build_ifu(b: &mut NetlistBuilder) -> Vec<NetId> {
    let pc = b.inputs(WORD);
    let target = b.inputs(WORD);
    let taken = b.input();
    let btb_tag = b.inputs(8);

    // pc + 1
    let zero = b.constant(false);
    let one = b.constant(true);
    let zeros: Vec<NetId> = (0..WORD).map(|_| zero).collect();
    let (pc_inc, _c) = b.ripple_adder(&pc, &zeros, one);
    // next = taken ? target : pc + 1
    let next_pc = b.mux_word(taken, &target, &pc_inc);
    // Predictor index: XOR-fold the PC into 4 bits, decode, tag compare.
    let idx: Vec<NetId> = (0..4)
        .map(|i| {
            let taps: Vec<NetId> = (0..WORD / 4).map(|j| pc[i + 4 * j]).collect();
            b.xor_tree(&taps)
        })
        .collect();
    let lines = b.decoder(&idx);
    let tag_hit = b.equal(&btb_tag, &pc[..8]);
    let pred: Vec<NetId> = lines.iter().map(|&l| b.and2(l, tag_hit)).collect();
    let pred_any = b.or_tree(&pred);

    let mut outs = next_pc;
    outs.push(pred_any);
    outs.extend(pred.into_iter().take(4));
    outs
}

/// EXU: a word ALU — adder, subtractor, logic ops, barrel shifter and an
/// op-select mux network plus condition flags.
fn build_exu(b: &mut NetlistBuilder) -> Vec<NetId> {
    let a = b.inputs(WORD);
    let bb = b.inputs(WORD);
    let op = b.inputs(3);

    let zero = b.constant(false);
    let (sum, cout) = b.ripple_adder(&a, &bb, zero);
    let (diff, borrow) = b.subtractor(&a, &bb);
    let and_w: Vec<NetId> = a.iter().zip(&bb).map(|(&x, &y)| b.and2(x, y)).collect();
    let or_w: Vec<NetId> = a.iter().zip(&bb).map(|(&x, &y)| b.or2(x, y)).collect();
    let xor_w: Vec<NetId> = a.iter().zip(&bb).map(|(&x, &y)| b.xor2(x, y)).collect();
    let shifted = b.barrel_shift_left(&a, &op);

    // Result select: op2 chooses arith vs logic group, op1/op0 within.
    let arith = b.mux_word(op[0], &diff, &sum);
    let logic1 = b.mux_word(op[0], &or_w, &and_w);
    let logic2 = b.mux_word(op[1], &shifted, &xor_w);
    let logic = b.mux_word(op[0], &logic2, &logic1);
    let result = b.mux_word(op[2], &arith, &logic);

    // Flags: zero, carry/borrow, sign.
    let nz = b.or_tree(&result);
    let z = b.not(nz);
    let cf = b.mux2(op[0], borrow, cout);
    let sign = result[WORD - 1];

    let mut outs = result;
    outs.extend([z, cf, sign]);
    outs
}

/// LSU: address generation, 2-way tag compare, byte-alignment muxing and
/// store-mask logic.
fn build_lsu(b: &mut NetlistBuilder) -> Vec<NetId> {
    let base = b.inputs(WORD);
    let offset = b.inputs(WORD);
    let store_data = b.inputs(WORD);
    let tag0 = b.inputs(8);
    let tag1 = b.inputs(8);
    let is_store = b.input();

    let zero = b.constant(false);
    let (addr, _c) = b.ripple_adder(&base, &offset, zero);
    let addr_tag: Vec<NetId> = addr[WORD - 8..].to_vec();
    let hit0 = b.equal(&addr_tag, &tag0);
    let hit1 = b.equal(&addr_tag, &tag1);
    let n0 = b.not(hit0);
    let hit1_only = b.and2(hit1, n0);
    let hit = b.or2(hit0, hit1);

    // Alignment: rotate store data by addr[0..1] bytes (8-bit halves here).
    let lo: Vec<NetId> = store_data[..8].to_vec();
    let hi: Vec<NetId> = store_data[8..].to_vec();
    let swapped: Vec<NetId> = hi.iter().chain(&lo).copied().collect();
    let aligned = b.mux_word(addr[0], &swapped, &store_data);

    // Store byte-enable mask.
    let na = b.not(addr[1]);
    let be0 = b.and2(is_store, na);
    let be1 = b.and2(is_store, addr[1]);

    let mut outs = addr;
    outs.extend(aligned);
    outs.extend([hit, hit0, hit1_only, be0, be1]);
    outs
}

/// TLU: masked interrupt priority logic with a trap-level comparator.
fn build_tlu(b: &mut NetlistBuilder) -> Vec<NetId> {
    let irq = b.inputs(8);
    let mask = b.inputs(8);
    let new_level = b.inputs(3);
    let cur_level = b.inputs(3);

    let masked: Vec<NetId> = irq.iter().zip(&mask).map(|(&i, &m)| b.and2(i, m)).collect();
    let grants = b.priority_encoder(&masked);
    let any = b.or_tree(&masked);
    // Take the trap only if new_level > cur_level: new - cur has no borrow
    // and levels differ.
    let (_, borrow) = b.subtractor(&new_level, &cur_level);
    let no_borrow = b.not(borrow);
    let eq = b.equal(&new_level, &cur_level);
    let neq = b.not(eq);
    let gt = b.and2(no_borrow, neq);
    let take = b.and2(any, gt);

    let mut outs = grants;
    outs.extend([any, take]);
    outs
}

/// FFU: floating-point front end — an 8×8 mantissa multiplier array and a
/// 6-bit exponent adder.
fn build_ffu(b: &mut NetlistBuilder) -> Vec<NetId> {
    let man_a = b.inputs(8);
    let man_b = b.inputs(8);
    let exp_a = b.inputs(6);
    let exp_b = b.inputs(6);

    let product = b.array_multiplier(&man_a, &man_b);
    let zero = b.constant(false);
    let (exp_sum, ovf) = b.ripple_adder(&exp_a, &exp_b, zero);

    let mut outs = product;
    outs.extend(exp_sum);
    outs.push(ovf);
    outs
}

/// Pads the netlist with deterministic filler logic up to `budget` gates,
/// returning the filler's observable outputs.
///
/// The filler grows a random logic cloud rooted at the core's nets. A
/// `redundant_fraction` of the budget goes to [`NetlistBuilder::redundant_zero`]
/// / [`redundant_one`](NetlistBuilder::redundant_one) pairs spliced into
/// live paths. Cloud outputs are folded into a handful of primary outputs
/// through mixed OR/MUX collector trees (realistic partial masking).
fn add_filler(
    b: &mut NetlistBuilder,
    roots: &[NetId],
    budget: usize,
    redundant_fraction: f64,
    seed: u64,
) -> Vec<NetId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<NetId> = roots.to_vec();
    if pool.is_empty() {
        pool.push(b.constant(false));
    }
    let mut collectors: Vec<NetId> = Vec::new();

    // Every unit gets at least one redundant insertion so the campaign's
    // "undetectable" class has ground truth even for the smallest unit.
    let redundant_target = if redundant_fraction > 0.0 {
        ((budget as f64 * redundant_fraction) as usize).max(8)
    } else {
        0
    };
    let mut redundant_emitted = 0usize;
    let mut gates_emitted = 0usize;

    while gates_emitted < budget {
        let pick = |rng: &mut StdRng, pool: &[NetId]| pool[rng.gen_range(0..pool.len())];
        if redundant_emitted < redundant_target && rng.gen_bool(0.06) {
            // Splice a chain of redundant constants into a live path.
            // z0 = a & !a is constant 0; every AND of a constant-0 net
            // with anything stays constant 0, so each chain link adds one
            // provably undetectable SA0 site. ORing the chain tail into a
            // live net keeps the surrounding function unchanged while the
            // links' SA1 faults remain detectable through the splice.
            // (The dual chain uses OR links on a constant-1 root.)
            let a = pick(&mut rng, &pool);
            let live = pick(&mut rng, &pool);
            let chain_len = rng.gen_range(3..8usize);
            let new = if rng.gen_bool(0.5) {
                let mut z = b.redundant_zero(a);
                for _ in 0..chain_len {
                    let other = pick(&mut rng, &pool);
                    z = b.and2(z, other);
                    b.mark_redundant(z, false);
                }
                b.or2(live, z)
            } else {
                let mut o = b.redundant_one(a);
                for _ in 0..chain_len {
                    let other = pick(&mut rng, &pool);
                    o = b.or2(o, other);
                    b.mark_redundant(o, true);
                }
                b.and2(live, o)
            };
            pool.push(new);
            redundant_emitted += chain_len;
            gates_emitted += chain_len + 3;
            continue;
        }
        let kind = match rng.gen_range(0..100) {
            0..=44 => GateKind::Xor,
            45..=62 => GateKind::And,
            63..=80 => GateKind::Or,
            81..=92 => GateKind::Mux,
            93..=96 => GateKind::Not,
            _ => GateKind::Xnor,
        };
        let out = match kind.arity() {
            1 => {
                let a = pick(&mut rng, &pool);
                b.gate(kind, &[a])
            }
            2 => {
                let a = pick(&mut rng, &pool);
                let c = pick(&mut rng, &pool);
                b.gate(kind, &[a, c])
            }
            _ => {
                let s = pick(&mut rng, &pool);
                let a = pick(&mut rng, &pool);
                let c = pick(&mut rng, &pool);
                b.gate(kind, &[s, a, c])
            }
        };
        gates_emitted += 1;
        pool.push(out);
        // Bound the working set, but fold the retired nets into a collector
        // first so no logic cone is silently orphaned (orphaned cones would
        // inflate the structurally-undetectable class beyond the intended
        // ground truth).
        if pool.len() > 96 {
            let retired: Vec<NetId> = pool.drain(..32).collect();
            let folded = b.xor_tree(&retired);
            collectors.push(folded);
        }
        if rng.gen_bool(0.11) {
            collectors.push(out);
        }
    }

    // Fold collectors into observable outputs in small groups. XOR folds
    // are transparent (any single flip propagates); a minority of OR folds
    // keeps a realistic slow-to-detect tail. A stage-boundary checker sees
    // all of these, so there is no need to compress aggressively.
    let mut outs = Vec::new();
    if collectors.is_empty() {
        collectors.push(*pool.last().expect("pool is never empty"));
    }
    for (i, chunk) in collectors.chunks(6).enumerate() {
        let folded = if i % 4 == 3 { b.or_tree(chunk) } else { b.xor_tree(chunk) };
        outs.push(folded);
    }
    // Ensure the most recent cloud frontier is observable too.
    let frontier = b.xor_tree(&pool[pool.len().saturating_sub(8)..]);
    outs.push(frontier);
    outs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_track_table_iii_areas() {
        let s = StageSizing::default();
        // LSU is the largest unit, FFU the smallest (Table III).
        assert!(s.gate_budget(Unit::Lsu) > s.gate_budget(Unit::Ifu));
        assert!(s.gate_budget(Unit::Ffu) < s.gate_budget(Unit::Exu));
        assert_eq!(s.gate_budget(Unit::Ifu), 840);
    }

    #[test]
    fn all_units_generate_valid_netlists() {
        let sizing = StageSizing { gates_per_mm2: 3_000.0, ..StageSizing::default() };
        for sn in all_stage_netlists(&sizing) {
            sn.netlist().validate().unwrap();
            assert!(sn.netlist().num_gates() >= sizing.gate_budget(sn.unit()));
            assert!(!sn.netlist().outputs().is_empty());
            assert!(
                !sn.netlist().redundant_constants().is_empty(),
                "{} should contain redundant ground truth",
                sn.unit()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let sizing = StageSizing { gates_per_mm2: 2_000.0, ..StageSizing::default() };
        let a = stage_netlist(Unit::Exu, &sizing);
        let b = stage_netlist(Unit::Exu, &sizing);
        assert_eq!(a.netlist(), b.netlist());
    }

    #[test]
    fn redundant_nets_are_actually_constant() {
        let sizing = StageSizing { gates_per_mm2: 2_000.0, ..StageSizing::default() };
        let sn = stage_netlist(Unit::Tlu, &sizing);
        let nl = sn.netlist();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..8 {
            let inputs: Vec<u64> = (0..nl.num_inputs()).map(|_| rng.gen()).collect();
            let values = nl.eval_all(&inputs);
            for &(net, val) in nl.redundant_constants() {
                let expect = if val { !0u64 } else { 0u64 };
                assert_eq!(values[net.index()], expect, "redundant net {net} not constant");
            }
        }
    }

    #[test]
    fn exu_core_adds_through_filler() {
        // With op = 0b100 (arith group, add), result bits must equal a + b
        // regardless of the filler.
        let sizing = StageSizing { gates_per_mm2: 2_000.0, ..StageSizing::default() };
        let sn = stage_netlist(Unit::Exu, &sizing);
        let nl = sn.netlist();
        let (a, bb) = (1234u64, 4321u64);
        let mut lanes = vec![0u64; nl.num_inputs()];
        for i in 0..WORD {
            lanes[i] = (a >> i) & 1;
            lanes[WORD + i] = (bb >> i) & 1;
        }
        lanes[2 * WORD + 2] = 1; // op[2] = 1 -> arith, op[0] = 0 -> add
        let out = nl.eval(&lanes);
        let got: u64 = (0..WORD).fold(0, |acc, i| acc | ((out[i] & 1) << i));
        assert_eq!(got, (a + bb) & 0xffff);
    }
}
