//! Incremental, event-driven stuck-at fault simulation.
//!
//! [`Netlist::eval_all_stuck`] re-evaluates every gate for every fault and
//! every pattern block. That is wasteful: a stuck-at fault only disturbs
//! the nets in its *fanout cone*, and on most pattern blocks the
//! disturbance dies out (logic masking) long before it reaches the
//! outputs. This module exploits both effects:
//!
//! * [`FaultSim`] precomputes a CSR fanout adjacency (which gates read
//!   each net) over the netlist, with gates permuted into **level-major
//!   slot order**: a stable sort of the topological gate order by logic
//!   level. Slot order is still topological, and every level occupies a
//!   contiguous slot run ("bucket"), so the event walk tests its frontier
//!   horizon once per bucket instead of once per gate.
//! * [`FaultSim::cone_into`] derives, once per fault site, the list of
//!   gates structurally reachable from the faulty net (ascending slot
//!   order), pre-split into level runs.
//! * [`FaultSim::eval_stuck`] starts from a cached good-value vector and
//!   simulates *only* the cone, stamping nets whose faulty value differs
//!   from the good value into an epoch-tagged [`SimScratch`]. The walk
//!   early-exits as soon as the event frontier has converged back to the
//!   good values (no remaining cone gate reads a differing net).
//!
//! The result is bit-identical to [`Netlist::eval_all_stuck`] — that
//! method stays as the reference oracle — at a fraction of the work:
//! cost per (fault, block) is `O(active cone)` instead of `O(gates)`.
//!
//! On top of the 64-lane walk, [`FaultSim::eval_stuck_wide`] and
//! [`WideScratch`] process **`W` pattern blocks (`W × 64` lanes) per
//! walk**: each net carries a [`SimBlock<W>`] of independent lane groups,
//! so one pass over the cone amortizes the event-walk bookkeeping
//! (frontier test, touched-list maintenance, gate decode) across `W`× the
//! patterns. Lane groups never mix; per group the walk is bit-identical
//! to the narrow one, which keeps group-aware detection accounting exact.
//!
//! The wide inner loop is **runtime-dispatched** over [`SimdKernel`]
//! backends (scalar, AVX2, AVX-512, NEON). Every backend computes the
//! same lane-wise boolean algebra, so detection words are byte-identical
//! across kernels — the differential tests in this module and in
//! `tests/` pin each dispatch path to the scalar kernel's exact output.
//!
//! # `unsafe` boundaries
//!
//! The crate denies `unsafe_op_in_unsafe_fn`: every unchecked load/store
//! sits in an explicit `unsafe` block whose soundness argument is local.
//! There are exactly two obligations, both discharged at construction
//! time by [`FaultSim::new`]:
//!
//! 1. every packed pin/output index is `< num_nets` (asserted once over
//!    the packed gate stream), and every walk asserts its value buffers
//!    are `num_nets` long before entering the unchecked loop;
//! 2. SIMD walk bodies are `#[target_feature]` functions, reachable only
//!    through the [`SimdKernel`] dispatch, which only offers kernels that
//!    runtime CPU detection reported available.

use crate::netlist::{Gate, GateKind, NetId, Netlist};

/// Memory cap for the precomputed per-net cone bitsets (bytes). Above
/// this, [`FaultSim::cone_into`] falls back to an on-demand worklist walk.
const CONE_BITS_BUDGET: usize = 16 << 20;

/// `W` independent 64-lane pattern blocks carried by one net during a
/// wide walk: `W × 64` test patterns per gate evaluation.
pub type SimBlock<const W: usize> = [u64; W];

/// One gate flattened to 16 bytes for the hot walk: three input pins
/// (unused pins repeat pin 0, turning `Buf`/`Not` into one-input
/// `And`/`Nand`) plus the output net and a 4-bit flag nibble — 2-bit
/// base op (AND/OR/XOR/MUX), an invert bit, and an is-primary-output
/// bit — packed into the last word. The flag encoding lets the walk
/// evaluate any gate with a handful of ALU selects instead of an
/// unpredictable indirect jump.
#[derive(Debug, Clone, Copy)]
struct PackedGate {
    pins: [u32; 3],
    /// `output_net << 4 | is_output << 3 | invert << 2 | base_op`.
    ko: u32,
    /// This gate's own slot — the walk's frontier test compares it
    /// against `last_needed` without a second stream.
    idx: u32,
    /// `last_reader[output_net]`, folded in so the frontier extension
    /// needs no scattered lookup.
    lr: u32,
}

const BASE_AND: u32 = 0;
const BASE_OR: u32 = 1;
const BASE_XOR: u32 = 2;
const BASE_MUX: u32 = 3;

impl PackedGate {
    fn new(gate: &Gate, is_output: bool, idx: u32, lr: u32) -> Self {
        let pin = |i: usize| gate.inputs.get(i).or_else(|| gate.inputs.first());
        let pad = pin(0).map_or(0, |n| n.0);
        let out = gate.output.0;
        assert!(out < 1 << 28, "net index exceeds packed-gate range");
        let (base, inv) = match gate.kind {
            // With pin 1 padded to pin 0, `a AND a` is a buffer.
            GateKind::Buf | GateKind::And => (BASE_AND, 0),
            GateKind::Not | GateKind::Nand => (BASE_AND, 1),
            GateKind::Or => (BASE_OR, 0),
            GateKind::Nor => (BASE_OR, 1),
            GateKind::Xor => (BASE_XOR, 0),
            GateKind::Xnor => (BASE_XOR, 1),
            GateKind::Mux => (BASE_MUX, 0),
            // Constants read no nets, so they appear in no cone; the
            // encoding is never evaluated.
            GateKind::Const0 | GateKind::Const1 => (BASE_AND, 0),
        };
        PackedGate {
            pins: [
                pin(0).map_or(pad, |n| n.0),
                pin(1).map_or(pad, |n| n.0),
                pin(2).map_or(pad, |n| n.0),
            ],
            ko: out << 4 | u32::from(is_output) << 3 | inv << 2 | base,
            idx,
            lr,
        }
    }

    #[inline(always)]
    fn output(self) -> u32 {
        self.ko >> 4
    }
}

/// One gate step of the event-driven walk: reads the XOR-difference
/// overlay, fires the gate branchlessly if any input differs, records
/// the output difference, and extends the frontier horizon.
///
/// The body is branchless apart from the dead-input skip: gate kinds and
/// outcomes are data-dependent with no usable pattern, so ALU selects
/// beat an indirect jump and conditional stores here, while dead
/// stretches of a converging frontier reduce to three loads per gate.
///
/// # Safety
///
/// `p.pins` and `p.output()` must be in range for both `good` and
/// `scratch.diff` — guaranteed for records built by [`FaultSim::new`]
/// against a `good` slice of `num_nets` values and a scratch sized by
/// [`SimScratch::begin`].
#[inline(always)]
unsafe fn fire_gate(p: &PackedGate, good: &[u64], scratch: &mut SimScratch, last_needed: &mut u32) {
    let [a, b, c] = p.pins;
    // SAFETY: pins/output range-checked at construction (caller contract).
    let (da, db, dc) = unsafe {
        (
            *scratch.diff.get_unchecked(a as usize),
            *scratch.diff.get_unchecked(b as usize),
            *scratch.diff.get_unchecked(c as usize),
        )
    };
    // No differing input ⇒ the gate reproduces its good value.
    if da | db | dc == 0 {
        return;
    }
    // SAFETY: same in-range guarantee as above.
    let (va, vb, vc) = unsafe {
        (
            *good.get_unchecked(a as usize) ^ da,
            *good.get_unchecked(b as usize) ^ db,
            *good.get_unchecked(c as usize) ^ dc,
        )
    };
    let base = p.ko & 3;
    let m_and = u64::from(base == BASE_AND).wrapping_neg();
    let m_or = u64::from(base == BASE_OR).wrapping_neg();
    let m_xor = u64::from(base == BASE_XOR).wrapping_neg();
    let m_mux = u64::from(base == BASE_MUX).wrapping_neg();
    let m_inv = (u64::from(p.ko) >> 2 & 1).wrapping_neg();
    let v = (((va & vb) & m_and)
        | ((va | vb) & m_or)
        | ((va ^ vb) & m_xor)
        | (((va & vb) | (!va & vc)) & m_mux))
        ^ m_inv;
    let out = p.output() as usize;
    // SAFETY: `out < num_nets` per the construction-time assert.
    let d = unsafe {
        let d = v ^ *good.get_unchecked(out);
        *scratch.diff.get_unchecked_mut(out) = d;
        d
    };
    scratch.touched.push(out as u32);
    // Primary outputs feed the detection word as they are walked.
    scratch.out_diff |= d & (u64::from(p.ko) >> 3 & 1).wrapping_neg();
    // Branchless frontier extension: differing outputs push the walk's
    // horizon to their last reader (folded into the packed record).
    let gated = p.lr & u32::from(d != 0).wrapping_neg();
    *last_needed = (*last_needed).max(gated);
}

/// Scalar `W`-block variant of [`fire_gate`]: one gate step over `W`
/// 64-lane pattern blocks at once. Lanes never interact — each
/// [`SimBlock<W>`] entry is `W` independent difference words — so the
/// result per lane group is bit-identical to running [`fire_gate`] on
/// that block alone, except that the shared frontier keeps walking while
/// *any* lane group still differs (extra fired gates write zero
/// difference for converged lanes).
///
/// This is the portable reference kernel; the SIMD kernels below compute
/// the identical boolean algebra chunk-wise and are pinned to it by
/// differential tests.
///
/// # Safety
///
/// Same contract as [`fire_gate`]: `p.pins` and `p.output()` must be in
/// range for both `good` and `scratch.diff`.
#[inline(always)]
unsafe fn fire_gate_wide_scalar<const W: usize>(
    p: &PackedGate,
    good: &[SimBlock<W>],
    scratch: &mut WideScratch<W>,
    last_needed: &mut u32,
) {
    let [a, b, c] = p.pins;
    // SAFETY: pins/output range-checked at construction (caller contract).
    let (da, db, dc) = unsafe {
        (
            *scratch.diff.get_unchecked(a as usize),
            *scratch.diff.get_unchecked(b as usize),
            *scratch.diff.get_unchecked(c as usize),
        )
    };
    let mut live = 0u64;
    for l in 0..W {
        live |= da[l] | db[l] | dc[l];
    }
    // No differing input in any lane group ⇒ all blocks reproduce their
    // good values.
    if live == 0 {
        return;
    }
    // SAFETY: same in-range guarantee as above.
    let (ga, gb, gc) = unsafe {
        (
            *good.get_unchecked(a as usize),
            *good.get_unchecked(b as usize),
            *good.get_unchecked(c as usize),
        )
    };
    let base = p.ko & 3;
    let m_and = u64::from(base == BASE_AND).wrapping_neg();
    let m_or = u64::from(base == BASE_OR).wrapping_neg();
    let m_xor = u64::from(base == BASE_XOR).wrapping_neg();
    let m_mux = u64::from(base == BASE_MUX).wrapping_neg();
    let m_inv = (u64::from(p.ko) >> 2 & 1).wrapping_neg();
    let m_out = (u64::from(p.ko) >> 3 & 1).wrapping_neg();
    let out = p.output() as usize;
    // SAFETY: `out < num_nets` per the construction-time assert.
    let gout = unsafe { *good.get_unchecked(out) };
    let mut d = [0u64; W];
    let mut any = 0u64;
    for l in 0..W {
        let va = ga[l] ^ da[l];
        let vb = gb[l] ^ db[l];
        let vc = gc[l] ^ dc[l];
        let v = (((va & vb) & m_and)
            | ((va | vb) & m_or)
            | ((va ^ vb) & m_xor)
            | (((va & vb) | (!va & vc)) & m_mux))
            ^ m_inv;
        d[l] = v ^ gout[l];
        scratch.out_diff[l] |= d[l] & m_out;
        any |= d[l];
    }
    // SAFETY: `out < num_nets`, and `scratch.diff` is `num_nets` long.
    unsafe {
        *scratch.diff.get_unchecked_mut(out) = d;
    }
    scratch.touched.push(out as u32);
    let gated = p.lr & u32::from(any != 0).wrapping_neg();
    *last_needed = (*last_needed).max(gated);
}

/// AVX2 kernel: the same gate step as [`fire_gate_wide_scalar`], four
/// lane groups (256 bits) per vector op. `W` must be a multiple of 4
/// ([`effective_kernel`] guarantees it).
///
/// # Safety
///
/// Caller must guarantee the [`fire_gate`] range contract, `W % 4 == 0`,
/// and that the CPU supports AVX2 (the enclosing walk is gated on
/// runtime detection).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn fire_gate_wide_avx2<const W: usize>(
    p: &PackedGate,
    good: &[SimBlock<W>],
    scratch: &mut WideScratch<W>,
    last_needed: &mut u32,
) {
    use core::arch::x86_64::*;
    let [a, b, c] = p.pins;
    let (a, b, c) = (a as usize, b as usize, c as usize);
    let out = p.output() as usize;
    let diff: *mut u64 = scratch.diff.as_mut_ptr().cast();
    let goodp: *const u64 = good.as_ptr().cast();
    // SAFETY: rows `a`, `b`, `c`, `out` are `< num_nets` (construction
    // assert), both buffers are `num_nets × W` u64s, and `W % 4 == 0`,
    // so every 4-lane chunk below stays inside its row. Loads/stores are
    // the unaligned (`loadu`/`storeu`) forms.
    unsafe {
        let mut live = _mm256_setzero_si256();
        for ch in 0..W / 4 {
            let o = ch * 4;
            let da = _mm256_loadu_si256(diff.add(a * W + o).cast());
            let db = _mm256_loadu_si256(diff.add(b * W + o).cast());
            let dc = _mm256_loadu_si256(diff.add(c * W + o).cast());
            live = _mm256_or_si256(live, _mm256_or_si256(da, _mm256_or_si256(db, dc)));
        }
        if _mm256_testz_si256(live, live) != 0 {
            return;
        }
        let base = p.ko & 3;
        let mask = |on: bool| _mm256_set1_epi64x(u64::from(on).wrapping_neg() as i64);
        let m_and = mask(base == BASE_AND);
        let m_or = mask(base == BASE_OR);
        let m_xor = mask(base == BASE_XOR);
        let m_mux = mask(base == BASE_MUX);
        let m_inv = mask(p.ko >> 2 & 1 != 0);
        let m_out = mask(p.ko >> 3 & 1 != 0);
        let od: *mut u64 = scratch.out_diff.as_mut_ptr();
        let mut any = _mm256_setzero_si256();
        for ch in 0..W / 4 {
            let o = ch * 4;
            let da = _mm256_loadu_si256(diff.add(a * W + o).cast());
            let db = _mm256_loadu_si256(diff.add(b * W + o).cast());
            let dc = _mm256_loadu_si256(diff.add(c * W + o).cast());
            let va = _mm256_xor_si256(_mm256_loadu_si256(goodp.add(a * W + o).cast()), da);
            let vb = _mm256_xor_si256(_mm256_loadu_si256(goodp.add(b * W + o).cast()), db);
            let vc = _mm256_xor_si256(_mm256_loadu_si256(goodp.add(c * W + o).cast()), dc);
            let ab = _mm256_and_si256(va, vb);
            let v = _mm256_or_si256(
                _mm256_or_si256(
                    _mm256_and_si256(ab, m_and),
                    _mm256_and_si256(_mm256_or_si256(va, vb), m_or),
                ),
                _mm256_or_si256(
                    _mm256_and_si256(_mm256_xor_si256(va, vb), m_xor),
                    // `_mm256_andnot_si256(va, vc)` = `!va & vc`.
                    _mm256_and_si256(_mm256_or_si256(ab, _mm256_andnot_si256(va, vc)), m_mux),
                ),
            );
            let v = _mm256_xor_si256(v, m_inv);
            let d = _mm256_xor_si256(v, _mm256_loadu_si256(goodp.add(out * W + o).cast()));
            _mm256_storeu_si256(diff.add(out * W + o).cast(), d);
            let acc = _mm256_loadu_si256(od.add(o).cast());
            _mm256_storeu_si256(od.add(o).cast(), _mm256_or_si256(acc, _mm256_and_si256(d, m_out)));
            any = _mm256_or_si256(any, d);
        }
        scratch.touched.push(out as u32);
        let gated = p.lr & u32::from(_mm256_testz_si256(any, any) == 0).wrapping_neg();
        *last_needed = (*last_needed).max(gated);
    }
}

/// AVX-512F kernel: eight lane groups (512 bits) per vector op. `W` must
/// be a multiple of 8 ([`effective_kernel`] guarantees it).
///
/// # Safety
///
/// Caller must guarantee the [`fire_gate`] range contract, `W % 8 == 0`,
/// and that the CPU supports AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn fire_gate_wide_avx512<const W: usize>(
    p: &PackedGate,
    good: &[SimBlock<W>],
    scratch: &mut WideScratch<W>,
    last_needed: &mut u32,
) {
    use core::arch::x86_64::*;
    let [a, b, c] = p.pins;
    let (a, b, c) = (a as usize, b as usize, c as usize);
    let out = p.output() as usize;
    let diff: *mut u64 = scratch.diff.as_mut_ptr().cast();
    let goodp: *const u64 = good.as_ptr().cast();
    // SAFETY: as in the AVX2 kernel, rows are in range, buffers are
    // `num_nets × W` u64s, and `W % 8 == 0` keeps each chunk in-row.
    unsafe {
        let mut live = _mm512_setzero_si512();
        for ch in 0..W / 8 {
            let o = ch * 8;
            let da = _mm512_loadu_si512(diff.add(a * W + o).cast());
            let db = _mm512_loadu_si512(diff.add(b * W + o).cast());
            let dc = _mm512_loadu_si512(diff.add(c * W + o).cast());
            live = _mm512_or_si512(live, _mm512_or_si512(da, _mm512_or_si512(db, dc)));
        }
        if _mm512_test_epi64_mask(live, live) == 0 {
            return;
        }
        let base = p.ko & 3;
        let mask = |on: bool| _mm512_set1_epi64(u64::from(on).wrapping_neg() as i64);
        let m_and = mask(base == BASE_AND);
        let m_or = mask(base == BASE_OR);
        let m_xor = mask(base == BASE_XOR);
        let m_mux = mask(base == BASE_MUX);
        let m_inv = mask(p.ko >> 2 & 1 != 0);
        let m_out = mask(p.ko >> 3 & 1 != 0);
        let od: *mut u64 = scratch.out_diff.as_mut_ptr();
        let mut any = _mm512_setzero_si512();
        for ch in 0..W / 8 {
            let o = ch * 8;
            let da = _mm512_loadu_si512(diff.add(a * W + o).cast());
            let db = _mm512_loadu_si512(diff.add(b * W + o).cast());
            let dc = _mm512_loadu_si512(diff.add(c * W + o).cast());
            let va = _mm512_xor_si512(_mm512_loadu_si512(goodp.add(a * W + o).cast()), da);
            let vb = _mm512_xor_si512(_mm512_loadu_si512(goodp.add(b * W + o).cast()), db);
            let vc = _mm512_xor_si512(_mm512_loadu_si512(goodp.add(c * W + o).cast()), dc);
            let ab = _mm512_and_si512(va, vb);
            let v = _mm512_or_si512(
                _mm512_or_si512(
                    _mm512_and_si512(ab, m_and),
                    _mm512_and_si512(_mm512_or_si512(va, vb), m_or),
                ),
                _mm512_or_si512(
                    _mm512_and_si512(_mm512_xor_si512(va, vb), m_xor),
                    // `_mm512_andnot_si512(va, vc)` = `!va & vc`.
                    _mm512_and_si512(_mm512_or_si512(ab, _mm512_andnot_si512(va, vc)), m_mux),
                ),
            );
            let v = _mm512_xor_si512(v, m_inv);
            let d = _mm512_xor_si512(v, _mm512_loadu_si512(goodp.add(out * W + o).cast()));
            _mm512_storeu_si512(diff.add(out * W + o).cast(), d);
            let acc = _mm512_loadu_si512(od.add(o).cast());
            _mm512_storeu_si512(od.add(o).cast(), _mm512_or_si512(acc, _mm512_and_si512(d, m_out)));
            any = _mm512_or_si512(any, d);
        }
        scratch.touched.push(out as u32);
        let gated = p.lr & u32::from(_mm512_test_epi64_mask(any, any) != 0).wrapping_neg();
        *last_needed = (*last_needed).max(gated);
    }
}

/// NEON kernel: two lane groups (128 bits) per vector op. `W` must be a
/// multiple of 2 ([`effective_kernel`] guarantees it).
///
/// # Safety
///
/// Caller must guarantee the [`fire_gate`] range contract, `W % 2 == 0`,
/// and that the CPU supports NEON.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
#[inline]
unsafe fn fire_gate_wide_neon<const W: usize>(
    p: &PackedGate,
    good: &[SimBlock<W>],
    scratch: &mut WideScratch<W>,
    last_needed: &mut u32,
) {
    use core::arch::aarch64::*;
    let [a, b, c] = p.pins;
    let (a, b, c) = (a as usize, b as usize, c as usize);
    let out = p.output() as usize;
    let diff: *mut u64 = scratch.diff.as_mut_ptr().cast();
    let goodp: *const u64 = good.as_ptr().cast();
    // SAFETY: as in the AVX2 kernel, rows are in range, buffers are
    // `num_nets × W` u64s, and `W % 2 == 0` keeps each chunk in-row.
    unsafe {
        let mut live = vdupq_n_u64(0);
        for ch in 0..W / 2 {
            let o = ch * 2;
            let da = vld1q_u64(diff.add(a * W + o));
            let db = vld1q_u64(diff.add(b * W + o));
            let dc = vld1q_u64(diff.add(c * W + o));
            live = vorrq_u64(live, vorrq_u64(da, vorrq_u64(db, dc)));
        }
        if vgetq_lane_u64(live, 0) | vgetq_lane_u64(live, 1) == 0 {
            return;
        }
        let base = p.ko & 3;
        let mask = |on: bool| vdupq_n_u64(u64::from(on).wrapping_neg());
        let m_and = mask(base == BASE_AND);
        let m_or = mask(base == BASE_OR);
        let m_xor = mask(base == BASE_XOR);
        let m_mux = mask(base == BASE_MUX);
        let m_inv = mask(p.ko >> 2 & 1 != 0);
        let m_out = mask(p.ko >> 3 & 1 != 0);
        let od: *mut u64 = scratch.out_diff.as_mut_ptr();
        let mut any = vdupq_n_u64(0);
        for ch in 0..W / 2 {
            let o = ch * 2;
            let da = vld1q_u64(diff.add(a * W + o));
            let db = vld1q_u64(diff.add(b * W + o));
            let dc = vld1q_u64(diff.add(c * W + o));
            let va = veorq_u64(vld1q_u64(goodp.add(a * W + o)), da);
            let vb = veorq_u64(vld1q_u64(goodp.add(b * W + o)), db);
            let vc = veorq_u64(vld1q_u64(goodp.add(c * W + o)), dc);
            let ab = vandq_u64(va, vb);
            let v = vorrq_u64(
                vorrq_u64(vandq_u64(ab, m_and), vandq_u64(vorrq_u64(va, vb), m_or)),
                vorrq_u64(
                    vandq_u64(veorq_u64(va, vb), m_xor),
                    // `vbicq_u64(vc, va)` = `vc & !va`.
                    vandq_u64(vorrq_u64(ab, vbicq_u64(vc, va)), m_mux),
                ),
            );
            let v = veorq_u64(v, m_inv);
            let d = veorq_u64(v, vld1q_u64(goodp.add(out * W + o)));
            vst1q_u64(diff.add(out * W + o), d);
            let acc = vld1q_u64(od.add(o));
            vst1q_u64(od.add(o), vorrq_u64(acc, vandq_u64(d, m_out)));
            any = vorrq_u64(any, d);
        }
        scratch.touched.push(out as u32);
        let live_out = vgetq_lane_u64(any, 0) | vgetq_lane_u64(any, 1);
        let gated = p.lr & u32::from(live_out != 0).wrapping_neg();
        *last_needed = (*last_needed).max(gated);
    }
}

/// Generates the two wide walk bodies (materialized-cone walk and
/// cone-bitset row walk) for one fire kernel, optionally compiled under
/// a `#[target_feature]` so the `#[inline]` fire kernel fuses into a
/// vectorized loop.
///
/// The walks are where the levelized scheduling lives:
///
/// * the cone walk iterates the cone's precomputed **level runs** and
///   tests the frontier horizon once per run — gates within a run never
///   read each other's outputs, so firing a whole run unconditionally is
///   result-identical (gates past the horizon self-skip on their
///   all-zero difference inputs);
/// * the row walk tests the horizon (and the block-0 lane-0 detection
///   freeze) once per 64-gate bitset word for the same reason.
macro_rules! wide_walks {
    ($cone_walk:ident, $row_walk:ident, $fire:ident $(, enable = $feat:literal)?) => {
        /// Materialized-cone wide walk (see [`wide_walks!`]).
        ///
        /// # Safety
        ///
        /// Caller must guarantee the corresponding fire kernel's contract:
        /// in-range packed records, `num_nets`-sized buffers, a `W`
        /// accepted by [`effective_kernel`] for this kernel, and (for SIMD
        /// kernels) runtime support for the enabled target feature.
        $(#[target_feature(enable = $feat)])?
        unsafe fn $cone_walk<const W: usize>(
            cone: &FaultCone,
            good: &[SimBlock<W>],
            scratch: &mut WideScratch<W>,
            mut last_needed: u32,
        ) {
            for run in cone.runs.windows(2) {
                let (s, e) = (run[0] as usize, run[1] as usize);
                // SAFETY: `runs` indexes `packed` by construction
                // (`cone_into` derives both from the same gate list).
                let first = unsafe { cone.packed.get_unchecked(s) };
                if first.idx >= last_needed {
                    // Runs ascend by slot: no later run can start below
                    // the horizon either — the frontier has converged.
                    break;
                }
                // SAFETY: `s..e` is in range for `packed` (see above).
                for p in unsafe { cone.packed.get_unchecked(s..e) } {
                    // SAFETY: caller discharges the fire contract.
                    unsafe { $fire::<W>(p, good, scratch, &mut last_needed) };
                }
            }
        }

        /// Cone-bitset row wide walk (see [`wide_walks!`]): detection
        /// oriented — stops at word granularity once block 0's lowest
        /// excited lane (`freeze`, a single-bit mask or 0) observes the
        /// fault.
        ///
        /// # Safety
        ///
        /// Same contract as the cone walk, plus: `row` must be a cone
        /// bitset row over `packed` (one bit per slot).
        $(#[target_feature(enable = $feat)])?
        unsafe fn $row_walk<const W: usize>(
            row: &[u64],
            packed: &[PackedGate],
            good: &[SimBlock<W>],
            scratch: &mut WideScratch<W>,
            mut last_needed: u32,
            freeze: u64,
        ) {
            for (wi, &wbits) in row.iter().enumerate() {
                if wbits == 0 {
                    continue;
                }
                if (wi * 64) as u32 >= last_needed {
                    // Every remaining slot is ≥ the frontier horizon.
                    break;
                }
                let mut w = wbits;
                while w != 0 {
                    let g = wi * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    // SAFETY: `g` indexes a gate (one bit per slot in the
                    // row); the fire contract is the caller's.
                    unsafe {
                        let p = packed.get_unchecked(g);
                        $fire::<W>(p, good, scratch, &mut last_needed);
                    }
                }
                // Block-0 excitation freeze: once the lowest excited
                // lane of lane group 0 detects, the group-aware verdict
                // (earliest block, then earliest lane) cannot change —
                // group 0's word only gains higher bits from here.
                if scratch.out_diff[0] & freeze != 0 {
                    return;
                }
            }
        }
    };
}

wide_walks!(cone_walk_scalar, row_walk_scalar, fire_gate_wide_scalar);
#[cfg(target_arch = "x86_64")]
wide_walks!(cone_walk_avx2, row_walk_avx2, fire_gate_wide_avx2, enable = "avx2");
#[cfg(target_arch = "x86_64")]
wide_walks!(cone_walk_avx512, row_walk_avx512, fire_gate_wide_avx512, enable = "avx512f");
#[cfg(target_arch = "aarch64")]
wide_walks!(cone_walk_neon, row_walk_neon, fire_gate_wide_neon, enable = "neon");

/// SIMD backend for the wide event walk, selected at runtime via CPU
/// feature detection ([`SimdKernel::detect`]) and overridable per engine
/// ([`FaultSim::set_kernel`]).
///
/// Every kernel computes the identical lane-wise boolean algebra, so
/// detection words and difference overlays are **byte-identical** across
/// kernels; differential tests pin each path to [`SimdKernel::Scalar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdKernel {
    /// Portable scalar reference kernel (any arch, any lane width).
    Scalar,
    /// AVX2, 4 lane groups per vector op (`x86_64`, `W % 4 == 0`).
    Avx2,
    /// AVX-512F, 8 lane groups per vector op (`x86_64`, `W % 8 == 0`).
    Avx512,
    /// NEON, 2 lane groups per vector op (`aarch64`, `W % 2 == 0`).
    Neon,
}

impl SimdKernel {
    /// The widest kernel the running CPU supports.
    #[must_use]
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::is_x86_feature_detected!("avx512f") {
                return SimdKernel::Avx512;
            }
            if std::is_x86_feature_detected!("avx2") {
                return SimdKernel::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return SimdKernel::Neon;
            }
        }
        SimdKernel::Scalar
    }

    /// Whether the running CPU can execute this kernel.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            SimdKernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdKernel::Avx2 => std::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            SimdKernel::Avx512 => std::is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "aarch64")]
            SimdKernel::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// Every kernel the running CPU supports ([`SimdKernel::Scalar`]
    /// first). Differential tests iterate this list.
    #[must_use]
    pub fn available() -> Vec<SimdKernel> {
        [SimdKernel::Scalar, SimdKernel::Avx2, SimdKernel::Avx512, SimdKernel::Neon]
            .into_iter()
            .filter(|k| k.is_available())
            .collect()
    }

    /// Stable lowercase name for bench rows and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimdKernel::Scalar => "scalar",
            SimdKernel::Avx2 => "avx2",
            SimdKernel::Avx512 => "avx512",
            SimdKernel::Neon => "neon",
        }
    }
}

/// The kernel actually dispatched for lane width `W`: each SIMD kernel
/// requires `W` to be a multiple of its chunk width, otherwise the call
/// degrades to the next narrower kernel (AVX-512 → AVX2 when `W % 4 ==
/// 0`) and ultimately to scalar. Never *upgrades*, so an engine pinned
/// to [`SimdKernel::Scalar`] stays scalar.
fn effective_kernel<const W: usize>(kernel: SimdKernel) -> SimdKernel {
    match kernel {
        SimdKernel::Scalar => SimdKernel::Scalar,
        SimdKernel::Avx2 if W.is_multiple_of(4) => SimdKernel::Avx2,
        SimdKernel::Avx512 if W.is_multiple_of(8) => SimdKernel::Avx512,
        SimdKernel::Avx512 if W.is_multiple_of(4) => SimdKernel::Avx2,
        SimdKernel::Neon if W.is_multiple_of(2) => SimdKernel::Neon,
        _ => SimdKernel::Scalar,
    }
}

/// Per-net fanout-cone bitsets: row `n` holds one bit per gate slot, set
/// iff the gate is structurally reachable from net `n`.
#[derive(Debug, Clone)]
struct ConeBits {
    /// `u64` words per row.
    words: usize,
    /// `num_nets` rows, row-major.
    bits: Vec<u64>,
}

/// Shared read-only engine state: fanout adjacency over one netlist.
///
/// Construction is `O(nets + gates log gates)` (the level sort) plus
/// (for netlists small enough to fit the budget) an
/// `O(edges × gates/64)` cone-bitset closure. The engine **owns** its
/// tables — it copies the output list and sizes out of the netlist and
/// keeps no borrow — so it can live inside long-lived state (per-unit
/// scan engines, campaign shards) without a self-referential lifetime.
/// It is `Sync`, so one instance can serve many worker threads.
///
/// Internally, gates are addressed by **slot**: a stable permutation of
/// the netlist's topological gate order sorted by logic level. All
/// adjacency tables (`readers`, `last_reader`, cone bitsets, packed gate
/// records) speak slot indices; [`FaultCone::gates`] therefore also
/// yields slots. Slot order is itself topological, so every walk over
/// ascending slots is a valid evaluation order.
#[derive(Debug, Clone)]
pub struct FaultSim {
    num_nets: usize,
    num_gates: usize,
    /// Primary-output nets, in the netlist's output order.
    outputs: Vec<NetId>,
    /// CSR row offsets: reader slots of net `n` are
    /// `readers[reader_off[n] as usize .. reader_off[n + 1] as usize]`.
    reader_off: Vec<u32>,
    /// Gate slots, ascending within each net's row.
    readers: Vec<u32>,
    /// Per net: largest reader slot **plus one** (0 = no readers).
    /// The event walk may stop at slot `s` once `s >= last_reader[n]`
    /// for every currently-differing net `n`.
    last_reader: Vec<u32>,
    /// Whether each net is a primary output (observed by detection).
    is_output: Vec<bool>,
    /// Flattened 16-byte copy of each gate in slot order, so the hot
    /// walk reads one contiguous stream instead of chasing each
    /// [`Gate::inputs`] heap allocation.
    packed: Vec<PackedGate>,
    /// Per slot: the end slot (exclusive) of its level bucket. Slots of
    /// equal logic level form contiguous runs; gates within a run never
    /// read each other's outputs, which lets walks fire whole runs
    /// without per-gate frontier tests.
    bucket_end: Vec<u32>,
    /// Per slot: the gate's logic level (≥ 1; primary inputs and
    /// constants sit at level 0). The levelized event walk buckets
    /// scheduled gates by this.
    slot_level: Vec<u32>,
    /// `max(slot_level) + 1` — bucket count for the levelized event walk
    /// (0 on a gate-free netlist).
    num_levels: usize,
    /// Precomputed transitive fanout, when it fits [`CONE_BITS_BUDGET`].
    cone_bits: Option<ConeBits>,
    /// Wide-walk SIMD backend ([`SimdKernel::detect`] at construction).
    kernel: SimdKernel,
}

impl FaultSim {
    /// Builds the fanout adjacency for `netlist`. The engine copies what
    /// it needs and does not borrow `netlist`.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let num_nets = netlist.num_nets();
        let gates = netlist.gates();
        let num_gates = gates.len();

        // Logic levels come from the IR level-analysis pass (primary
        // inputs and constants sit at level 0); the level-major slot
        // permutation and event-walk buckets below are derived from it.
        let net_level = crate::ir::analyze_levels(netlist).into_net_levels();
        // Level-major slot order: stable sort keeps the topological tie
        // break, so ascending slot order is still topological and every
        // level occupies one contiguous slot run.
        let mut slot_order: Vec<u32> =
            (0..u32::try_from(num_gates).expect("gate count exceeds u32")).collect();
        slot_order.sort_by_key(|&g| net_level[gates[g as usize].output.index()]);
        let slot_level: Vec<u32> =
            slot_order.iter().map(|&g| net_level[gates[g as usize].output.index()]).collect();
        let mut bucket_end = vec![0u32; num_gates];
        let mut end = num_gates as u32;
        for slot in (0..num_gates).rev() {
            bucket_end[slot] = end;
            if slot > 0 && slot_level[slot - 1] != slot_level[slot] {
                end = slot as u32;
            }
        }

        // Counting sort into CSR form keeps each row ascending because
        // gates are visited in slot order.
        let mut counts = vec![0u32; num_nets + 1];
        for gate in gates {
            for input in &gate.inputs {
                counts[input.index() + 1] += 1;
            }
        }
        let mut reader_off = counts;
        for i in 0..num_nets {
            reader_off[i + 1] += reader_off[i];
        }
        let mut cursor: Vec<u32> = reader_off[..num_nets].to_vec();
        let mut readers = vec![0u32; reader_off[num_nets] as usize];
        let mut last_reader = vec![0u32; num_nets];
        for (slot, &g) in slot_order.iter().enumerate() {
            let slot = slot as u32;
            for input in &gates[g as usize].inputs {
                let n = input.index();
                readers[cursor[n] as usize] = slot;
                cursor[n] += 1;
                last_reader[n] = slot + 1; // ascending visit ⇒ final value is max
            }
        }

        let mut is_output = vec![false; num_nets];
        for o in netlist.outputs() {
            is_output[o.index()] = true;
        }

        let packed: Vec<PackedGate> = slot_order
            .iter()
            .enumerate()
            .map(|(slot, &g)| {
                let gate = &gates[g as usize];
                let out = gate.output.index();
                PackedGate::new(gate, is_output[out], slot as u32, last_reader[out])
            })
            .collect();
        // Soundness gate for the unchecked loads in `eval_stuck`: every
        // pin and output index is in range for a `num_nets`-sized vector.
        for p in &packed {
            assert!(
                p.pins.iter().all(|&n| (n as usize) < num_nets) && (p.output() as usize) < num_nets,
                "packed gate references an out-of-range net"
            );
        }

        let words = num_gates.div_ceil(64);
        let cone_bits = if num_nets * words * 8 <= CONE_BITS_BUDGET {
            // Transitive closure by descending net index: every reader's
            // output net is numbered above the net it reads, so row
            // `out(g)` is final before any row that includes gate `g`.
            let mut bits = vec![0u64; num_nets * words];
            for n in (0..num_nets).rev() {
                let (head, tail) = bits.split_at_mut((n + 1) * words);
                let row = &mut head[n * words..];
                for &g in &readers[reader_off[n] as usize..reader_off[n + 1] as usize] {
                    row[g as usize / 64] |= 1u64 << (g % 64);
                    let out = packed[g as usize].output() as usize;
                    debug_assert!(out > n, "reader output must be numbered above its input");
                    let src = &tail[(out - n - 1) * words..(out - n) * words];
                    for (d, s) in row.iter_mut().zip(src) {
                        *d |= s;
                    }
                }
            }
            Some(ConeBits { words, bits })
        } else {
            None
        };

        let num_levels = slot_level.last().map_or(0, |&l| l as usize + 1);
        FaultSim {
            num_nets,
            num_gates,
            outputs: netlist.outputs().to_vec(),
            reader_off,
            readers,
            last_reader,
            is_output,
            packed,
            bucket_end,
            slot_level,
            num_levels,
            cone_bits,
            kernel: SimdKernel::detect(),
        }
    }

    /// Number of nets in the netlist this engine was built over.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Number of gates in the netlist this engine was built over.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.num_gates
    }

    /// Primary-output nets, in the netlist's output order.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// The SIMD backend wide walks currently dispatch to.
    #[must_use]
    pub fn kernel(&self) -> SimdKernel {
        self.kernel
    }

    /// Pins the wide-walk backend to `kernel`. Returns `false` (leaving
    /// the engine unchanged) if the running CPU does not support it.
    /// Lane widths a kernel cannot divide still degrade per call — see
    /// [`SimdKernel`].
    pub fn set_kernel(&mut self, kernel: SimdKernel) -> bool {
        if kernel.is_available() {
            self.kernel = kernel;
            true
        } else {
            false
        }
    }

    /// Gate slots reading `net`, ascending.
    #[must_use]
    pub fn readers_of(&self, net: NetId) -> &[u32] {
        let n = net.index();
        &self.readers[self.reader_off[n] as usize..self.reader_off[n + 1] as usize]
    }

    /// Rebuilds `cone` as the fanout cone of `net`: every gate whose value
    /// can be disturbed by a stuck-at fault on `net`, in ascending
    /// (levelized) slot order, pre-split into level runs. Buffers inside
    /// `cone` are reused across calls, so deriving one cone per fault
    /// site is cheap.
    pub fn cone_into(&self, net: NetId, cone: &mut FaultCone) {
        cone.begin();
        if let Some(cb) = &self.cone_bits {
            // Precomputed closure: emit set bits, ascending by construction.
            let row = &cb.bits[net.index() * cb.words..(net.index() + 1) * cb.words];
            for (w, &word) in row.iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let b = word.trailing_zeros();
                    cone.gates.push(w as u32 * 64 + b);
                    word &= word - 1;
                }
            }
        } else {
            // Worklist walk with stamp dedup. Reachability is
            // order-independent, so a plain vec queue suffices; one sort
            // restores the levelized (ascending) order.
            cone.begin_marks(self.num_gates);
            for &g in self.readers_of(net) {
                if cone.mark(g) {
                    cone.gates.push(g);
                }
            }
            let mut i = 0;
            while i < cone.gates.len() {
                let out = NetId(self.packed[cone.gates[i] as usize].output());
                i += 1;
                for &r in self.readers_of(out) {
                    if cone.mark(r) {
                        cone.gates.push(r);
                    }
                }
            }
            cone.gates.sort_unstable();
        }
        debug_assert!(cone.gates.windows(2).all(|w| w[0] < w[1]));
        cone.packed.extend(cone.gates.iter().map(|&g| self.packed[g as usize]));
        // Split the (slot-ascending) cone into level runs: a new run
        // starts whenever a slot crosses the previous slot's bucket end.
        let mut cur_end = 0u32;
        for (i, &g) in cone.gates.iter().enumerate() {
            if g >= cur_end {
                cone.runs.push(i as u32);
                cur_end = self.bucket_end[g as usize];
            }
        }
        cone.runs.push(cone.gates.len() as u32);
    }

    /// Whether cones come from the precomputed bitset closure — i.e. the
    /// netlist fit the memory budget. Cheap cones make per-fault cone
    /// caching across a whole campaign worthwhile.
    #[must_use]
    pub fn cheap_cones(&self) -> bool {
        self.cone_bits.is_some()
    }

    /// Convenience wrapper around [`cone_into`](FaultSim::cone_into)
    /// allocating a fresh [`FaultCone`].
    #[must_use]
    pub fn cone(&self, net: NetId) -> FaultCone {
        let mut cone = FaultCone::new();
        self.cone_into(net, &mut cone);
        cone
    }

    /// Event-driven fault evaluation against a cached good-value vector.
    ///
    /// `good` must be `netlist.eval_all(..)` for the pattern block being
    /// simulated, and `cone` the [`cone_into`](FaultSim::cone_into) result
    /// for `stuck.0`. Afterwards `scratch` holds the nets whose faulty
    /// value differs from `good` (query via [`SimScratch::value`],
    /// [`FaultSim::detect_word`] or [`FaultSim::output_diffs`]).
    ///
    /// Bit-identical to [`Netlist::eval_all_stuck`] on every net.
    pub fn eval_stuck(
        &self,
        good: &[u64],
        stuck: (NetId, bool),
        cone: &FaultCone,
        scratch: &mut SimScratch,
    ) {
        // Hard assert: with `scratch.begin` sizing `diff` to `num_nets`
        // and the construction-time pin-range check, this is the last
        // bound the unchecked loads below rely on.
        assert_eq!(good.len(), self.num_nets, "good vector length");
        scratch.begin(self.num_nets);
        let (fnet, fval) = stuck;
        let forced = if fval { !0u64 } else { 0u64 };
        if good[fnet.index()] == forced {
            // The net already carries the forced value in all 64 lanes:
            // the faulty circuit is indistinguishable on this block.
            return;
        }
        let fdiff = forced ^ good[fnet.index()];
        scratch.set_diff(fnet, fdiff);
        // A fault on a primary-output net is directly observable.
        scratch.out_diff |= fdiff & u64::from(self.is_output[fnet.index()]).wrapping_neg();
        let mut last_needed = self.last_reader[fnet.index()];

        // Fire whole level runs: gates within a run never read each
        // other's outputs, and gates past the horizon self-skip, so the
        // frontier test runs once per run instead of once per gate.
        for run in cone.runs.windows(2) {
            let (s, e) = (run[0] as usize, run[1] as usize);
            if cone.packed[s].idx >= last_needed {
                // Runs ascend by slot: the event frontier has converged
                // back to the good values.
                break;
            }
            for p in &cone.packed[s..e] {
                // SAFETY: pins and outputs were range-checked against
                // `num_nets` in `FaultSim::new`; `good` and
                // `scratch.diff` are both `num_nets` long
                // (asserted/sized above).
                unsafe { fire_gate(p, good, scratch, &mut last_needed) };
            }
        }
    }

    /// Detection-oriented variant of [`eval_stuck`](FaultSim::eval_stuck)
    /// that needs no materialized [`FaultCone`] and no per-fault cone
    /// derivation: with cone bitsets built it scans the precomputed
    /// bitset row in slot order (prefetch-friendly, branchless
    /// per-gate skip); without them it falls back to a levelized event
    /// walk over the per-level buckets (only gates with a differing
    /// input fire — `O(active frontier)` instead of `O(structural
    /// cone)`, which is what makes the fallback viable on netlists too
    /// large for the bitset budget).
    ///
    /// **Detection-exact, not value-exact**: a lane where the fault site
    /// is not excited carries the good circuit everywhere, so the detect
    /// word is always a bitwise subset of the site's excitation word.
    /// The walk therefore stops (at 64-slot word or level granularity)
    /// as soon as the **lowest excited lane** observes the fault — from
    /// that point the detect word can only gain *higher* bits and its
    /// `trailing_zeros` is already pinned. Relative to a full
    /// `eval_stuck`, the detect word's nonzero-ness and its
    /// `trailing_zeros` (the first detecting lane) are exact, but
    /// [`SimScratch::value`] is only meaningful for nets written before
    /// the stop. Campaign classification needs exactly the former two;
    /// dictionary building keeps the full walk.
    pub fn eval_stuck_detect(&self, good: &[u64], stuck: (NetId, bool), scratch: &mut SimScratch) {
        assert_eq!(good.len(), self.num_nets, "good vector length");
        scratch.begin(self.num_nets);
        let (fnet, fval) = stuck;
        let forced = if fval { !0u64 } else { 0u64 };
        if good[fnet.index()] == forced {
            // The net already carries the forced value in all 64 lanes:
            // the faulty circuit is indistinguishable on this block.
            return;
        }
        let fdiff = forced ^ good[fnet.index()];
        // Lowest excited lane: no detect-word bit below it can ever
        // appear, so detection there pins the verdict and the lane.
        let freeze = fdiff & fdiff.wrapping_neg();
        self.detect_walk(good, fnet, fdiff, freeze, scratch);
    }

    /// Evaluates **both** stuck-at polarities of `fnet` in one walk.
    ///
    /// The two polarities excite complementary lane sets — `fdiff` for
    /// stuck-at-0 is `good[fnet]`, for stuck-at-1 it is `!good[fnet]` —
    /// and lanes never interact, so seeding the walk with an all-ones
    /// difference (a per-lane bit flip at the site) simulates stuck-at-0
    /// in the lanes where the good value is 1 and stuck-at-1 in the
    /// rest. Afterwards `detect_word(..) & good[fnet]` is bit-identical
    /// to the stuck-at-0 walk's detect word and `detect_word(..) &
    /// !good[fnet]` to the stuck-at-1 one (same exactness contract as
    /// [`eval_stuck_detect`](FaultSim::eval_stuck_detect): nonzero-ness
    /// and `trailing_zeros` per polarity). One traversal classifies two
    /// faults — the campaign's first-block probe runs on site pairs.
    pub fn eval_flip_detect(&self, good: &[u64], fnet: NetId, scratch: &mut SimScratch) {
        assert_eq!(good.len(), self.num_nets, "good vector length");
        scratch.begin(self.num_nets);
        let g = good[fnet.index()];
        // Lowest excited lane of each polarity: the walk may stop only
        // once *both* verdicts are pinned (an unexcitable polarity
        // contributes no bit, so its side of the mask is 0 and the walk
        // runs until the other polarity detects or the frontier dies).
        let e0 = g & g.wrapping_neg();
        let e1 = !g & (!g).wrapping_neg();
        self.detect_walk(good, fnet, !0u64, e0 | e1, scratch);
    }

    /// Shared body of the detect walks: seeds `fdiff` at `fnet`,
    /// propagates, and stops early once every bit of `exit_mask` has
    /// appeared in the detection word (callers pass the lowest excited
    /// lane per polarity of interest — see the excitation-freeze notes
    /// on [`eval_stuck_detect`](FaultSim::eval_stuck_detect)).
    fn detect_walk(
        &self,
        good: &[u64],
        fnet: NetId,
        fdiff: u64,
        exit_mask: u64,
        scratch: &mut SimScratch,
    ) {
        scratch.set_diff(fnet, fdiff);
        scratch.out_diff |= fdiff & u64::from(self.is_output[fnet.index()]).wrapping_neg();
        if scratch.out_diff & exit_mask == exit_mask {
            return;
        }
        if let Some(cb) = &self.cone_bits {
            // Fast path: linear scan of the precomputed cone row. With
            // 64 patterns per lane the fault effect rarely dies, so most
            // cone gates are active anyway and the branchless in-order
            // scan beats event scheduling.
            let mut last_needed = self.last_reader[fnet.index()];
            let row = &cb.bits[fnet.index() * cb.words..][..cb.words];
            for (wi, &wbits) in row.iter().enumerate() {
                if wbits == 0 {
                    continue;
                }
                if (wi * 64) as u32 >= last_needed {
                    // Every remaining slot is ≥ the frontier horizon.
                    break;
                }
                let mut w = wbits;
                while w != 0 {
                    let g = wi * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    // SAFETY: `g` indexes a gate (the bitset has one bit
                    // per slot); pins/outputs were range-checked in
                    // `new`.
                    unsafe {
                        let p = self.packed.get_unchecked(g);
                        fire_gate(p, good, scratch, &mut last_needed);
                    }
                    // Excitation freeze at gate granularity: once every
                    // polarity's lowest excited lane detects, the
                    // classification outcomes and first detecting lanes
                    // cannot change (extra fired slots only OR higher
                    // bits into each polarity's detect word).
                    if scratch.out_diff & exit_mask == exit_mask {
                        return;
                    }
                }
            }
            return;
        }
        scratch.begin_events(self.num_levels, self.num_gates);
        let mut lo = self.num_levels;
        let mut hi = 0usize;
        for &g in self.readers_of(fnet) {
            if scratch.mark_gate(g) {
                let l = self.slot_level[g as usize] as usize;
                scratch.pending[l].push(g);
                lo = lo.min(l);
                hi = hi.max(l);
            }
        }
        let mut level = lo;
        while level <= hi {
            // Take the bucket out so firing can push into higher ones;
            // readers always sit in strictly higher levels, so the
            // drained bucket never grows under us.
            let bucket = std::mem::take(&mut scratch.pending[level]);
            for &g in &bucket {
                let p = &self.packed[g as usize];
                let [a, b, c] = p.pins;
                // SAFETY: pins and outputs were range-checked against
                // `num_nets` in `new`; `good` and `scratch.diff` are both
                // `num_nets` long (asserted/sized above).
                let (da, db, dc) = unsafe {
                    (
                        *scratch.diff.get_unchecked(a as usize),
                        *scratch.diff.get_unchecked(b as usize),
                        *scratch.diff.get_unchecked(c as usize),
                    )
                };
                // SAFETY: same in-range guarantee as above.
                let (va, vb, vc) = unsafe {
                    (
                        *good.get_unchecked(a as usize) ^ da,
                        *good.get_unchecked(b as usize) ^ db,
                        *good.get_unchecked(c as usize) ^ dc,
                    )
                };
                let base = p.ko & 3;
                let m_and = u64::from(base == BASE_AND).wrapping_neg();
                let m_or = u64::from(base == BASE_OR).wrapping_neg();
                let m_xor = u64::from(base == BASE_XOR).wrapping_neg();
                let m_mux = u64::from(base == BASE_MUX).wrapping_neg();
                let m_inv = (u64::from(p.ko) >> 2 & 1).wrapping_neg();
                let v = (((va & vb) & m_and)
                    | ((va | vb) & m_or)
                    | ((va ^ vb) & m_xor)
                    | (((va & vb) | (!va & vc)) & m_mux))
                    ^ m_inv;
                let out = p.output() as usize;
                // SAFETY: `out < num_nets` per the construction assert.
                let d = v ^ unsafe { *good.get_unchecked(out) };
                if d == 0 {
                    // The fault effect dies at this gate: `diff[out]` is
                    // already zero (each net is written by at most one
                    // fired gate), so there is nothing to record.
                    continue;
                }
                // SAFETY: as above.
                unsafe { *scratch.diff.get_unchecked_mut(out) = d };
                scratch.touched.push(out as u32);
                scratch.out_diff |= d & (u64::from(p.ko) >> 3 & 1).wrapping_neg();
                for &r in self.readers_of(NetId(out as u32)) {
                    if scratch.mark_gate(r) {
                        let l = self.slot_level[r as usize] as usize;
                        scratch.pending[l].push(r);
                        hi = hi.max(l);
                    }
                }
            }
            // Return the drained (empty-again) bucket for reuse.
            let mut bucket = bucket;
            bucket.clear();
            scratch.pending[level] = bucket;
            // Excitation freeze at level granularity: once every
            // polarity's lowest excited lane detects, the classification
            // outcomes and first detecting lanes cannot change (further
            // levels only OR higher bits into each polarity's detect
            // word). Scheduled-but-unfired levels are cleared so every
            // bucket is empty again for the next walk.
            if scratch.out_diff & exit_mask == exit_mask {
                for b in &mut scratch.pending[level + 1..=hi] {
                    b.clear();
                }
                break;
            }
            level += 1;
        }
    }

    /// `W × 64`-lane event-driven fault evaluation: `W` 64-pattern
    /// blocks in one walk, dispatched to the engine's [`SimdKernel`].
    ///
    /// `good` must hold, per net, the good values of the `W` blocks
    /// being simulated (see [`pack_blocks`]), and `cone` the
    /// [`cone_into`](FaultSim::cone_into) result for `stuck.0`. Lane
    /// groups are independent: afterwards, lane group `g` of the scratch
    /// (difference overlay, detection word) is bit-identical to an
    /// [`eval_stuck`](FaultSim::eval_stuck) over block `g` alone —
    /// regardless of the dispatched kernel. The walk shares one frontier
    /// across the blocks, so it only converges once *every* block's
    /// fault effect has died out — the cost of a group is bounded by its
    /// widest member, not their sum.
    pub fn eval_stuck_wide<const W: usize>(
        &self,
        good: &[SimBlock<W>],
        stuck: (NetId, bool),
        cone: &FaultCone,
        scratch: &mut WideScratch<W>,
    ) {
        assert_eq!(good.len(), self.num_nets, "good vector length");
        scratch.begin(self.num_nets);
        let Some(last_needed) = self.seed_wide(good, stuck, scratch) else {
            return;
        };
        // SAFETY (all arms): pins and outputs were range-checked against
        // `num_nets` in `FaultSim::new`; `good` and `scratch.diff` are
        // both `num_nets` long (asserted/sized above); `effective_kernel`
        // only returns kernels whose chunk width divides `W`, and SIMD
        // kernels only when `self.kernel` passed runtime CPU detection.
        match effective_kernel::<W>(self.kernel) {
            #[cfg(target_arch = "x86_64")]
            SimdKernel::Avx2 => unsafe { cone_walk_avx2::<W>(cone, good, scratch, last_needed) },
            #[cfg(target_arch = "x86_64")]
            SimdKernel::Avx512 => unsafe {
                cone_walk_avx512::<W>(cone, good, scratch, last_needed)
            },
            #[cfg(target_arch = "aarch64")]
            SimdKernel::Neon => unsafe { cone_walk_neon::<W>(cone, good, scratch, last_needed) },
            _ => unsafe { cone_walk_scalar::<W>(cone, good, scratch, last_needed) },
        }
    }

    /// `W × 64`-lane detection-oriented walk over the precomputed cone
    /// bitset row — the [`eval_stuck_detect`](FaultSim::eval_stuck_detect)
    /// analogue for `W` pattern blocks at once, dispatched to the
    /// engine's [`SimdKernel`]. Returns `false` (doing nothing) when the
    /// engine was built without cone bitsets; callers then fall back to
    /// [`cone_into`](FaultSim::cone_into) +
    /// [`eval_stuck_wide`](FaultSim::eval_stuck_wide).
    ///
    /// **Detection-exact per lane group**: each detection word's
    /// nonzero-ness and `trailing_zeros` match a standalone walk of that
    /// block, with one exception mirroring the narrow variant's
    /// excitation freeze — once the lowest excited lane of lane group 0
    /// observes the fault, the walk stops (at word granularity), because
    /// group 0's word is a bitwise subset of the site's block-0
    /// excitation: group-aware accounting (earliest block wins, then
    /// earliest lane) is already pinned at block 0 and no lower lane of
    /// it can ever appear.
    pub fn eval_stuck_detect_wide<const W: usize>(
        &self,
        good: &[SimBlock<W>],
        stuck: (NetId, bool),
        scratch: &mut WideScratch<W>,
    ) -> bool {
        let Some(cb) = &self.cone_bits else {
            return false;
        };
        assert_eq!(good.len(), self.num_nets, "good vector length");
        scratch.begin(self.num_nets);
        let Some(last_needed) = self.seed_wide(good, stuck, scratch) else {
            return true;
        };
        // Lowest excited lane of block 0: group 0's detect word is a
        // subset of the site's block-0 excitation, so detection there
        // pins the earliest (block, lane) verdict.
        let f0 = (if stuck.1 { !0u64 } else { 0 }) ^ good[stuck.0.index()][0];
        let freeze = f0 & f0.wrapping_neg();
        if scratch.out_diff[0] & freeze != 0 {
            return true;
        }
        let row = &cb.bits[stuck.0.index() * cb.words..][..cb.words];
        // SAFETY (all arms): as in `eval_stuck_wide`, plus `row` is this
        // engine's own cone bitset row (one bit per slot of `packed`).
        match effective_kernel::<W>(self.kernel) {
            #[cfg(target_arch = "x86_64")]
            SimdKernel::Avx2 => unsafe {
                row_walk_avx2::<W>(row, &self.packed, good, scratch, last_needed, freeze)
            },
            #[cfg(target_arch = "x86_64")]
            SimdKernel::Avx512 => unsafe {
                row_walk_avx512::<W>(row, &self.packed, good, scratch, last_needed, freeze)
            },
            #[cfg(target_arch = "aarch64")]
            SimdKernel::Neon => unsafe {
                row_walk_neon::<W>(row, &self.packed, good, scratch, last_needed, freeze)
            },
            _ => unsafe {
                row_walk_scalar::<W>(row, &self.packed, good, scratch, last_needed, freeze)
            },
        }
        true
    }

    /// Shared wide-walk prologue: seeds the fault-site difference and
    /// the primary-output detection words, and returns the initial
    /// frontier horizon — or `None` when every block already carries the
    /// forced value (the walk has nothing to do).
    fn seed_wide<const W: usize>(
        &self,
        good: &[SimBlock<W>],
        stuck: (NetId, bool),
        scratch: &mut WideScratch<W>,
    ) -> Option<u32> {
        let (fnet, fval) = stuck;
        let forced = if fval { !0u64 } else { 0u64 };
        let site = good[fnet.index()];
        let mut fdiff = [0u64; W];
        let mut any = 0u64;
        for l in 0..W {
            fdiff[l] = forced ^ site[l];
            any |= fdiff[l];
        }
        if any == 0 {
            return None;
        }
        scratch.set_diff(fnet, fdiff);
        let m_out = u64::from(self.is_output[fnet.index()]).wrapping_neg();
        for (o, d) in scratch.out_diff.iter_mut().zip(fdiff) {
            *o |= d & m_out;
        }
        Some(self.last_reader[fnet.index()])
    }

    /// Detection word after [`eval_stuck`](FaultSim::eval_stuck): bit
    /// `i` set iff pattern lane `i` exposes the fault at any primary
    /// output. `O(1)` — accumulated during the walk.
    #[must_use]
    pub fn detect_word(&self, good: &[u64], scratch: &SimScratch) -> u64 {
        let _ = good;
        scratch.out_diff
    }

    /// Per-output difference words (`faulty ^ good`) in primary-output
    /// order, as consumed by syndrome hashing. Untouched outputs yield 0.
    pub fn output_diffs<'s>(
        &'s self,
        good: &'s [u64],
        scratch: &'s SimScratch,
    ) -> impl Iterator<Item = u64> + 's {
        self.outputs.iter().map(move |&o| scratch.value(good, o) ^ good[o.index()])
    }
}

/// Fanout-cone gate list for one fault site (see [`FaultSim::cone_into`]).
///
/// Holds reusable mark buffers so cones for successive fault sites can be
/// derived without reallocating.
#[derive(Debug, Default, Clone)]
pub struct FaultCone {
    /// Affected gate slots, ascending (= levelized order).
    gates: Vec<u32>,
    /// Flattened gate records parallel to `gates`, so the event walk
    /// streams one contiguous buffer instead of gathering from the full
    /// gate table (whose access pattern defeats the prefetcher).
    packed: Vec<PackedGate>,
    /// Level-run boundaries into `packed`: run `r` is
    /// `packed[runs[r]..runs[r + 1]]`, one run per logic level present
    /// in the cone. Walks test the frontier horizon once per run.
    runs: Vec<u32>,
    /// Epoch stamps per gate; a gate is in the current cone iff its stamp
    /// equals `epoch`. Only the fallback walk uses these.
    stamp: Vec<u32>,
    epoch: u32,
}

impl FaultCone {
    /// Creates an empty cone.
    #[must_use]
    pub fn new() -> Self {
        FaultCone::default()
    }

    /// Gate slots in the cone, ascending.
    #[must_use]
    pub fn gates(&self) -> &[u32] {
        &self.gates
    }

    fn begin(&mut self) {
        self.gates.clear();
        self.packed.clear();
        self.runs.clear();
    }

    /// Lazily sizes the dedup stamps (fallback walk only).
    fn begin_marks(&mut self, num_gates: usize) {
        if self.stamp.len() < num_gates {
            self.stamp.resize(num_gates, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `gate`; returns `false` if it was already marked this epoch.
    fn mark(&mut self, gate: u32) -> bool {
        let slot = &mut self.stamp[gate as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// XOR-difference overlay used by [`FaultSim::eval_stuck`].
///
/// `diff[n]` holds `faulty ^ good` for net `n` — zero everywhere the
/// fault has no effect — so an overlay read is a single extra XOR and the
/// walk needs no stamps or epochs. `begin` re-zeroes only the entries the
/// previous evaluation wrote (via `touched`), keeping every evaluation
/// allocation-free and `O(walked gates)`.
#[derive(Debug, Default, Clone)]
pub struct SimScratch {
    diff: Vec<u64>,
    touched: Vec<u32>,
    /// OR of `faulty ^ good` over primary-output nets, accumulated while
    /// the walk runs.
    out_diff: u64,
    /// Levelized event-walk state ([`FaultSim::eval_stuck_detect`]):
    /// scheduled gate slots per logic level. All buckets are empty
    /// between walks (drained in level order, or cleared on the lane-0
    /// freeze), so only the walked levels cost anything.
    pending: Vec<Vec<u32>>,
    /// Epoch-tagged dedup stamps, one per gate slot: a gate schedules
    /// at most once per walk even when several of its inputs differ.
    gate_stamp: Vec<u32>,
    gate_epoch: u32,
}

impl SimScratch {
    /// Creates an empty scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        SimScratch::default()
    }

    fn begin(&mut self, num_nets: usize) {
        for &n in &self.touched {
            self.diff[n as usize] = 0;
        }
        self.touched.clear();
        self.out_diff = 0;
        if self.diff.len() < num_nets {
            self.diff.resize(num_nets, 0);
        }
    }

    fn set_diff(&mut self, net: NetId, diff: u64) {
        self.diff[net.index()] = diff;
        self.touched.push(net.0);
    }

    /// Sizes the event-walk buckets and stamps and opens a new epoch.
    fn begin_events(&mut self, num_levels: usize, num_gates: usize) {
        if self.pending.len() < num_levels {
            self.pending.resize_with(num_levels, Vec::new);
        }
        if self.gate_stamp.len() < num_gates {
            self.gate_stamp.resize(num_gates, 0);
        }
        self.gate_epoch = self.gate_epoch.wrapping_add(1);
        if self.gate_epoch == 0 {
            self.gate_stamp.fill(0);
            self.gate_epoch = 1;
        }
    }

    /// Marks gate `slot`; returns `false` if already scheduled this walk.
    fn mark_gate(&mut self, slot: u32) -> bool {
        let stamp = &mut self.gate_stamp[slot as usize];
        if *stamp == self.gate_epoch {
            false
        } else {
            *stamp = self.gate_epoch;
            true
        }
    }

    /// The faulty value of `net` after an evaluation: the good value
    /// XORed with the recorded difference (zero where undisturbed).
    #[must_use]
    pub fn value(&self, good: &[u64], net: NetId) -> u64 {
        good[net.index()] ^ self.diff[net.index()]
    }

    /// Nets written by the last event walk, in the order it reached them:
    /// a superset of the differing nets (non-differing entries carry the
    /// good value, so difference queries over them still read as zero).
    #[must_use]
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }
}

/// `W × 64`-lane XOR-difference overlay used by
/// [`FaultSim::eval_stuck_wide`]: `W` independent 64-lane pattern
/// blocks ("lane groups") simulated in one event walk. `diff[n][g]`
/// holds `faulty ^ good` for net `n` on block `g`.
///
/// The lane width defaults to the historical `W = 4` in type position;
/// expression-position constructors need a turbofish
/// (`WideScratch::<8>::new()`).
#[derive(Debug, Clone)]
pub struct WideScratch<const W: usize = 4> {
    diff: Vec<SimBlock<W>>,
    touched: Vec<u32>,
    /// OR of `faulty ^ good` over primary-output nets, per lane group.
    out_diff: SimBlock<W>,
}

impl<const W: usize> WideScratch<W> {
    /// Creates an empty scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        WideScratch { diff: Vec::new(), touched: Vec::new(), out_diff: [0; W] }
    }

    fn begin(&mut self, num_nets: usize) {
        for &n in &self.touched {
            self.diff[n as usize] = [0; W];
        }
        self.touched.clear();
        self.out_diff = [0; W];
        if self.diff.len() < num_nets {
            self.diff.resize(num_nets, [0; W]);
        }
    }

    fn set_diff(&mut self, net: NetId, diff: SimBlock<W>) {
        self.diff[net.index()] = diff;
        self.touched.push(net.0);
    }

    /// Per-lane-group detection words after an evaluation: entry `g`,
    /// bit `i` set iff pattern lane `i` of block `g` exposes the fault
    /// at any primary output. `O(1)` — accumulated during the walk.
    #[must_use]
    pub fn detect_words(&self) -> SimBlock<W> {
        self.out_diff
    }

    /// The faulty values of `net` (one word per lane group) after an
    /// evaluation: the good values XORed with the recorded differences.
    #[must_use]
    pub fn value(&self, good: &[SimBlock<W>], net: NetId) -> SimBlock<W> {
        let g = good[net.index()];
        let d = self.diff[net.index()];
        let mut v = [0u64; W];
        for l in 0..W {
            v[l] = g[l] ^ d[l];
        }
        v
    }

    /// Nets written by the last event walk (see [`SimScratch::touched`]).
    #[must_use]
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }
}

impl<const W: usize> Default for WideScratch<W> {
    fn default() -> Self {
        Self::new()
    }
}

/// Packs up to `W` 64-lane good-value vectors (one per pattern block,
/// each `num_nets` long as produced by `Netlist::eval_all`) into the
/// lane-group layout consumed by [`FaultSim::eval_stuck_wide`]. When
/// fewer than `W` blocks are supplied, the trailing lane groups repeat
/// the last block so padded lanes behave like real patterns; callers
/// must ignore their detection words.
///
/// # Panics
///
/// Panics on an empty slice, more than `W` blocks, or blocks of unequal
/// length.
#[must_use]
pub fn pack_blocks<const W: usize>(blocks: &[&[u64]]) -> Vec<SimBlock<W>> {
    assert!((1..=W).contains(&blocks.len()), "pack_blocks takes 1..=W blocks");
    let nets = blocks[0].len();
    assert!(blocks.iter().all(|b| b.len() == nets), "block lengths must agree");
    let last = blocks.len() - 1;
    (0..nets)
        .map(|n| {
            let mut group = [0u64; W];
            for (g, slot) in group.iter_mut().enumerate() {
                *slot = blocks[g.min(last)][n];
            }
            group
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_inputs(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    /// Checks every stuck-at fault on every net of `nl` against the
    /// full-re-evaluation oracle, over several pattern blocks — once with
    /// the precomputed cone bitsets and once with the worklist fallback.
    fn assert_matches_oracle(nl: &Netlist) {
        let mut sim = FaultSim::new(nl);
        assert!(sim.cone_bits.is_some(), "test netlists fit the cone-bitset budget");
        assert_matches_oracle_with(nl, &sim);
        sim.cone_bits = None;
        assert_matches_oracle_with(nl, &sim);
    }

    fn assert_matches_oracle_with(nl: &Netlist, sim: &FaultSim) {
        let mut cone = FaultCone::new();
        let mut scratch = SimScratch::new();
        let mut det_scratch = SimScratch::new();
        for block in 0..4u64 {
            let inputs = random_inputs(nl.num_inputs(), 0xBEEF ^ block);
            let good = nl.eval_all(&inputs);
            for net in 0..nl.num_nets() as u32 {
                let net = NetId(net);
                sim.cone_into(net, &mut cone);
                for stuck in [false, true] {
                    let oracle = nl.eval_all_stuck(&inputs, (net, stuck));
                    sim.eval_stuck(&good, (net, stuck), &cone, &mut scratch);
                    for n in 0..nl.num_nets() as u32 {
                        assert_eq!(
                            scratch.value(&good, NetId(n)),
                            oracle[n as usize],
                            "net n{n} mismatch for fault ({net}, sa{})",
                            u8::from(stuck)
                        );
                    }
                    // Detection word must match the oracle's output diff.
                    let mut oracle_diff = 0u64;
                    for (o, g) in nl.outputs().iter().zip(nl.output_values(&good)) {
                        oracle_diff |= oracle[o.index()] ^ g;
                    }
                    assert_eq!(sim.detect_word(&good, &scratch), oracle_diff);
                    // The levelized event-walk detection variant must
                    // agree on detection and the first detecting lane
                    // (it may stop early once lane 0 fires).
                    sim.eval_stuck_detect(&good, (net, stuck), &mut det_scratch);
                    let det = sim.detect_word(&good, &det_scratch);
                    assert_eq!(
                        det != 0,
                        oracle_diff != 0,
                        "detect variant disagreement for fault ({net}, sa{})",
                        u8::from(stuck)
                    );
                    if oracle_diff != 0 {
                        assert_eq!(det.trailing_zeros(), oracle_diff.trailing_zeros());
                    }
                }
            }
        }
    }

    #[test]
    fn matches_oracle_on_adder() {
        let mut b = NetlistBuilder::new();
        let a = b.inputs(6);
        let bb = b.inputs(6);
        let zero = b.constant(false);
        let (sum, carry) = b.ripple_adder(&a, &bb, zero);
        b.outputs(&sum);
        b.output(carry);
        assert_matches_oracle(&b.finish());
    }

    #[test]
    fn matches_oracle_on_mixed_logic() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(8);
        let x = b.xor_tree(&i);
        let y = b.and_tree(&i[..4]);
        let z = b.mux2(i[0], x, y);
        let dead = b.and2(i[6], i[7]); // unobserved cone
        let _ = dead;
        b.output(z);
        b.output(y);
        assert_matches_oracle(&b.finish());
    }

    #[test]
    fn cone_is_ascending_and_complete() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(4);
        let x = b.xor2(i[0], i[1]);
        let y = b.and2(x, i[2]);
        let z = b.or2(y, i[3]);
        b.output(z);
        let nl = b.finish();
        let sim = FaultSim::new(&nl);
        // Fault on input 0 disturbs all three gates.
        assert_eq!(sim.cone(i[0]).gates().len(), 3);
        // Fault on the output net disturbs nothing downstream.
        assert!(sim.cone(z).gates().is_empty());
        // Fault on input 3 only disturbs the final OR.
        assert_eq!(sim.cone(i[3]).gates().len(), 1);
    }

    #[test]
    fn level_buckets_partition_slots() {
        let mut b = NetlistBuilder::new();
        let a = b.inputs(5);
        let bb = b.inputs(5);
        let zero = b.constant(false);
        let (sum, carry) = b.ripple_adder(&a, &bb, zero);
        b.outputs(&sum);
        b.output(carry);
        let nl = b.finish();
        let sim = FaultSim::new(&nl);
        // Bucket ends are non-decreasing, strictly above their slot, and
        // every slot inside a bucket shares the same end.
        for slot in 0..sim.num_gates {
            let end = sim.bucket_end[slot] as usize;
            assert!(end > slot && end <= sim.num_gates);
            for s in slot..end {
                assert_eq!(sim.bucket_end[s] as usize, end, "slot {s} in bucket of {slot}");
            }
        }
        // Slot order is topological: every reader of a gate's output
        // sits in a strictly later slot, and in a strictly later bucket.
        for p in &sim.packed {
            for &r in sim.readers_of(NetId(p.output())) {
                assert!(r > p.idx, "reader slot precedes driver");
                assert!(r >= sim.bucket_end[p.idx as usize], "reader in driver's bucket");
            }
        }
        // Cone runs cover the cone exactly, in order.
        let mut cone = FaultCone::new();
        for net in 0..nl.num_nets() as u32 {
            sim.cone_into(NetId(net), &mut cone);
            assert_eq!(cone.runs[0], 0);
            assert_eq!(*cone.runs.last().unwrap() as usize, cone.gates.len());
            for run in cone.runs.windows(2) {
                assert!(run[0] < run[1] || cone.gates.is_empty());
                let end = sim.bucket_end[cone.gates[run[0] as usize] as usize];
                for &g in &cone.gates[run[0] as usize..run[1] as usize] {
                    assert!(g < end, "cone run crosses a bucket boundary");
                }
            }
        }
    }

    #[test]
    fn forced_value_equal_to_good_touches_nothing() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let x = b.and2(i[0], i[1]);
        b.output(x);
        let nl = b.finish();
        let sim = FaultSim::new(&nl);
        let cone = sim.cone(i[0]);
        let mut scratch = SimScratch::new();
        // Input 0 all-ones; stuck-at-1 on it changes nothing.
        let good = nl.eval_all(&[!0, 0]);
        sim.eval_stuck(&good, (i[0], true), &cone, &mut scratch);
        assert!(scratch.touched().is_empty());
        assert_eq!(sim.detect_word(&good, &scratch), 0);
    }

    /// Every fault, over `W` pattern blocks: one wide walk must be
    /// bit-identical, lane group by lane group, to `W` narrow walks —
    /// values on every net, detection words, and the detect variant's
    /// group-aware verdict (earliest block, then earliest lane) — for
    /// the given kernel.
    fn assert_wide_matches_narrow<const W: usize>(nl: &Netlist, kernel: SimdKernel) {
        let mut sim = FaultSim::new(nl);
        assert!(sim.cone_bits.is_some(), "test netlists fit the cone-bitset budget");
        assert!(sim.set_kernel(kernel));
        for pass in 0..2 {
            if pass == 1 {
                sim.cone_bits = None;
            }
            let mut cone = FaultCone::new();
            let mut narrow = SimScratch::new();
            let mut wide = WideScratch::<W>::new();
            let mut det = WideScratch::<W>::new();
            let blocks: Vec<Vec<u64>> =
                (0..W as u64).map(|b| random_inputs(nl.num_inputs(), 0xD1CE ^ b)).collect();
            let goods: Vec<Vec<u64>> = blocks.iter().map(|b| nl.eval_all(b)).collect();
            let packed = pack_blocks::<W>(&goods.iter().map(Vec::as_slice).collect::<Vec<_>>());
            for net in 0..nl.num_nets() as u32 {
                let net = NetId(net);
                sim.cone_into(net, &mut cone);
                for stuck in [false, true] {
                    sim.eval_stuck_wide(&packed, (net, stuck), &cone, &mut wide);
                    let words = wide.detect_words();
                    let mut first = None;
                    for (g, good) in goods.iter().enumerate() {
                        sim.eval_stuck(good, (net, stuck), &cone, &mut narrow);
                        for n in 0..nl.num_nets() as u32 {
                            assert_eq!(
                                wide.value(&packed, NetId(n))[g],
                                narrow.value(good, NetId(n)),
                                "net n{n} lane group {g} for fault ({net}, sa{}) on {}",
                                u8::from(stuck),
                                kernel.name()
                            );
                        }
                        let word = sim.detect_word(good, &narrow);
                        assert_eq!(
                            words[g],
                            word,
                            "detect word, lane group {g}, {}",
                            kernel.name()
                        );
                        if first.is_none() && word != 0 {
                            first = Some((g, word.trailing_zeros()));
                        }
                    }
                    // The detect variant must agree on the earliest
                    // detecting (block, lane) pair — the only facts
                    // group-aware campaign accounting consumes.
                    if sim.eval_stuck_detect_wide(&packed, (net, stuck), &mut det) {
                        let dw = det.detect_words();
                        let got = (0..W).find(|&g| dw[g] != 0).map(|g| (g, dw[g].trailing_zeros()));
                        assert_eq!(
                            got.is_some(),
                            first.is_some(),
                            "detect-wide disagreement for fault ({net}, sa{})",
                            u8::from(stuck)
                        );
                        if let (Some(a), Some(b)) = (got, first) {
                            assert_eq!(a, b, "first detecting (block, lane)");
                        }
                    } else {
                        assert!(sim.cone_bits.is_none(), "detect-wide refused with bitsets");
                    }
                }
            }
        }
    }

    #[test]
    fn wide_walk_matches_narrow_on_adder() {
        let mut b = NetlistBuilder::new();
        let a = b.inputs(6);
        let bb = b.inputs(6);
        let zero = b.constant(false);
        let (sum, carry) = b.ripple_adder(&a, &bb, zero);
        b.outputs(&sum);
        b.output(carry);
        let nl = b.finish();
        for kernel in SimdKernel::available() {
            assert_wide_matches_narrow::<4>(&nl, kernel);
            assert_wide_matches_narrow::<8>(&nl, kernel);
        }
    }

    #[test]
    fn wide_walk_matches_narrow_on_mixed_logic() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(8);
        let x = b.xor_tree(&i);
        let y = b.and_tree(&i[..4]);
        let z = b.mux2(i[0], x, y);
        let dead = b.and2(i[6], i[7]);
        let _ = dead;
        b.output(z);
        b.output(y);
        let nl = b.finish();
        for kernel in SimdKernel::available() {
            assert_wide_matches_narrow::<2>(&nl, kernel);
            assert_wide_matches_narrow::<4>(&nl, kernel);
            assert_wide_matches_narrow::<8>(&nl, kernel);
            assert_wide_matches_narrow::<16>(&nl, kernel);
        }
    }

    #[test]
    fn kernel_dispatch_degrades_to_available_chunk_widths() {
        assert_eq!(effective_kernel::<4>(SimdKernel::Scalar), SimdKernel::Scalar);
        assert_eq!(effective_kernel::<8>(SimdKernel::Avx512), SimdKernel::Avx512);
        assert_eq!(effective_kernel::<4>(SimdKernel::Avx512), SimdKernel::Avx2);
        assert_eq!(effective_kernel::<2>(SimdKernel::Avx512), SimdKernel::Scalar);
        assert_eq!(effective_kernel::<4>(SimdKernel::Avx2), SimdKernel::Avx2);
        assert_eq!(effective_kernel::<6>(SimdKernel::Avx2), SimdKernel::Scalar);
        assert_eq!(effective_kernel::<2>(SimdKernel::Neon), SimdKernel::Neon);
        assert_eq!(effective_kernel::<3>(SimdKernel::Neon), SimdKernel::Scalar);
        // `detect` and `available` agree: the detected kernel is offered.
        assert!(SimdKernel::available().contains(&SimdKernel::detect()));
        assert!(SimdKernel::available().starts_with(&[SimdKernel::Scalar]));
    }

    #[test]
    fn pack_blocks_pads_with_last_block() {
        let b0 = vec![1u64, 2, 3];
        let b1 = vec![4u64, 5, 6];
        let packed = pack_blocks::<4>(&[&b0, &b1]);
        assert_eq!(packed, vec![[1, 4, 4, 4], [2, 5, 5, 5], [3, 6, 6, 6]]);
        let full = pack_blocks::<4>(&[&b0, &b1, &b0, &b1]);
        assert_eq!(full[0], [1, 4, 1, 4]);
        let wide = pack_blocks::<8>(&[&b0, &b1]);
        assert_eq!(wide[0], [1, 4, 4, 4, 4, 4, 4, 4]);
    }

    #[test]
    fn scratch_reuse_across_faults_is_clean() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(3);
        let x = b.xor_tree(&i);
        b.output(x);
        let nl = b.finish();
        let sim = FaultSim::new(&nl);
        let mut scratch = SimScratch::new();
        let inputs = random_inputs(3, 7);
        let good = nl.eval_all(&inputs);
        for net in 0..nl.num_nets() as u32 {
            let net = NetId(net);
            let cone = sim.cone(net);
            for stuck in [false, true] {
                sim.eval_stuck(&good, (net, stuck), &cone, &mut scratch);
                let oracle = nl.eval_all_stuck(&inputs, (net, stuck));
                for n in 0..nl.num_nets() as u32 {
                    assert_eq!(scratch.value(&good, NetId(n)), oracle[n as usize]);
                }
            }
        }
    }
}
