//! Incremental, event-driven stuck-at fault simulation.
//!
//! [`Netlist::eval_all_stuck`] re-evaluates every gate for every fault and
//! every pattern block. That is wasteful: a stuck-at fault only disturbs
//! the nets in its *fanout cone*, and on most pattern blocks the
//! disturbance dies out (logic masking) long before it reaches the
//! outputs. This module exploits both effects:
//!
//! * [`FaultSim`] precomputes a CSR fanout adjacency (which gates read
//!   each net) over the netlist. Gates are already stored in topological
//!   order, so ascending gate index *is* a valid levelized evaluation
//!   order and no separate level sort is needed.
//! * [`FaultSim::cone_into`] derives, once per fault site, the list of
//!   gates structurally reachable from the faulty net (ascending order).
//! * [`FaultSim::eval_stuck`] starts from a cached good-value vector and
//!   simulates *only* the cone, stamping nets whose faulty value differs
//!   from the good value into an epoch-tagged [`SimScratch`]. The walk
//!   early-exits as soon as the event frontier has converged back to the
//!   good values (no remaining cone gate reads a differing net).
//!
//! The result is bit-identical to [`Netlist::eval_all_stuck`] — that
//! method stays as the reference oracle — at a fraction of the work:
//! cost per (fault, block) is `O(active cone)` instead of `O(gates)`.
//!
//! On top of the 64-lane walk, [`FaultSim::eval_stuck_wide`] and
//! [`WideScratch`] process **four pattern blocks (256 lanes) per walk**:
//! each net carries a `[u64; 4]` of independent lane groups, so one pass
//! over the cone amortizes the event-walk bookkeeping (frontier test,
//! touched-list maintenance, gate decode) across 4× the patterns. Lane
//! groups never mix; per group the walk is bit-identical to the narrow
//! one, which keeps group-aware detection accounting exact.

use crate::netlist::{Gate, GateKind, NetId, Netlist};

/// Memory cap for the precomputed per-net cone bitsets (bytes). Above
/// this, [`FaultSim::cone_into`] falls back to an on-demand worklist walk.
const CONE_BITS_BUDGET: usize = 16 << 20;

/// One gate flattened to 16 bytes for the hot walk: three input pins
/// (unused pins repeat pin 0, turning `Buf`/`Not` into one-input
/// `And`/`Nand`) plus the output net and a 4-bit flag nibble — 2-bit
/// base op (AND/OR/XOR/MUX), an invert bit, and an is-primary-output
/// bit — packed into the last word. The flag encoding lets the walk
/// evaluate any gate with a handful of ALU selects instead of an
/// unpredictable indirect jump.
#[derive(Debug, Clone, Copy)]
struct PackedGate {
    pins: [u32; 3],
    /// `output_net << 4 | is_output << 3 | invert << 2 | base_op`.
    ko: u32,
    /// This gate's own index — the walk's frontier test compares it
    /// against `last_needed` without a second stream.
    idx: u32,
    /// `last_reader[output_net] `, folded in so the frontier extension
    /// needs no scattered lookup.
    lr: u32,
}

const BASE_AND: u32 = 0;
const BASE_OR: u32 = 1;
const BASE_XOR: u32 = 2;
const BASE_MUX: u32 = 3;

impl PackedGate {
    fn new(gate: &Gate, is_output: bool, idx: u32, lr: u32) -> Self {
        let pin = |i: usize| gate.inputs.get(i).or_else(|| gate.inputs.first());
        let pad = pin(0).map_or(0, |n| n.0);
        let out = gate.output.0;
        assert!(out < 1 << 28, "net index exceeds packed-gate range");
        let (base, inv) = match gate.kind {
            // With pin 1 padded to pin 0, `a AND a` is a buffer.
            GateKind::Buf | GateKind::And => (BASE_AND, 0),
            GateKind::Not | GateKind::Nand => (BASE_AND, 1),
            GateKind::Or => (BASE_OR, 0),
            GateKind::Nor => (BASE_OR, 1),
            GateKind::Xor => (BASE_XOR, 0),
            GateKind::Xnor => (BASE_XOR, 1),
            GateKind::Mux => (BASE_MUX, 0),
            // Constants read no nets, so they appear in no cone; the
            // encoding is never evaluated.
            GateKind::Const0 | GateKind::Const1 => (BASE_AND, 0),
        };
        PackedGate {
            pins: [
                pin(0).map_or(pad, |n| n.0),
                pin(1).map_or(pad, |n| n.0),
                pin(2).map_or(pad, |n| n.0),
            ],
            ko: out << 4 | u32::from(is_output) << 3 | inv << 2 | base,
            idx,
            lr,
        }
    }

    #[inline(always)]
    fn output(self) -> u32 {
        self.ko >> 4
    }
}

/// One gate step of the event-driven walk: reads the XOR-difference
/// overlay, fires the gate branchlessly if any input differs, records
/// the output difference, and extends the frontier horizon.
///
/// The body is branchless apart from the dead-input skip: gate kinds and
/// outcomes are data-dependent with no usable pattern, so ALU selects
/// beat an indirect jump and conditional stores here, while dead
/// stretches of a converging frontier reduce to three loads per gate.
///
/// # Safety
///
/// `p.pins` and `p.output()` must be in range for both `good` and
/// `scratch.diff` — guaranteed for records built by [`FaultSim::new`]
/// against a `good` slice of `num_nets` values and a scratch sized by
/// [`SimScratch::begin`].
#[inline(always)]
unsafe fn fire_gate(p: &PackedGate, good: &[u64], scratch: &mut SimScratch, last_needed: &mut u32) {
    let [a, b, c] = p.pins;
    let da = *scratch.diff.get_unchecked(a as usize);
    let db = *scratch.diff.get_unchecked(b as usize);
    let dc = *scratch.diff.get_unchecked(c as usize);
    // No differing input ⇒ the gate reproduces its good value.
    if da | db | dc == 0 {
        return;
    }
    let va = *good.get_unchecked(a as usize) ^ da;
    let vb = *good.get_unchecked(b as usize) ^ db;
    let vc = *good.get_unchecked(c as usize) ^ dc;
    let base = p.ko & 3;
    let m_and = u64::from(base == BASE_AND).wrapping_neg();
    let m_or = u64::from(base == BASE_OR).wrapping_neg();
    let m_xor = u64::from(base == BASE_XOR).wrapping_neg();
    let m_mux = u64::from(base == BASE_MUX).wrapping_neg();
    let m_inv = (u64::from(p.ko) >> 2 & 1).wrapping_neg();
    let v = (((va & vb) & m_and)
        | ((va | vb) & m_or)
        | ((va ^ vb) & m_xor)
        | (((va & vb) | (!va & vc)) & m_mux))
        ^ m_inv;
    let out = p.output() as usize;
    let d = v ^ *good.get_unchecked(out);
    *scratch.diff.get_unchecked_mut(out) = d;
    scratch.touched.push(out as u32);
    // Primary outputs feed the detection word as they are walked.
    scratch.out_diff |= d & (u64::from(p.ko) >> 3 & 1).wrapping_neg();
    // Branchless frontier extension: differing outputs push the walk's
    // horizon to their last reader (folded into the packed record).
    let gated = p.lr & u32::from(d != 0).wrapping_neg();
    *last_needed = (*last_needed).max(gated);
}

/// 256-lane variant of [`fire_gate`]: one gate step over four 64-lane
/// pattern blocks at once. Lanes never interact — each `[u64; 4]` entry
/// is four independent difference words — so the result per lane group is
/// bit-identical to running [`fire_gate`] on that block alone, except
/// that the shared frontier keeps walking while *any* lane group still
/// differs (extra fired gates write zero difference for converged lanes).
///
/// # Safety
///
/// Same contract as [`fire_gate`]: `p.pins` and `p.output()` must be in
/// range for both `good` and `scratch.diff`.
#[inline(always)]
unsafe fn fire_gate_wide(
    p: &PackedGate,
    good: &[[u64; 4]],
    scratch: &mut WideScratch,
    last_needed: &mut u32,
) {
    let [a, b, c] = p.pins;
    let da = *scratch.diff.get_unchecked(a as usize);
    let db = *scratch.diff.get_unchecked(b as usize);
    let dc = *scratch.diff.get_unchecked(c as usize);
    // No differing input in any lane group ⇒ all four blocks reproduce
    // their good values.
    if (da[0] | da[1] | da[2] | da[3])
        | (db[0] | db[1] | db[2] | db[3])
        | (dc[0] | dc[1] | dc[2] | dc[3])
        == 0
    {
        return;
    }
    let ga = *good.get_unchecked(a as usize);
    let gb = *good.get_unchecked(b as usize);
    let gc = *good.get_unchecked(c as usize);
    let base = p.ko & 3;
    let m_and = u64::from(base == BASE_AND).wrapping_neg();
    let m_or = u64::from(base == BASE_OR).wrapping_neg();
    let m_xor = u64::from(base == BASE_XOR).wrapping_neg();
    let m_mux = u64::from(base == BASE_MUX).wrapping_neg();
    let m_inv = (u64::from(p.ko) >> 2 & 1).wrapping_neg();
    let m_out = (u64::from(p.ko) >> 3 & 1).wrapping_neg();
    let out = p.output() as usize;
    let gout = *good.get_unchecked(out);
    let mut d = [0u64; 4];
    for lane in 0..4 {
        let va = ga[lane] ^ da[lane];
        let vb = gb[lane] ^ db[lane];
        let vc = gc[lane] ^ dc[lane];
        let v = (((va & vb) & m_and)
            | ((va | vb) & m_or)
            | ((va ^ vb) & m_xor)
            | (((va & vb) | (!va & vc)) & m_mux))
            ^ m_inv;
        d[lane] = v ^ gout[lane];
        scratch.out_diff[lane] |= d[lane] & m_out;
    }
    *scratch.diff.get_unchecked_mut(out) = d;
    scratch.touched.push(out as u32);
    let any = d[0] | d[1] | d[2] | d[3];
    let gated = p.lr & u32::from(any != 0).wrapping_neg();
    *last_needed = (*last_needed).max(gated);
}

/// Per-net fanout-cone bitsets: row `n` holds one bit per gate, set iff
/// the gate is structurally reachable from net `n`.
#[derive(Debug)]
struct ConeBits {
    /// `u64` words per row.
    words: usize,
    /// `num_nets` rows, row-major.
    bits: Vec<u64>,
}

/// Shared read-only engine state: fanout adjacency over one netlist.
///
/// Construction is `O(nets + gates)` plus (for netlists small enough to
/// fit the budget) an `O(edges × gates/64)` cone-bitset closure; the
/// engine borrows the netlist and is `Sync`, so one instance can serve
/// many worker threads.
#[derive(Debug)]
pub struct FaultSim<'n> {
    netlist: &'n Netlist,
    /// CSR row offsets: readers of net `n` are
    /// `readers[reader_off[n] as usize .. reader_off[n + 1] as usize]`.
    reader_off: Vec<u32>,
    /// Gate indices, ascending within each net's row.
    readers: Vec<u32>,
    /// Per net: largest reader gate index **plus one** (0 = no readers).
    /// The event walk may stop at gate `g` once `g >= last_reader[n]` for
    /// every currently-differing net `n`.
    last_reader: Vec<u32>,
    /// Whether each net is a primary output (observed by detection).
    is_output: Vec<bool>,
    /// Flattened 16-byte copy of each gate so the hot walk reads one
    /// contiguous stream instead of chasing each [`Gate::inputs`] heap
    /// allocation.
    packed: Vec<PackedGate>,
    /// Precomputed transitive fanout, when it fits [`CONE_BITS_BUDGET`].
    cone_bits: Option<ConeBits>,
}

impl<'n> FaultSim<'n> {
    /// Builds the fanout adjacency for `netlist`.
    #[must_use]
    pub fn new(netlist: &'n Netlist) -> Self {
        let num_nets = netlist.num_nets();
        let gates = netlist.gates();

        // Counting sort into CSR form keeps each row ascending because
        // gates are visited in index order.
        let mut counts = vec![0u32; num_nets + 1];
        for gate in gates {
            for input in &gate.inputs {
                counts[input.index() + 1] += 1;
            }
        }
        let mut reader_off = counts;
        for i in 0..num_nets {
            reader_off[i + 1] += reader_off[i];
        }
        let mut cursor: Vec<u32> = reader_off[..num_nets].to_vec();
        let mut readers = vec![0u32; reader_off[num_nets] as usize];
        let mut last_reader = vec![0u32; num_nets];
        for (g, gate) in gates.iter().enumerate() {
            let g = u32::try_from(g).expect("gate count exceeds u32");
            for input in &gate.inputs {
                let n = input.index();
                readers[cursor[n] as usize] = g;
                cursor[n] += 1;
                last_reader[n] = g + 1; // ascending visit ⇒ final value is max
            }
        }

        let mut is_output = vec![false; num_nets];
        for o in netlist.outputs() {
            is_output[o.index()] = true;
        }

        let packed: Vec<PackedGate> = gates
            .iter()
            .enumerate()
            .map(|(g, gate)| {
                let out = gate.output.index();
                PackedGate::new(gate, is_output[out], g as u32, last_reader[out])
            })
            .collect();
        // Soundness gate for the unchecked loads in `eval_stuck`: every
        // pin and output index is in range for a `num_nets`-sized vector.
        for p in &packed {
            assert!(
                p.pins.iter().all(|&n| (n as usize) < num_nets) && (p.output() as usize) < num_nets,
                "packed gate references an out-of-range net"
            );
        }

        let words = gates.len().div_ceil(64);
        let cone_bits = if num_nets * words * 8 <= CONE_BITS_BUDGET {
            // Transitive closure by descending net index: every reader's
            // output net is numbered above the net it reads, so row
            // `out(g)` is final before any row that includes gate `g`.
            let mut bits = vec![0u64; num_nets * words];
            for n in (0..num_nets).rev() {
                let (head, tail) = bits.split_at_mut((n + 1) * words);
                let row = &mut head[n * words..];
                for &g in &readers[reader_off[n] as usize..reader_off[n + 1] as usize] {
                    row[g as usize / 64] |= 1u64 << (g % 64);
                    let out = packed[g as usize].output() as usize;
                    debug_assert!(out > n, "reader output must be numbered above its input");
                    let src = &tail[(out - n - 1) * words..(out - n) * words];
                    for (d, s) in row.iter_mut().zip(src) {
                        *d |= s;
                    }
                }
            }
            Some(ConeBits { words, bits })
        } else {
            None
        };

        FaultSim { netlist, reader_off, readers, last_reader, is_output, packed, cone_bits }
    }

    /// The netlist this engine was built over.
    #[must_use]
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Gate indices reading `net`, ascending.
    #[must_use]
    pub fn readers_of(&self, net: NetId) -> &[u32] {
        let n = net.index();
        &self.readers[self.reader_off[n] as usize..self.reader_off[n + 1] as usize]
    }

    /// Rebuilds `cone` as the fanout cone of `net`: every gate whose value
    /// can be disturbed by a stuck-at fault on `net`, in ascending
    /// (levelized) gate order. Buffers inside `cone` are reused across
    /// calls, so deriving one cone per fault site is cheap.
    pub fn cone_into(&self, net: NetId, cone: &mut FaultCone) {
        cone.begin();
        if let Some(cb) = &self.cone_bits {
            // Precomputed closure: emit set bits, ascending by construction.
            let row = &cb.bits[net.index() * cb.words..(net.index() + 1) * cb.words];
            for (w, &word) in row.iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let b = word.trailing_zeros();
                    cone.gates.push(w as u32 * 64 + b);
                    word &= word - 1;
                }
            }
        } else {
            // Worklist walk with stamp dedup. Reachability is
            // order-independent, so a plain vec queue suffices; one sort
            // restores the levelized (ascending) order.
            cone.begin_marks(self.netlist.num_gates());
            for &g in self.readers_of(net) {
                if cone.mark(g) {
                    cone.gates.push(g);
                }
            }
            let mut i = 0;
            while i < cone.gates.len() {
                let out = NetId(self.packed[cone.gates[i] as usize].output());
                i += 1;
                for &r in self.readers_of(out) {
                    if cone.mark(r) {
                        cone.gates.push(r);
                    }
                }
            }
            cone.gates.sort_unstable();
        }
        debug_assert!(cone.gates.windows(2).all(|w| w[0] < w[1]));
        cone.packed.extend(cone.gates.iter().map(|&g| self.packed[g as usize]));
    }

    /// Whether cones come from the precomputed bitset closure — i.e. the
    /// netlist fit the memory budget. Cheap cones make per-fault cone
    /// caching across a whole campaign worthwhile.
    #[must_use]
    pub fn cheap_cones(&self) -> bool {
        self.cone_bits.is_some()
    }

    /// Convenience wrapper around [`cone_into`](FaultSim::cone_into)
    /// allocating a fresh [`FaultCone`].
    #[must_use]
    pub fn cone(&self, net: NetId) -> FaultCone {
        let mut cone = FaultCone::new();
        self.cone_into(net, &mut cone);
        cone
    }

    /// Event-driven fault evaluation against a cached good-value vector.
    ///
    /// `good` must be `netlist.eval_all(..)` for the pattern block being
    /// simulated, and `cone` the [`cone_into`](FaultSim::cone_into) result
    /// for `stuck.0`. Afterwards `scratch` holds the nets whose faulty
    /// value differs from `good` (query via [`SimScratch::value`],
    /// [`FaultSim::detect_word`] or [`FaultSim::output_diffs`]).
    ///
    /// Bit-identical to [`Netlist::eval_all_stuck`] on every net.
    pub fn eval_stuck(
        &self,
        good: &[u64],
        stuck: (NetId, bool),
        cone: &FaultCone,
        scratch: &mut SimScratch,
    ) {
        // Hard assert: with `scratch.begin` sizing `diff` to `num_nets`
        // and the construction-time pin-range check, this is the last
        // bound the unchecked loads below rely on.
        assert_eq!(good.len(), self.netlist.num_nets(), "good vector length");
        scratch.begin(self.netlist.num_nets());
        let (fnet, fval) = stuck;
        let forced = if fval { !0u64 } else { 0u64 };
        if good[fnet.index()] == forced {
            // The net already carries the forced value in all 64 lanes:
            // the faulty circuit is indistinguishable on this block.
            return;
        }
        let fdiff = forced ^ good[fnet.index()];
        scratch.set_diff(fnet, fdiff);
        // A fault on a primary-output net is directly observable.
        scratch.out_diff |= fdiff & u64::from(self.is_output[fnet.index()]).wrapping_neg();
        let mut last_needed = self.last_reader[fnet.index()];

        // The body is branchless apart from the early-exit test: gate
        // kinds and stamp outcomes are data-dependent with no usable
        // pattern, so ALU selects beat an indirect jump and conditional
        // stores here.
        for p in &cone.packed {
            if p.idx >= last_needed {
                // No remaining cone gate reads a differing net: the event
                // frontier has converged back to the good values.
                break;
            }
            // SAFETY: pins and outputs were range-checked against
            // `num_nets` in `FaultSim::new`; `good` and `scratch.diff`
            // are both `num_nets` long (asserted/sized above).
            unsafe { fire_gate(p, good, scratch, &mut last_needed) };
        }
    }

    /// Detection-oriented variant of [`eval_stuck`](FaultSim::eval_stuck)
    /// that walks the precomputed cone bitset row directly — no
    /// materialized [`FaultCone`] and no per-fault cone derivation.
    /// Returns `false` (doing nothing) when the engine was built without
    /// cone bitsets; callers then fall back to
    /// [`cone_into`](FaultSim::cone_into) + `eval_stuck`.
    ///
    /// **Detection-exact, not value-exact**: the walk stops as soon as
    /// pattern lane 0 observes the fault, because from that point
    /// `detect_word` can only gain bits and `trailing_zeros` is already
    /// pinned at 0. Relative to a full `eval_stuck`, the detect word's
    /// nonzero-ness and its `trailing_zeros` (the first detecting lane)
    /// are exact, but [`SimScratch::value`] is only meaningful for nets
    /// written before the stop. Campaign classification needs exactly
    /// the former two; dictionary building keeps the full walk.
    pub fn eval_stuck_detect(
        &self,
        good: &[u64],
        stuck: (NetId, bool),
        scratch: &mut SimScratch,
    ) -> bool {
        let Some(cb) = &self.cone_bits else {
            return false;
        };
        assert_eq!(good.len(), self.netlist.num_nets(), "good vector length");
        scratch.begin(self.netlist.num_nets());
        let (fnet, fval) = stuck;
        let forced = if fval { !0u64 } else { 0u64 };
        if good[fnet.index()] == forced {
            return true;
        }
        let fdiff = forced ^ good[fnet.index()];
        scratch.set_diff(fnet, fdiff);
        scratch.out_diff |= fdiff & u64::from(self.is_output[fnet.index()]).wrapping_neg();
        if scratch.out_diff & 1 != 0 {
            return true;
        }
        let mut last_needed = self.last_reader[fnet.index()];
        let row = &cb.bits[fnet.index() * cb.words..][..cb.words];
        'walk: for (wi, &wbits) in row.iter().enumerate() {
            let mut w = wbits;
            if w == 0 {
                continue;
            }
            if (wi * 64) as u32 >= last_needed {
                // Every remaining gate index is ≥ the frontier horizon.
                break;
            }
            while w != 0 {
                let g = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                if g as u32 >= last_needed {
                    break 'walk;
                }
                // SAFETY: `g` indexes a gate (the bitset has one bit per
                // gate); pins/outputs were range-checked in `new`.
                unsafe {
                    let p = self.packed.get_unchecked(g);
                    fire_gate(p, good, scratch, &mut last_needed);
                }
                // Lane-0 freeze: once lane 0 detects, the classification
                // outcome and first detecting lane cannot change.
                if scratch.out_diff & 1 != 0 {
                    break 'walk;
                }
            }
        }
        true
    }

    /// 256-lane event-driven fault evaluation: four 64-pattern blocks in
    /// one walk.
    ///
    /// `good` must hold, per net, the good values of the four blocks
    /// being simulated (see [`pack_blocks`]), and `cone` the
    /// [`cone_into`](FaultSim::cone_into) result for `stuck.0`. Lane
    /// groups are independent: afterwards, lane group `g` of the scratch
    /// (difference overlay, detection word) is bit-identical to an
    /// [`eval_stuck`](FaultSim::eval_stuck) over block `g` alone. The
    /// walk shares one frontier across the four blocks, so it only
    /// converges once *every* block's fault effect has died out — the
    /// cost of a group is bounded by its widest member, not their sum.
    pub fn eval_stuck_wide(
        &self,
        good: &[[u64; 4]],
        stuck: (NetId, bool),
        cone: &FaultCone,
        scratch: &mut WideScratch,
    ) {
        assert_eq!(good.len(), self.netlist.num_nets(), "good vector length");
        scratch.begin(self.netlist.num_nets());
        let (fnet, fval) = stuck;
        let forced = if fval { !0u64 } else { 0u64 };
        let site = good[fnet.index()];
        let fdiff = [forced ^ site[0], forced ^ site[1], forced ^ site[2], forced ^ site[3]];
        if fdiff == [0; 4] {
            // Every block already carries the forced value in all lanes.
            return;
        }
        scratch.set_diff(fnet, fdiff);
        let m_out = u64::from(self.is_output[fnet.index()]).wrapping_neg();
        for (o, d) in scratch.out_diff.iter_mut().zip(fdiff) {
            *o |= d & m_out;
        }
        let mut last_needed = self.last_reader[fnet.index()];
        for p in &cone.packed {
            if p.idx >= last_needed {
                break;
            }
            // SAFETY: pins and outputs were range-checked against
            // `num_nets` in `FaultSim::new`; `good` and `scratch.diff`
            // are both `num_nets` long (asserted/sized above).
            unsafe { fire_gate_wide(p, good, scratch, &mut last_needed) };
        }
    }

    /// 256-lane detection-oriented walk over the precomputed cone bitset
    /// row — the [`eval_stuck_detect`](FaultSim::eval_stuck_detect)
    /// analogue for four pattern blocks at once. Returns `false` (doing
    /// nothing) when the engine was built without cone bitsets; callers
    /// then fall back to [`cone_into`](FaultSim::cone_into) +
    /// [`eval_stuck_wide`](FaultSim::eval_stuck_wide).
    ///
    /// **Detection-exact per lane group**: each detection word's
    /// nonzero-ness and `trailing_zeros` match a standalone walk of that
    /// block, with one exception mirroring the narrow variant's lane-0
    /// freeze — once lane 0 of lane group 0 observes the fault, the walk
    /// stops, because group-aware accounting (earliest block wins, then
    /// earliest lane) is already pinned at block 0, lane 0 and no later
    /// block can precede it.
    pub fn eval_stuck_detect_wide(
        &self,
        good: &[[u64; 4]],
        stuck: (NetId, bool),
        scratch: &mut WideScratch,
    ) -> bool {
        let Some(cb) = &self.cone_bits else {
            return false;
        };
        assert_eq!(good.len(), self.netlist.num_nets(), "good vector length");
        scratch.begin(self.netlist.num_nets());
        let (fnet, fval) = stuck;
        let forced = if fval { !0u64 } else { 0u64 };
        let site = good[fnet.index()];
        let fdiff = [forced ^ site[0], forced ^ site[1], forced ^ site[2], forced ^ site[3]];
        if fdiff == [0; 4] {
            return true;
        }
        scratch.set_diff(fnet, fdiff);
        let m_out = u64::from(self.is_output[fnet.index()]).wrapping_neg();
        for (o, d) in scratch.out_diff.iter_mut().zip(fdiff) {
            *o |= d & m_out;
        }
        if scratch.out_diff[0] & 1 != 0 {
            return true;
        }
        let mut last_needed = self.last_reader[fnet.index()];
        let row = &cb.bits[fnet.index() * cb.words..][..cb.words];
        'walk: for (wi, &wbits) in row.iter().enumerate() {
            let mut w = wbits;
            if w == 0 {
                continue;
            }
            if (wi * 64) as u32 >= last_needed {
                break;
            }
            while w != 0 {
                let g = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                if g as u32 >= last_needed {
                    break 'walk;
                }
                // SAFETY: `g` indexes a gate (the bitset has one bit per
                // gate); pins/outputs were range-checked in `new`.
                unsafe {
                    let p = self.packed.get_unchecked(g);
                    fire_gate_wide(p, good, scratch, &mut last_needed);
                }
                // Block-0 lane-0 freeze: the group-aware verdict (first
                // block, then first lane) cannot change from here.
                if scratch.out_diff[0] & 1 != 0 {
                    break 'walk;
                }
            }
        }
        true
    }

    /// Detection word after [`eval_stuck`](FaultSim::eval_stuck): bit
    /// `i` set iff pattern lane `i` exposes the fault at any primary
    /// output. `O(1)` — accumulated during the walk.
    #[must_use]
    pub fn detect_word(&self, good: &[u64], scratch: &SimScratch) -> u64 {
        let _ = good;
        scratch.out_diff
    }

    /// Per-output difference words (`faulty ^ good`) in primary-output
    /// order, as consumed by syndrome hashing. Untouched outputs yield 0.
    pub fn output_diffs<'s>(
        &'s self,
        good: &'s [u64],
        scratch: &'s SimScratch,
    ) -> impl Iterator<Item = u64> + 's {
        self.netlist.outputs().iter().map(move |&o| scratch.value(good, o) ^ good[o.index()])
    }
}

/// Fanout-cone gate list for one fault site (see [`FaultSim::cone_into`]).
///
/// Holds reusable mark buffers so cones for successive fault sites can be
/// derived without reallocating.
#[derive(Debug, Default, Clone)]
pub struct FaultCone {
    /// Affected gate indices, ascending (= levelized order).
    gates: Vec<u32>,
    /// Flattened gate records parallel to `gates`, so the event walk
    /// streams one contiguous buffer instead of gathering from the full
    /// gate table (whose access pattern defeats the prefetcher).
    packed: Vec<PackedGate>,
    /// Epoch stamps per gate; a gate is in the current cone iff its stamp
    /// equals `epoch`. Only the fallback walk uses these.
    stamp: Vec<u32>,
    epoch: u32,
}

impl FaultCone {
    /// Creates an empty cone.
    #[must_use]
    pub fn new() -> Self {
        FaultCone::default()
    }

    /// Gate indices in the cone, ascending.
    #[must_use]
    pub fn gates(&self) -> &[u32] {
        &self.gates
    }

    fn begin(&mut self) {
        self.gates.clear();
        self.packed.clear();
    }

    /// Lazily sizes the dedup stamps (fallback walk only).
    fn begin_marks(&mut self, num_gates: usize) {
        if self.stamp.len() < num_gates {
            self.stamp.resize(num_gates, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `gate`; returns `false` if it was already marked this epoch.
    fn mark(&mut self, gate: u32) -> bool {
        let slot = &mut self.stamp[gate as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// XOR-difference overlay used by [`FaultSim::eval_stuck`].
///
/// `diff[n]` holds `faulty ^ good` for net `n` — zero everywhere the
/// fault has no effect — so an overlay read is a single extra XOR and the
/// walk needs no stamps or epochs. `begin` re-zeroes only the entries the
/// previous evaluation wrote (via `touched`), keeping every evaluation
/// allocation-free and `O(walked gates)`.
#[derive(Debug, Default, Clone)]
pub struct SimScratch {
    diff: Vec<u64>,
    touched: Vec<u32>,
    /// OR of `faulty ^ good` over primary-output nets, accumulated while
    /// the walk runs.
    out_diff: u64,
}

impl SimScratch {
    /// Creates an empty scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        SimScratch::default()
    }

    fn begin(&mut self, num_nets: usize) {
        for &n in &self.touched {
            self.diff[n as usize] = 0;
        }
        self.touched.clear();
        self.out_diff = 0;
        if self.diff.len() < num_nets {
            self.diff.resize(num_nets, 0);
        }
    }

    fn set_diff(&mut self, net: NetId, diff: u64) {
        self.diff[net.index()] = diff;
        self.touched.push(net.0);
    }

    /// The faulty value of `net` after an evaluation: the good value
    /// XORed with the recorded difference (zero where undisturbed).
    #[must_use]
    pub fn value(&self, good: &[u64], net: NetId) -> u64 {
        self.overlay(good, net.0)
    }

    /// Raw-index overlay read used by the hot walk.
    #[inline(always)]
    fn overlay(&self, good: &[u64], net: u32) -> u64 {
        good[net as usize] ^ self.diff[net as usize]
    }

    /// Nets written by the last event walk, in the order it reached them:
    /// a superset of the differing nets (non-differing entries carry the
    /// good value, so difference queries over them still read as zero).
    #[must_use]
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }
}

/// 256-lane XOR-difference overlay used by
/// [`FaultSim::eval_stuck_wide`]: four independent 64-lane pattern
/// blocks ("lane groups") simulated in one event walk. `diff[n][g]`
/// holds `faulty ^ good` for net `n` on block `g`.
#[derive(Debug, Default, Clone)]
pub struct WideScratch {
    diff: Vec<[u64; 4]>,
    touched: Vec<u32>,
    /// OR of `faulty ^ good` over primary-output nets, per lane group.
    out_diff: [u64; 4],
}

impl WideScratch {
    /// Creates an empty scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        WideScratch::default()
    }

    fn begin(&mut self, num_nets: usize) {
        for &n in &self.touched {
            self.diff[n as usize] = [0; 4];
        }
        self.touched.clear();
        self.out_diff = [0; 4];
        if self.diff.len() < num_nets {
            self.diff.resize(num_nets, [0; 4]);
        }
    }

    fn set_diff(&mut self, net: NetId, diff: [u64; 4]) {
        self.diff[net.index()] = diff;
        self.touched.push(net.0);
    }

    /// Per-lane-group detection words after an evaluation: entry `g`,
    /// bit `i` set iff pattern lane `i` of block `g` exposes the fault
    /// at any primary output. `O(1)` — accumulated during the walk.
    #[must_use]
    pub fn detect_words(&self) -> [u64; 4] {
        self.out_diff
    }

    /// The faulty values of `net` (one word per lane group) after an
    /// evaluation: the good values XORed with the recorded differences.
    #[must_use]
    pub fn value(&self, good: &[[u64; 4]], net: NetId) -> [u64; 4] {
        let g = good[net.index()];
        let d = self.diff[net.index()];
        [g[0] ^ d[0], g[1] ^ d[1], g[2] ^ d[2], g[3] ^ d[3]]
    }

    /// Nets written by the last event walk (see [`SimScratch::touched`]).
    #[must_use]
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }
}

/// Packs up to four 64-lane good-value vectors (one per pattern block,
/// each `num_nets` long as produced by `Netlist::eval_all`) into the
/// lane-group layout consumed by [`FaultSim::eval_stuck_wide`]. When
/// fewer than four blocks are supplied, the trailing lane groups repeat
/// the last block so padded lanes behave like real patterns; callers
/// must ignore their detection words.
///
/// # Panics
///
/// Panics on an empty slice, more than four blocks, or blocks of
/// unequal length.
#[must_use]
pub fn pack_blocks(blocks: &[&[u64]]) -> Vec<[u64; 4]> {
    assert!((1..=4).contains(&blocks.len()), "pack_blocks takes 1..=4 blocks");
    let nets = blocks[0].len();
    assert!(blocks.iter().all(|b| b.len() == nets), "block lengths must agree");
    let last = blocks.len() - 1;
    (0..nets)
        .map(|n| {
            let lane = |g: usize| blocks[g.min(last)][n];
            [lane(0), lane(1), lane(2), lane(3)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_inputs(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    /// Checks every stuck-at fault on every net of `nl` against the
    /// full-re-evaluation oracle, over several pattern blocks — once with
    /// the precomputed cone bitsets and once with the worklist fallback.
    fn assert_matches_oracle(nl: &Netlist) {
        let mut sim = FaultSim::new(nl);
        assert!(sim.cone_bits.is_some(), "test netlists fit the cone-bitset budget");
        assert_matches_oracle_with(nl, &sim);
        sim.cone_bits = None;
        assert_matches_oracle_with(nl, &sim);
    }

    fn assert_matches_oracle_with(nl: &Netlist, sim: &FaultSim<'_>) {
        let mut cone = FaultCone::new();
        let mut scratch = SimScratch::new();
        let mut det_scratch = SimScratch::new();
        for block in 0..4u64 {
            let inputs = random_inputs(nl.num_inputs(), 0xBEEF ^ block);
            let good = nl.eval_all(&inputs);
            for net in 0..nl.num_nets() as u32 {
                let net = NetId(net);
                sim.cone_into(net, &mut cone);
                for stuck in [false, true] {
                    let oracle = nl.eval_all_stuck(&inputs, (net, stuck));
                    sim.eval_stuck(&good, (net, stuck), &cone, &mut scratch);
                    for n in 0..nl.num_nets() as u32 {
                        assert_eq!(
                            scratch.value(&good, NetId(n)),
                            oracle[n as usize],
                            "net n{n} mismatch for fault ({net}, sa{})",
                            u8::from(stuck)
                        );
                    }
                    // Detection word must match the oracle's output diff.
                    let mut oracle_diff = 0u64;
                    for (o, g) in nl.outputs().iter().zip(nl.output_values(&good)) {
                        oracle_diff |= oracle[o.index()] ^ g;
                    }
                    assert_eq!(sim.detect_word(&good, &scratch), oracle_diff);
                    // The row-walk detection variant must agree on
                    // detection and the first detecting lane (it may
                    // stop early once lane 0 fires).
                    if sim.eval_stuck_detect(&good, (net, stuck), &mut det_scratch) {
                        let det = sim.detect_word(&good, &det_scratch);
                        assert_eq!(
                            det != 0,
                            oracle_diff != 0,
                            "detect variant disagreement for fault ({net}, sa{})",
                            u8::from(stuck)
                        );
                        if oracle_diff != 0 {
                            assert_eq!(det.trailing_zeros(), oracle_diff.trailing_zeros());
                        }
                    } else {
                        assert!(sim.cone_bits.is_none(), "detect walk refused with bitsets built");
                    }
                }
            }
        }
    }

    #[test]
    fn matches_oracle_on_adder() {
        let mut b = NetlistBuilder::new();
        let a = b.inputs(6);
        let bb = b.inputs(6);
        let zero = b.constant(false);
        let (sum, carry) = b.ripple_adder(&a, &bb, zero);
        b.outputs(&sum);
        b.output(carry);
        assert_matches_oracle(&b.finish());
    }

    #[test]
    fn matches_oracle_on_mixed_logic() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(8);
        let x = b.xor_tree(&i);
        let y = b.and_tree(&i[..4]);
        let z = b.mux2(i[0], x, y);
        let dead = b.and2(i[6], i[7]); // unobserved cone
        let _ = dead;
        b.output(z);
        b.output(y);
        assert_matches_oracle(&b.finish());
    }

    #[test]
    fn cone_is_ascending_and_complete() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(4);
        let x = b.xor2(i[0], i[1]);
        let y = b.and2(x, i[2]);
        let z = b.or2(y, i[3]);
        b.output(z);
        let nl = b.finish();
        let sim = FaultSim::new(&nl);
        // Fault on input 0 disturbs all three gates.
        assert_eq!(sim.cone(i[0]).gates().len(), 3);
        // Fault on the output net disturbs nothing downstream.
        assert!(sim.cone(z).gates().is_empty());
        // Fault on input 3 only disturbs the final OR.
        assert_eq!(sim.cone(i[3]).gates().len(), 1);
    }

    #[test]
    fn forced_value_equal_to_good_touches_nothing() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let x = b.and2(i[0], i[1]);
        b.output(x);
        let nl = b.finish();
        let sim = FaultSim::new(&nl);
        let cone = sim.cone(i[0]);
        let mut scratch = SimScratch::new();
        // Input 0 all-ones; stuck-at-1 on it changes nothing.
        let good = nl.eval_all(&[!0, 0]);
        sim.eval_stuck(&good, (i[0], true), &cone, &mut scratch);
        assert!(scratch.touched().is_empty());
        assert_eq!(sim.detect_word(&good, &scratch), 0);
    }

    /// Every fault, over four pattern blocks: one 256-lane walk must be
    /// bit-identical, lane group by lane group, to four narrow walks —
    /// values on every net, detection words, and the detect variant's
    /// group-aware verdict (earliest block, then earliest lane).
    fn assert_wide_matches_narrow(nl: &Netlist) {
        let mut sim = FaultSim::new(nl);
        assert!(sim.cone_bits.is_some(), "test netlists fit the cone-bitset budget");
        for pass in 0..2 {
            if pass == 1 {
                sim.cone_bits = None;
            }
            let mut cone = FaultCone::new();
            let mut narrow = SimScratch::new();
            let mut wide = WideScratch::new();
            let mut det = WideScratch::new();
            let blocks: Vec<Vec<u64>> =
                (0..4u64).map(|b| random_inputs(nl.num_inputs(), 0xD1CE ^ b)).collect();
            let goods: Vec<Vec<u64>> = blocks.iter().map(|b| nl.eval_all(b)).collect();
            let packed = pack_blocks(&goods.iter().map(Vec::as_slice).collect::<Vec<_>>());
            for net in 0..nl.num_nets() as u32 {
                let net = NetId(net);
                sim.cone_into(net, &mut cone);
                for stuck in [false, true] {
                    sim.eval_stuck_wide(&packed, (net, stuck), &cone, &mut wide);
                    let words = wide.detect_words();
                    let mut first = None;
                    for (g, good) in goods.iter().enumerate() {
                        sim.eval_stuck(good, (net, stuck), &cone, &mut narrow);
                        for n in 0..nl.num_nets() as u32 {
                            assert_eq!(
                                wide.value(&packed, NetId(n))[g],
                                narrow.value(good, NetId(n)),
                                "net n{n} lane group {g} for fault ({net}, sa{})",
                                u8::from(stuck)
                            );
                        }
                        let word = sim.detect_word(good, &narrow);
                        assert_eq!(words[g], word, "detect word, lane group {g}");
                        if first.is_none() && word != 0 {
                            first = Some((g, word.trailing_zeros()));
                        }
                    }
                    // The detect variant must agree on the earliest
                    // detecting (block, lane) pair — the only facts
                    // group-aware campaign accounting consumes.
                    if sim.eval_stuck_detect_wide(&packed, (net, stuck), &mut det) {
                        let dw = det.detect_words();
                        let got = (0..4).find(|&g| dw[g] != 0).map(|g| (g, dw[g].trailing_zeros()));
                        assert_eq!(
                            got.is_some(),
                            first.is_some(),
                            "detect-wide disagreement for fault ({net}, sa{})",
                            u8::from(stuck)
                        );
                        if let (Some(a), Some(b)) = (got, first) {
                            assert_eq!(a, b, "first detecting (block, lane)");
                        }
                    } else {
                        assert!(sim.cone_bits.is_none(), "detect-wide refused with bitsets");
                    }
                }
            }
        }
    }

    #[test]
    fn wide_walk_matches_narrow_on_adder() {
        let mut b = NetlistBuilder::new();
        let a = b.inputs(6);
        let bb = b.inputs(6);
        let zero = b.constant(false);
        let (sum, carry) = b.ripple_adder(&a, &bb, zero);
        b.outputs(&sum);
        b.output(carry);
        assert_wide_matches_narrow(&b.finish());
    }

    #[test]
    fn wide_walk_matches_narrow_on_mixed_logic() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(8);
        let x = b.xor_tree(&i);
        let y = b.and_tree(&i[..4]);
        let z = b.mux2(i[0], x, y);
        let dead = b.and2(i[6], i[7]);
        let _ = dead;
        b.output(z);
        b.output(y);
        assert_wide_matches_narrow(&b.finish());
    }

    #[test]
    fn pack_blocks_pads_with_last_block() {
        let b0 = vec![1u64, 2, 3];
        let b1 = vec![4u64, 5, 6];
        let packed = pack_blocks(&[&b0, &b1]);
        assert_eq!(packed, vec![[1, 4, 4, 4], [2, 5, 5, 5], [3, 6, 6, 6]]);
        let full = pack_blocks(&[&b0, &b1, &b0, &b1]);
        assert_eq!(full[0], [1, 4, 1, 4]);
    }

    #[test]
    fn scratch_reuse_across_faults_is_clean() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(3);
        let x = b.xor_tree(&i);
        b.output(x);
        let nl = b.finish();
        let sim = FaultSim::new(&nl);
        let mut scratch = SimScratch::new();
        let inputs = random_inputs(3, 7);
        let good = nl.eval_all(&inputs);
        for net in 0..nl.num_nets() as u32 {
            let net = NetId(net);
            let cone = sim.cone(net);
            for stuck in [false, true] {
                sim.eval_stuck(&good, (net, stuck), &cone, &mut scratch);
                let oracle = nl.eval_all_stuck(&inputs, (net, stuck));
                for n in 0..nl.num_nets() as u32 {
                    assert_eq!(scratch.value(&good, NetId(n)), oracle[n as usize]);
                }
            }
        }
    }
}
