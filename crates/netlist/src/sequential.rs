//! Sequential netlists with full-scan test access.
//!
//! The ATPG campaign treats every pipeline unit as a combinational core —
//! the industry *full-scan* assumption: all state elements are stitched
//! into scan chains, so a sequential circuit's flops become pseudo-inputs
//! (their `Q` pins) and pseudo-outputs (their `D` pins) of the
//! combinational core. This module makes that assumption concrete:
//!
//! * [`SequentialNetlist`] wraps a combinational [`Netlist`] whose input
//!   space is `[primary inputs ‖ flop Qs]` and whose output space is
//!   `[primary outputs ‖ flop Ds]`,
//! * [`SequentialNetlist::step`] clocks it functionally,
//! * [`SequentialNetlist::scan_cycle`] performs the scan protocol —
//!   shift-in a state, apply a pattern, capture, shift-out — and is
//!   provably equivalent to one combinational evaluation of the core,
//!   which is exactly why the stuck-at campaign may run on the core alone.
//!
//! # Example
//!
//! ```
//! use r2d3_netlist::{NetlistBuilder, sequential::SequentialNetlist};
//!
//! // A 4-bit accumulator: state' = state + in.
//! let mut b = NetlistBuilder::new();
//! let input = b.inputs(4);    // primary inputs
//! let state = b.inputs(4);    // flop Q pseudo-inputs
//! let zero = b.constant(false);
//! let (sum, _) = b.ripple_adder(&state, &input, zero);
//! b.outputs(&sum);            // visible output
//! b.outputs(&sum);            // flop D pseudo-outputs (state')
//! let seq = SequentialNetlist::new(b.finish(), 4, 4).unwrap();
//!
//! let mut state = vec![0u64; 4];
//! // Accumulate 3 twice (lane 0): 0 → 3 → 6.
//! let three = [1, 1, 0, 0];
//! seq.step(&mut state, &three);
//! seq.step(&mut state, &three);
//! assert_eq!(state, vec![0, 1, 1, 0]); // 6 = 0b0110
//! ```

use crate::netlist::Netlist;
use crate::NetlistError;
use serde::{Deserialize, Serialize};

/// A full-scan sequential circuit built over a combinational core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequentialNetlist {
    core: Netlist,
    real_inputs: usize,
    real_outputs: usize,
}

impl SequentialNetlist {
    /// Wraps a combinational core.
    ///
    /// The core's inputs must be `[real_inputs ‖ flops]` and its outputs
    /// `[real_outputs ‖ flops]`, with the same flop count on both sides.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputLenMismatch`] when the widths do not
    /// leave a consistent flop count.
    pub fn new(
        core: Netlist,
        real_inputs: usize,
        real_outputs: usize,
    ) -> Result<Self, NetlistError> {
        let flops_in = core.num_inputs().checked_sub(real_inputs);
        let flops_out = core.outputs().len().checked_sub(real_outputs);
        match (flops_in, flops_out) {
            (Some(fi), Some(fo)) if fi == fo => {
                Ok(SequentialNetlist { core, real_inputs, real_outputs })
            }
            _ => Err(NetlistError::InputLenMismatch {
                expected: core.num_inputs(),
                got: real_inputs,
            }),
        }
    }

    /// The combinational core (what the ATPG campaign runs on).
    #[must_use]
    pub fn core(&self) -> &Netlist {
        &self.core
    }

    /// Number of state elements.
    #[must_use]
    pub fn flops(&self) -> usize {
        self.core.num_inputs() - self.real_inputs
    }

    /// Number of real (non-scan) primary inputs.
    #[must_use]
    pub fn real_inputs(&self) -> usize {
        self.real_inputs
    }

    /// Number of real primary outputs.
    #[must_use]
    pub fn real_outputs(&self) -> usize {
        self.real_outputs
    }

    /// Clocks the circuit once: `state` is updated in place to the next
    /// state, and the real outputs are returned. Bit-parallel (64 lanes).
    ///
    /// # Panics
    ///
    /// Panics if `inputs`/`state` widths are wrong.
    pub fn step(&self, state: &mut [u64], inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.real_inputs, "primary-input width");
        assert_eq!(state.len(), self.flops(), "state width");
        let mut all = Vec::with_capacity(self.core.num_inputs());
        all.extend_from_slice(inputs);
        all.extend_from_slice(state);
        let outs = self.core.eval(&all);
        let (real, next) = outs.split_at(self.real_outputs);
        state.copy_from_slice(next);
        real.to_vec()
    }

    /// Runs the scan protocol for one test: shift-in `scan_state`, apply
    /// `inputs`, capture, and shift-out. Returns
    /// `(real_outputs, captured_state)`.
    ///
    /// By construction this equals one evaluation of the combinational
    /// core with `[inputs ‖ scan_state]` — the equivalence that justifies
    /// running the stuck-at campaign on the core alone (tested below).
    ///
    /// # Panics
    ///
    /// Panics if the widths are wrong.
    #[must_use]
    pub fn scan_cycle(&self, inputs: &[u64], scan_state: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert_eq!(scan_state.len(), self.flops(), "scan chain length");
        // Shift-in: serially load the chain (modeled as a direct load —
        // shifting is linear and fault-free in this model).
        let mut state = scan_state.to_vec();
        // Capture.
        let real = self.step(&mut state, inputs);
        // Shift-out: the captured next-state becomes observable.
        (real, state)
    }

    /// Scan-based stuck-at check: evaluates the test `(inputs, state)`
    /// on the good circuit and with `stuck` injected, returning whether
    /// any observable value (real outputs or shifted-out state) differs.
    #[must_use]
    pub fn scan_detects(
        &self,
        inputs: &[u64],
        scan_state: &[u64],
        stuck: (crate::NetId, bool),
    ) -> bool {
        let mut all = Vec::with_capacity(self.core.num_inputs());
        all.extend_from_slice(inputs);
        all.extend_from_slice(scan_state);
        let good = self.core.eval_all(&all);
        let bad = self.core.eval_all_stuck(&all, stuck);
        self.core.outputs().iter().any(|o| good[o.index()] != bad[o.index()])
    }
}

/// Registers a combinational stage behind an output flop bank: the
/// returned sequential circuit latches every stage output each cycle (a
/// pipeline stage boundary). Useful for building multi-cycle testbenches
/// on the generated unit netlists.
#[must_use]
pub fn register_outputs(core: &Netlist) -> SequentialNetlist {
    use crate::builder::NetlistBuilder;
    let mut b = NetlistBuilder::new();
    let real = b.inputs(core.num_inputs());
    let state = b.inputs(core.outputs().len());

    // Re-instantiate the core's gates on the new builder.
    let mut map = vec![crate::NetId(u32::MAX); core.num_nets()];
    for (i, r) in real.iter().enumerate() {
        map[i] = *r;
    }
    for gate in core.gates() {
        let inputs: Vec<crate::NetId> = gate.inputs.iter().map(|n| map[n.index()]).collect();
        map[gate.output.index()] = b.gate(gate.kind, &inputs);
    }
    // Real outputs: the *registered* values (previous cycle's state).
    b.outputs(&state);
    // Flop Ds: the core's current outputs.
    let ds: Vec<crate::NetId> = core.outputs().iter().map(|o| map[o.index()]).collect();
    b.outputs(&ds);

    SequentialNetlist::new(b.finish(), core.num_inputs(), core.outputs().len())
        .expect("widths consistent by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::NetId;

    fn counter4() -> SequentialNetlist {
        // state' = state + 1, output = state.
        let mut b = NetlistBuilder::new();
        let state = b.inputs(4);
        let one = b.constant(true);
        let zero = b.constant(false);
        let ones = vec![one, zero, zero, zero];
        let (next, _) = b.ripple_adder(&state, &ones, zero);
        b.outputs(&state);
        b.outputs(&next);
        SequentialNetlist::new(b.finish(), 0, 4).unwrap()
    }

    fn bits(v: &[u64]) -> u64 {
        v.iter().enumerate().fold(0, |acc, (i, b)| acc | ((b & 1) << i))
    }

    #[test]
    fn counter_counts() {
        let c = counter4();
        let mut state = vec![0u64; 4];
        for expect in 0..20u64 {
            let out = c.step(&mut state, &[]);
            assert_eq!(bits(&out), expect % 16, "output shows pre-increment state");
        }
    }

    #[test]
    fn scan_cycle_equals_core_evaluation() {
        let c = counter4();
        for v in 0..16u64 {
            let state: Vec<u64> = (0..4).map(|i| (v >> i) & 1).collect();
            let (outs, captured) = c.scan_cycle(&[], &state);
            assert_eq!(bits(&outs), v);
            assert_eq!(bits(&captured), (v + 1) % 16);
            // Direct core evaluation agrees.
            let core_out = c.core().eval(&state);
            assert_eq!(bits(&core_out[..4]), v);
            assert_eq!(bits(&core_out[4..]), (v + 1) % 16);
        }
    }

    #[test]
    fn scan_detects_core_faults_exactly_like_combinational_campaign() {
        use crate::stages::{stage_netlist, StageSizing};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let sizing = StageSizing { gates_per_mm2: 1_000.0, ..Default::default() };
        let sn = stage_netlist(r2d3_isa::Unit::Exu, &sizing);
        let seq = register_outputs(sn.netlist());
        let core = seq.core().clone();

        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..16 {
            let inputs: Vec<u64> = (0..seq.real_inputs()).map(|_| rng.gen()).collect();
            let state: Vec<u64> = (0..seq.flops()).map(|_| rng.gen()).collect();
            let fault_net = NetId(rng.gen_range(0..core.num_nets() as u32));
            let stuck = rng.gen_bool(0.5);

            // Combinational view: evaluate the core with the merged input.
            let mut all = inputs.clone();
            all.extend_from_slice(&state);
            let good = core.eval_all(&all);
            let bad = core.eval_all_stuck(&all, (fault_net, stuck));
            let comb_detects = core.outputs().iter().any(|o| good[o.index()] != bad[o.index()]);

            assert_eq!(
                seq.scan_detects(&inputs, &state, (fault_net, stuck)),
                comb_detects,
                "full-scan equivalence violated for {fault_net}/sa{}",
                u8::from(stuck)
            );
        }
    }

    #[test]
    fn register_outputs_delays_by_one_cycle() {
        // Combinational XOR; registered version shows last cycle's value.
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let x = b.xor2(i[0], i[1]);
        b.output(x);
        let core = b.finish();
        let seq = register_outputs(&core);
        assert_eq!(seq.flops(), 1);

        let mut state = vec![0u64];
        let out1 = seq.step(&mut state, &[1, 0]); // xor = 1 latched
        assert_eq!(out1[0] & 1, 0, "first output is the reset state");
        let out2 = seq.step(&mut state, &[0, 0]);
        assert_eq!(out2[0] & 1, 1, "second output is last cycle's xor");
    }

    #[test]
    fn width_validation() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(3);
        let x = b.and2(i[0], i[1]);
        b.output(x);
        let nl = b.finish();
        // 3 inputs, 1 output: claiming 1 real input (2 flops in) but 1
        // real output (0 flops out) is inconsistent.
        assert!(SequentialNetlist::new(nl.clone(), 1, 1).is_err());
        // 2 real inputs (1 flop), 0 real outputs (1 flop) is consistent.
        assert!(SequentialNetlist::new(nl, 2, 0).is_ok());
    }
}
