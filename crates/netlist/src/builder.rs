//! Netlist construction combinators.

use crate::netlist::{Gate, GateKind, NetId, Netlist};

/// Incremental netlist builder.
///
/// Gates must be created after their input nets, which makes the gate list
/// topologically ordered by construction; [`finish`](NetlistBuilder::finish)
/// asserts that invariant in debug builds.
///
/// # Example
///
/// ```
/// use r2d3_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let a = b.inputs(8);
/// let bb = b.inputs(8);
/// let eq = b.equal(&a, &bb);
/// b.output(eq);
/// let nl = b.finish();
/// assert_eq!(nl.num_inputs(), 16);
/// ```
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    num_inputs: usize,
    next_net: u32,
    gates: Vec<Gate>,
    outputs: Vec<NetId>,
    redundant_constants: Vec<(NetId, bool)>,
    inputs_frozen: bool,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        NetlistBuilder::default()
    }

    /// Allocates `n` new primary inputs.
    ///
    /// # Panics
    ///
    /// Panics if called after the first gate was created (inputs must be
    /// allocated first so they occupy the low net indices).
    pub fn inputs(&mut self, n: usize) -> Vec<NetId> {
        assert!(!self.inputs_frozen, "allocate all inputs before creating gates");
        let start = self.next_net;
        self.next_net += n as u32;
        self.num_inputs += n;
        (start..self.next_net).map(NetId).collect()
    }

    /// Allocates a single primary input.
    pub fn input(&mut self) -> NetId {
        self.inputs(1)[0]
    }

    fn fresh(&mut self) -> NetId {
        let id = NetId(self.next_net);
        self.next_net += 1;
        id
    }

    /// Creates a gate and returns its output net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != kind.arity()`.
    pub fn gate(&mut self, kind: GateKind, inputs: &[NetId]) -> NetId {
        assert_eq!(inputs.len(), kind.arity(), "wrong arity for {kind:?}");
        self.inputs_frozen = true;
        let output = self.fresh();
        self.gates.push(Gate { kind, inputs: inputs.to_vec(), output });
        output
    }

    /// Constant 0 or 1 net.
    pub fn constant(&mut self, value: bool) -> NetId {
        self.gate(if value { GateKind::Const1 } else { GateKind::Const0 }, &[])
    }

    /// `!a`
    pub fn not(&mut self, a: NetId) -> NetId {
        self.gate(GateKind::Not, &[a])
    }

    /// `a & b`
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::And, &[a, b])
    }

    /// `a | b`
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Or, &[a, b])
    }

    /// `a ^ b`
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Xor, &[a, b])
    }

    /// `sel ? a : b`
    pub fn mux2(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Mux, &[sel, a, b])
    }

    /// Balanced AND tree over `nets` (empty → constant 1).
    pub fn and_tree(&mut self, nets: &[NetId]) -> NetId {
        self.tree(GateKind::And, nets, true)
    }

    /// Balanced OR tree over `nets` (empty → constant 0).
    pub fn or_tree(&mut self, nets: &[NetId]) -> NetId {
        self.tree(GateKind::Or, nets, false)
    }

    /// Balanced XOR (parity) tree over `nets` (empty → constant 0).
    pub fn xor_tree(&mut self, nets: &[NetId]) -> NetId {
        self.tree(GateKind::Xor, nets, false)
    }

    fn tree(&mut self, kind: GateKind, nets: &[NetId], empty_value: bool) -> NetId {
        match nets.len() {
            0 => self.constant(empty_value),
            1 => nets[0],
            _ => {
                let mut layer: Vec<NetId> = nets.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(if pair.len() == 2 {
                            self.gate(kind, &[pair[0], pair[1]])
                        } else {
                            pair[0]
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Full adder; returns `(sum, carry_out)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let axb = self.xor2(a, b);
        let sum = self.xor2(axb, cin);
        let t1 = self.and2(a, b);
        let t2 = self.and2(axb, cin);
        let cout = self.or2(t1, t2);
        (sum, cout)
    }

    /// Ripple-carry adder over equal-width operands; returns
    /// `(sum_bits, carry_out)` (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn ripple_adder(&mut self, a: &[NetId], b: &[NetId], cin: NetId) -> (Vec<NetId>, NetId) {
        assert_eq!(a.len(), b.len(), "adder operand widths differ");
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (&ai, &bi) in a.iter().zip(b) {
            let (s, c) = self.full_adder(ai, bi, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Subtractor `a - b` via two's complement; returns `(diff, borrow_out)`.
    pub fn subtractor(&mut self, a: &[NetId], b: &[NetId]) -> (Vec<NetId>, NetId) {
        let nb: Vec<NetId> = b.iter().map(|&x| self.not(x)).collect();
        let one = self.constant(true);
        let (diff, carry) = self.ripple_adder(a, &nb, one);
        let borrow = self.not(carry);
        (diff, borrow)
    }

    /// Bitwise equality comparator (XNOR reduce).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn equal(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        assert_eq!(a.len(), b.len(), "comparator operand widths differ");
        let eqs: Vec<NetId> =
            a.iter().zip(b).map(|(&x, &y)| self.gate(GateKind::Xnor, &[x, y])).collect();
        self.and_tree(&eqs)
    }

    /// Word-wide 2:1 mux (`sel ? a : b`).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn mux_word(&mut self, sel: NetId, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "mux operand widths differ");
        a.iter().zip(b).map(|(&x, &y)| self.mux2(sel, x, y)).collect()
    }

    /// Logarithmic barrel shifter (left shift by `shamt`, zero fill).
    /// `shamt` is LSB-first; only `log2(width)` bits are used.
    pub fn barrel_shift_left(&mut self, value: &[NetId], shamt: &[NetId]) -> Vec<NetId> {
        let width = value.len();
        let zero = self.constant(false);
        let mut cur: Vec<NetId> = value.to_vec();
        let stages = usize::BITS - (width.max(2) - 1).leading_zeros();
        for s in 0..stages as usize {
            let Some(&sel) = shamt.get(s) else { break };
            let shift = 1usize << s;
            let shifted: Vec<NetId> =
                (0..width).map(|i| if i >= shift { cur[i - shift] } else { zero }).collect();
            cur = self.mux_word(sel, &shifted, &cur);
        }
        cur
    }

    /// Array multiplier over unsigned operands; returns the low
    /// `a.len() + b.len()` product bits (LSB first).
    pub fn array_multiplier(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        let zero = self.constant(false);
        let out_w = a.len() + b.len();
        let mut acc: Vec<NetId> = vec![zero; out_w];
        for (j, &bj) in b.iter().enumerate() {
            // Partial product row: (a & bj) << j, padded to out_w.
            let mut row: Vec<NetId> = vec![zero; out_w];
            for (i, &ai) in a.iter().enumerate() {
                row[i + j] = self.and2(ai, bj);
            }
            let (sum, _c) = self.ripple_adder(&acc, &row, zero);
            acc = sum;
        }
        acc
    }

    /// Priority encoder: given request lines (index 0 = highest priority),
    /// returns one-hot grant lines.
    pub fn priority_encoder(&mut self, requests: &[NetId]) -> Vec<NetId> {
        let mut grants = Vec::with_capacity(requests.len());
        let mut none_above = self.constant(true);
        for &req in requests {
            let grant = self.and2(req, none_above);
            grants.push(grant);
            let n = self.not(req);
            none_above = self.and2(none_above, n);
        }
        grants
    }

    /// Binary decoder: `sel` (LSB first) to `2^sel.len()` one-hot lines.
    pub fn decoder(&mut self, sel: &[NetId]) -> Vec<NetId> {
        let n = 1usize << sel.len();
        let inv: Vec<NetId> = sel.iter().map(|&s| self.not(s)).collect();
        (0..n)
            .map(|i| {
                let terms: Vec<NetId> = sel
                    .iter()
                    .enumerate()
                    .map(|(b, &s)| if (i >> b) & 1 == 1 { s } else { inv[b] })
                    .collect();
                self.and_tree(&terms)
            })
            .collect()
    }

    /// Inserts a *redundant* constant-0 net: `a & !a`. The returned net is
    /// provably always 0, so its stuck-at-0 fault is undetectable. The net
    /// is registered in [`Netlist::redundant_constants`].
    ///
    /// ORing this net into a live path keeps the surrounding logic
    /// functionally unchanged while adding genuinely untestable fault
    /// sites — ground truth for the campaign's "undetectable" class.
    pub fn redundant_zero(&mut self, a: NetId) -> NetId {
        let na = self.not(a);
        let z = self.and2(a, na);
        self.redundant_constants.push((z, false));
        z
    }

    /// Inserts a redundant constant-1 net: `a | !a` (stuck-at-1 undetectable).
    pub fn redundant_one(&mut self, a: NetId) -> NetId {
        let na = self.not(a);
        let o = self.or2(a, na);
        self.redundant_constants.push((o, true));
        o
    }

    /// Registers `net` as constant-by-construction with value `value`.
    ///
    /// Use this when deriving further constant nets from a
    /// [`redundant_zero`](NetlistBuilder::redundant_zero) /
    /// [`redundant_one`](NetlistBuilder::redundant_one) root (e.g. an AND
    /// of a constant-0 net with anything is still constant 0). The caller
    /// is responsible for the constant-ness claim; stage generators verify
    /// it by simulation in their tests.
    pub fn mark_redundant(&mut self, net: NetId, value: bool) {
        self.redundant_constants.push((net, value));
    }

    /// Marks a net as a primary output.
    pub fn output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Marks several nets as primary outputs.
    pub fn outputs(&mut self, nets: &[NetId]) {
        self.outputs.extend_from_slice(nets);
    }

    /// Finalizes the netlist.
    ///
    /// # Panics
    ///
    /// Debug-asserts the structural invariants via [`Netlist::validate`].
    #[must_use]
    pub fn finish(self) -> Netlist {
        let nl = Netlist::from_parts(
            self.next_net as usize,
            self.num_inputs,
            self.gates,
            self.outputs,
            self.redundant_constants,
        );
        debug_assert_eq!(nl.validate(), Ok(()));
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bits_to_lanes(value: u64, width: usize) -> Vec<u64> {
        (0..width).map(|i| (value >> i) & 1).collect()
    }

    fn lanes_to_bits(lanes: &[u64]) -> u64 {
        lanes.iter().enumerate().fold(0u64, |acc, (i, l)| acc | ((l & 1) << i))
    }

    #[test]
    fn adder_adds() {
        let mut b = NetlistBuilder::new();
        let a = b.inputs(8);
        let bb = b.inputs(8);
        let zero = b.constant(false);
        let (sum, cout) = b.ripple_adder(&a, &bb, zero);
        b.outputs(&sum);
        b.output(cout);
        let nl = b.finish();
        for (x, y) in [(0u64, 0u64), (1, 1), (200, 100), (255, 255), (37, 91)] {
            let mut lanes = bits_to_lanes(x, 8);
            lanes.extend(bits_to_lanes(y, 8));
            let out = nl.eval(&lanes);
            let got = lanes_to_bits(&out);
            assert_eq!(got, (x + y) & 0x1ff, "{x}+{y}");
        }
    }

    #[test]
    fn subtractor_subtracts() {
        let mut b = NetlistBuilder::new();
        let a = b.inputs(8);
        let bb = b.inputs(8);
        let (diff, borrow) = b.subtractor(&a, &bb);
        b.outputs(&diff);
        b.output(borrow);
        let nl = b.finish();
        for (x, y) in [(10u64, 3u64), (3, 10), (255, 0), (0, 255)] {
            let mut lanes = bits_to_lanes(x, 8);
            lanes.extend(bits_to_lanes(y, 8));
            let out = nl.eval(&lanes);
            let diff_got = lanes_to_bits(&out[..8]);
            let borrow_got = out[8] & 1;
            assert_eq!(diff_got, x.wrapping_sub(y) & 0xff, "{x}-{y}");
            assert_eq!(borrow_got, u64::from(x < y), "borrow for {x}-{y}");
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let mut b = NetlistBuilder::new();
        let a = b.inputs(6);
        let bb = b.inputs(6);
        let p = b.array_multiplier(&a, &bb);
        b.outputs(&p);
        let nl = b.finish();
        for (x, y) in [(0u64, 0u64), (1, 63), (63, 63), (12, 5), (31, 33 & 63)] {
            let mut lanes = bits_to_lanes(x, 6);
            lanes.extend(bits_to_lanes(y, 6));
            let out = nl.eval(&lanes);
            assert_eq!(lanes_to_bits(&out), x * y, "{x}*{y}");
        }
    }

    #[test]
    fn barrel_shifter_shifts() {
        let mut b = NetlistBuilder::new();
        let v = b.inputs(8);
        let s = b.inputs(3);
        let out = b.barrel_shift_left(&v, &s);
        b.outputs(&out);
        let nl = b.finish();
        for (x, sh) in [(0b1u64, 0u64), (0b1, 7), (0xff, 4), (0b1011, 2)] {
            let mut lanes = bits_to_lanes(x, 8);
            lanes.extend(bits_to_lanes(sh, 3));
            let got = lanes_to_bits(&nl.eval(&lanes));
            assert_eq!(got, (x << sh) & 0xff, "{x}<<{sh}");
        }
    }

    #[test]
    fn priority_encoder_grants_highest() {
        let mut b = NetlistBuilder::new();
        let req = b.inputs(4);
        let g = b.priority_encoder(&req);
        b.outputs(&g);
        let nl = b.finish();
        for (r, want) in
            [(0b0000u64, 0b0000u64), (0b0110, 0b0010), (0b1000, 0b1000), (0b1111, 0b0001)]
        {
            let lanes = bits_to_lanes(r, 4);
            assert_eq!(lanes_to_bits(&nl.eval(&lanes)), want, "req {r:#b}");
        }
    }

    #[test]
    fn decoder_is_one_hot() {
        let mut b = NetlistBuilder::new();
        let s = b.inputs(3);
        let d = b.decoder(&s);
        b.outputs(&d);
        let nl = b.finish();
        for v in 0..8u64 {
            let got = lanes_to_bits(&nl.eval(&bits_to_lanes(v, 3)));
            assert_eq!(got, 1 << v, "decode {v}");
        }
    }

    #[test]
    fn redundant_nets_are_constant() {
        let mut b = NetlistBuilder::new();
        let a = b.inputs(1);
        let z = b.redundant_zero(a[0]);
        let o = b.redundant_one(a[0]);
        let live = b.or2(a[0], z);
        let live2 = b.and2(live, o);
        b.output(live2);
        let nl = b.finish();
        assert_eq!(nl.redundant_constants().len(), 2);
        // Function is unchanged: output == input.
        for v in [0u64, 1] {
            assert_eq!(nl.eval(&[v])[0] & 1, v);
        }
    }

    proptest! {
        #[test]
        fn equal_matches_semantics(x in 0u64..256, y in 0u64..256) {
            let mut b = NetlistBuilder::new();
            let a = b.inputs(8);
            let bb = b.inputs(8);
            let eq = b.equal(&a, &bb);
            b.output(eq);
            let nl = b.finish();
            let mut lanes = bits_to_lanes(x, 8);
            lanes.extend(bits_to_lanes(y, 8));
            prop_assert_eq!(nl.eval(&lanes)[0] & 1, u64::from(x == y));
        }

        #[test]
        fn adder_random(x in 0u64..65536, y in 0u64..65536) {
            let mut b = NetlistBuilder::new();
            let a = b.inputs(16);
            let bb = b.inputs(16);
            let zero = b.constant(false);
            let (sum, _) = b.ripple_adder(&a, &bb, zero);
            b.outputs(&sum);
            let nl = b.finish();
            let mut lanes = bits_to_lanes(x, 16);
            lanes.extend(bits_to_lanes(y, 16));
            prop_assert_eq!(lanes_to_bits(&nl.eval(&lanes)), (x + y) & 0xffff);
        }
    }
}
