//! Core netlist representation and bit-parallel evaluation.

use crate::NetlistError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a signal net within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub u32);

impl NetId {
    /// The net's index as a `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Primitive gate types.
///
/// `Mux` takes three inputs `(sel, a, b)` and produces `sel ? a : b`.
/// `Const0`/`Const1` take no inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum GateKind {
    Buf,
    Not,
    And,
    Or,
    Nand,
    Nor,
    Xor,
    Xnor,
    Mux,
    Const0,
    Const1,
}

impl GateKind {
    /// Number of input pins the gate kind expects (`And`/`Or`/… are 2-input).
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            GateKind::Buf | GateKind::Not => 1,
            GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => 2,
            GateKind::Mux => 3,
            GateKind::Const0 | GateKind::Const1 => 0,
        }
    }
}

/// A gate instance: a kind, input nets and one output net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// Gate function.
    pub kind: GateKind,
    /// Input nets (length = `kind.arity()`).
    pub inputs: Vec<NetId>,
    /// Output net (unique driver).
    pub output: NetId,
}

impl Gate {
    fn eval(&self, values: &[u64]) -> u64 {
        let input = |i: usize| values[self.inputs[i].index()];
        match self.kind {
            GateKind::Buf => input(0),
            GateKind::Not => !input(0),
            GateKind::And => input(0) & input(1),
            GateKind::Or => input(0) | input(1),
            GateKind::Nand => !(input(0) & input(1)),
            GateKind::Nor => !(input(0) | input(1)),
            GateKind::Xor => input(0) ^ input(1),
            GateKind::Xnor => !(input(0) ^ input(1)),
            GateKind::Mux => (input(0) & input(1)) | (!input(0) & input(2)),
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
        }
    }
}

/// A combinational netlist in topological order.
///
/// Primary inputs come first in the net numbering, gates are stored in a
/// valid evaluation order (the builder guarantees inputs are driven before
/// use), and a subset of nets are designated primary outputs.
///
/// Evaluation is 64-way bit-parallel: each `u64` carries 64 independent
/// test patterns, one per bit lane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    num_nets: usize,
    num_inputs: usize,
    gates: Vec<Gate>,
    outputs: Vec<NetId>,
    /// Nets that are constant by construction, with their constant value.
    /// Stuck-at faults matching the constant are provably undetectable;
    /// the ATPG campaign uses this as ground truth.
    redundant_constants: Vec<(NetId, bool)>,
}

impl Netlist {
    pub(crate) fn from_parts(
        num_nets: usize,
        num_inputs: usize,
        gates: Vec<Gate>,
        outputs: Vec<NetId>,
        redundant_constants: Vec<(NetId, bool)>,
    ) -> Self {
        Netlist { num_nets, num_inputs, gates, outputs, redundant_constants }
    }

    /// Total number of nets (inputs + gate outputs).
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Number of primary inputs (nets `0..num_inputs`).
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of gates.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The gates in evaluation order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Primary output nets.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Primary input nets (`0..num_inputs`).
    pub fn inputs(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.num_inputs as u32).map(NetId)
    }

    /// Nets that are constant by construction (ground truth for
    /// undetectable stuck-at faults), as `(net, constant_value)` pairs.
    #[must_use]
    pub fn redundant_constants(&self) -> &[(NetId, bool)] {
        &self.redundant_constants
    }

    /// Validates structural invariants: every gate input is driven by a
    /// primary input or an earlier gate, and every net has at most one
    /// driver.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut driven = vec![false; self.num_nets];
        for d in driven.iter_mut().take(self.num_inputs) {
            *d = true;
        }
        for (i, gate) in self.gates.iter().enumerate() {
            for &input in &gate.inputs {
                if !driven[input.index()] {
                    return Err(NetlistError::UndrivenInput { gate_index: i, net: input });
                }
            }
            if driven[gate.output.index()] {
                return Err(NetlistError::MultipleDrivers(gate.output));
            }
            driven[gate.output.index()] = true;
        }
        Ok(())
    }

    /// Evaluates all nets for 64 parallel patterns.
    ///
    /// `inputs[i]` carries 64 values (one per bit lane) for primary input
    /// `i`. Returns the full net-value vector.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    #[must_use]
    pub fn eval_all(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.num_inputs, "primary input width mismatch");
        let mut values = vec![0u64; self.num_nets];
        values[..self.num_inputs].copy_from_slice(inputs);
        for gate in &self.gates {
            values[gate.output.index()] = gate.eval(&values);
        }
        values
    }

    /// Allocation-free variant of [`eval_all`](Netlist::eval_all): writes
    /// every net's value into `values`, resizing it if needed. Intended
    /// for loops that evaluate many pattern blocks.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    pub fn eval_all_into(&self, inputs: &[u64], values: &mut Vec<u64>) {
        assert_eq!(inputs.len(), self.num_inputs, "primary input width mismatch");
        values.clear();
        values.resize(self.num_nets, 0);
        values[..self.num_inputs].copy_from_slice(inputs);
        for gate in &self.gates {
            values[gate.output.index()] = gate.eval(values);
        }
    }

    /// Evaluates all nets with one net overridden to a stuck value
    /// (bit-parallel fault simulation primitive).
    ///
    /// `stuck` is `(net, value)`: after the net's driver evaluates (or, for
    /// a primary input, immediately), the net is forced to all-0s or all-1s.
    #[must_use]
    pub fn eval_all_stuck(&self, inputs: &[u64], stuck: (NetId, bool)) -> Vec<u64> {
        assert_eq!(inputs.len(), self.num_inputs, "primary input width mismatch");
        let (fnet, fval) = stuck;
        let forced = if fval { !0u64 } else { 0u64 };
        let mut values = vec![0u64; self.num_nets];
        values[..self.num_inputs].copy_from_slice(inputs);
        if fnet.index() < self.num_inputs {
            values[fnet.index()] = forced;
        }
        for gate in &self.gates {
            let v = gate.eval(&values);
            values[gate.output.index()] = if gate.output == fnet { forced } else { v };
        }
        values
    }

    /// Allocation-free variant of [`eval_all_stuck`](Netlist::eval_all_stuck):
    /// writes net values into `values`, resizing it if needed. Intended for
    /// fault-simulation inner loops.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    pub fn eval_all_stuck_into(&self, inputs: &[u64], stuck: (NetId, bool), values: &mut Vec<u64>) {
        assert_eq!(inputs.len(), self.num_inputs, "primary input width mismatch");
        let (fnet, fval) = stuck;
        let forced = if fval { !0u64 } else { 0u64 };
        values.clear();
        values.resize(self.num_nets, 0);
        values[..self.num_inputs].copy_from_slice(inputs);
        if fnet.index() < self.num_inputs {
            values[fnet.index()] = forced;
        }
        for gate in &self.gates {
            let v = gate.eval(values);
            values[gate.output.index()] = if gate.output == fnet { forced } else { v };
        }
    }

    /// Evaluates and returns only the primary-output lanes.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    #[must_use]
    pub fn eval(&self, inputs: &[u64]) -> Vec<u64> {
        let values = self.eval_all(inputs);
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// Extracts primary-output values from a full net-value vector.
    #[must_use]
    pub fn output_values(&self, values: &[u64]) -> Vec<u64> {
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }
}

/// Width-adaptation policy for [`compose_chain_with`].
///
/// When a stage produces more outputs than the next stage consumes, the
/// leftovers are either *dropped* (their exclusive logic cones become
/// unobservable at the core boundary) or *absorbed* into consumed signals
/// through glue gates. OR-glue keeps the cone structurally reachable but
/// heavily logic-masked (random patterns rarely sensitize it); XOR-glue is
/// transparent. The mix controls how much core-boundary masking the
/// composition exhibits, which is the knob behind the paper's 96 % → 84 %
/// stage-to-core coverage drop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComposeOptions {
    /// Fraction of leftover outputs absorbed (rest are dropped).
    pub absorb_fraction: f64,
    /// Of the absorbed outputs, fraction glued transparently (direct XOR
    /// into a consumed line — fault effects propagate on every pattern).
    /// The rest are funneled through deep OR chains (see `mask_depth`).
    pub transparent_fraction: f64,
    /// Length of the masking OR chains used for non-transparent
    /// absorption. Chain tails are XORed back into consumed lines, which
    /// both keeps absorbed cones structurally observable and creates
    /// reconvergent paths whose XOR cancellation masks fault effects —
    /// exactly the behaviour of logic buried behind downstream pipeline
    /// stages.
    pub mask_depth: usize,
    /// If set, only the first `n` outputs of the final stage are
    /// observable (the architectural core boundary); the rest of the last
    /// stage's outputs are internal. `None` observes everything.
    pub observe_limit: Option<usize>,
}

impl Default for ComposeOptions {
    fn default() -> Self {
        ComposeOptions {
            absorb_fraction: 0.0,
            transparent_fraction: 0.0,
            mask_depth: 14,
            observe_limit: None,
        }
    }
}

impl ComposeOptions {
    /// Calibrated options for modeling a *core-level* detection
    /// architecture over the default [`crate::stages`] netlists: part of
    /// each stage's boundary signals is simply invisible at the core
    /// boundary, the rest funnels through masking glue, and only the final
    /// stage's architectural outputs are observed.
    ///
    /// With these options the default five-unit chain measures ≈85 %
    /// detectable faults and ≈70 % of detectable faults detected within
    /// 5 k patterns, reproducing the paper's Fig. 4 stage-vs-core gap
    /// (96 % → 84 % coverage, 96 % → 63 % within 5 k).
    #[must_use]
    pub fn core_level() -> Self {
        ComposeOptions {
            absorb_fraction: 0.45,
            transparent_fraction: 0.0,
            mask_depth: 14,
            observe_limit: Some(23),
        }
    }
}

/// Composes a chain of netlists: stage `i`'s primary outputs feed stage
/// `i+1`'s primary inputs; only the *last* stage's outputs are observable.
///
/// This models core-level fault observation (paper Fig. 4(b) "Core Level"):
/// a fault effect inside an upstream stage must functionally propagate
/// through all downstream stages before a core-boundary checker can see it,
/// so logic masking reduces effective coverage.
///
/// Width adaptation: if a stage has more inputs than the previous stage has
/// outputs, the outputs are reused cyclically; extra outputs are handled
/// per [`ComposeOptions`] (dropped by default — see [`compose_chain_with`]).
/// Returns the composed netlist and, for each chained stage, a map from
/// that stage's local net indices to composed nets (so fault sites can be
/// mapped from a stage-local netlist into the composition).
///
/// # Errors
///
/// Returns [`NetlistError::EmptyChain`] if `stages` is empty.
pub fn compose_chain(stages: &[&Netlist]) -> Result<(Netlist, Vec<Vec<NetId>>), NetlistError> {
    compose_chain_with(stages, &ComposeOptions::default())
}

/// [`compose_chain`] with explicit width-adaptation options.
///
/// # Errors
///
/// Returns [`NetlistError::EmptyChain`] if `stages` is empty.
pub fn compose_chain_with(
    stages: &[&Netlist],
    options: &ComposeOptions,
) -> Result<(Netlist, Vec<Vec<NetId>>), NetlistError> {
    let first = *stages.first().ok_or(NetlistError::EmptyChain)?;

    let mut gates: Vec<Gate> = Vec::new();
    let mut redundant = Vec::new();
    let mut maps: Vec<Vec<NetId>> = Vec::with_capacity(stages.len());

    // The composed circuit's primary inputs are the first stage's inputs.
    let num_inputs = first.num_inputs();
    let mut next_net = num_inputs as u32;

    // Stage 0's inputs map to composed inputs directly.
    let mut prev_outputs: Vec<NetId> = Vec::new();

    for (si, stage) in stages.iter().enumerate() {
        let mut map = vec![NetId(u32::MAX); stage.num_nets()];
        if si == 0 {
            for (i, slot) in map.iter_mut().enumerate().take(stage.num_inputs()) {
                *slot = NetId(i as u32);
            }
        } else {
            // Absorb or drop leftover previous outputs before wiring.
            let consumed = stage.num_inputs().min(prev_outputs.len());
            if prev_outputs.len() > consumed {
                let leftovers: Vec<NetId> = prev_outputs.split_off(consumed);
                let mut emit = |kind: GateKind, a: NetId, c: NetId| {
                    let out = NetId(next_net);
                    next_net += 1;
                    gates.push(Gate { kind, inputs: vec![a, c], output: out });
                    out
                };
                // Masked leftovers accumulate into deep OR chains; each
                // full chain's tail is XORed into one consumed line.
                let mut chain: Option<(NetId, usize)> = None;
                let mut chain_slot = 0usize;
                for (k, leftover) in leftovers.into_iter().enumerate() {
                    // Deterministic per-leftover decision (no RNG dep).
                    let h = hash_index(si, k);
                    if (h % 1000) as f64 >= options.absorb_fraction * 1000.0 {
                        continue; // dropped: cone becomes unobservable
                    }
                    let hs = ((h / 1000) % 1000) as f64;
                    if hs < options.transparent_fraction * 1000.0 {
                        let j = k % consumed;
                        prev_outputs[j] = emit(GateKind::Xor, prev_outputs[j], leftover);
                        continue;
                    }
                    chain = Some(match chain {
                        None => (leftover, 1),
                        Some((acc, n)) => (emit(GateKind::Or, acc, leftover), n + 1),
                    });
                    if let Some((acc, n)) = chain {
                        if n >= options.mask_depth.max(2) {
                            let j = chain_slot % consumed;
                            prev_outputs[j] = emit(GateKind::Xor, prev_outputs[j], acc);
                            chain_slot += 1;
                            chain = None;
                        }
                    }
                }
                if let Some((acc, _)) = chain {
                    let j = chain_slot % consumed;
                    prev_outputs[j] = emit(GateKind::Xor, prev_outputs[j], acc);
                }
            }
            // Feed this stage's inputs from previous outputs (cyclically).
            for i in 0..stage.num_inputs() {
                map[i] = prev_outputs[i % prev_outputs.len()];
            }
        }
        // Allocate composed nets for this stage's gate outputs, preserving
        // gate order (which preserves topological validity).
        for gate in stage.gates() {
            let out = NetId(next_net);
            next_net += 1;
            map[gate.output.index()] = out;
        }
        // Emit the gates with remapped nets.
        for gate in stage.gates() {
            gates.push(Gate {
                kind: gate.kind,
                inputs: gate.inputs.iter().map(|n| map[n.index()]).collect(),
                output: map[gate.output.index()],
            });
        }
        for &(net, val) in stage.redundant_constants() {
            let mapped = map[net.index()];
            if mapped != NetId(u32::MAX) {
                redundant.push((mapped, val));
            }
        }
        prev_outputs = stage.outputs().iter().map(|o| map[o.index()]).collect();
        if prev_outputs.is_empty() {
            return Err(NetlistError::EmptyChain);
        }
        maps.push(map);
    }

    if let Some(limit) = options.observe_limit {
        prev_outputs.truncate(limit.max(1));
    }

    let composed =
        Netlist::from_parts(next_net as usize, num_inputs, gates, prev_outputs, redundant);
    Ok((composed, maps))
}

/// SplitMix64-style hash of a `(stage, leftover)` pair, used for
/// deterministic absorb/drop decisions in [`compose_chain_with`].
fn hash_index(stage: usize, k: usize) -> u64 {
    let mut x = (stage as u64) << 32 | k as u64;
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn xor_circuit() -> Netlist {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(2);
        let x = b.xor2(i[0], i[1]);
        b.output(x);
        b.finish()
    }

    #[test]
    fn gate_eval_truth_tables() {
        // lanes: bit0 = (0,0), bit1 = (0,1), bit2 = (1,0), bit3 = (1,1)
        let a = 0b1100u64;
        let b = 0b1010u64;
        let nl = xor_circuit();
        let out = nl.eval(&[a, b]);
        assert_eq!(out[0] & 0xf, 0b0110);
    }

    #[test]
    fn mux_semantics() {
        let mut b = NetlistBuilder::new();
        let i = b.inputs(3); // sel, a, b
        let m = b.mux2(i[0], i[1], i[2]);
        b.output(m);
        let nl = b.finish();
        // sel=1 -> a; sel=0 -> b
        let out = nl.eval(&[0b10, 0b11, 0b01]);
        assert_eq!(out[0] & 0b11, 0b11, "lane0: sel=0 picks b=1; lane1: sel=1 picks a=1");
    }

    #[test]
    fn stuck_at_changes_output() {
        let nl = xor_circuit();
        let good = nl.eval(&[0b1100, 0b1010]);
        let bad = {
            let v = nl.eval_all_stuck(&[0b1100, 0b1010], (nl.outputs()[0], false));
            nl.output_values(&v)
        };
        assert_ne!(good[0] & 0xf, bad[0] & 0xf);
        assert_eq!(bad[0] & 0xf, 0);
    }

    #[test]
    fn stuck_at_on_primary_input() {
        let nl = xor_circuit();
        let v = nl.eval_all_stuck(&[0, 0], (NetId(0), true));
        assert_eq!(nl.output_values(&v)[0], !0u64, "sa1 on input a makes xor = 1");
    }

    #[test]
    fn validate_accepts_builder_output() {
        xor_circuit().validate().unwrap();
    }

    #[test]
    fn compose_two_stages() {
        // Stage: 2-in, 2-out (pass-through xor + and).
        let stage = || {
            let mut b = NetlistBuilder::new();
            let i = b.inputs(2);
            let x = b.xor2(i[0], i[1]);
            let y = b.and2(i[0], i[1]);
            b.output(x);
            b.output(y);
            b.finish()
        };
        let s1 = stage();
        let s2 = stage();
        let (composed, maps) = compose_chain(&[&s1, &s2]).unwrap();
        composed.validate().unwrap();
        assert_eq!(composed.num_inputs(), 2);
        assert_eq!(composed.outputs().len(), 2);
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0].len(), s1.num_nets());
        // (a,b) -> stage1 (x=a^b, y=a&b) -> stage2 (x^y, x&y)
        let a = 0b1100u64;
        let b = 0b1010u64;
        let out = composed.eval(&[a, b]);
        let x1 = a ^ b;
        let y1 = a & b;
        assert_eq!(out[0] & 0xf, (x1 ^ y1) & 0xf);
        assert_eq!(out[1] & 0xf, (x1 & y1) & 0xf);
    }

    #[test]
    fn compose_empty_is_error() {
        assert!(matches!(compose_chain(&[]), Err(NetlistError::EmptyChain)));
    }
}
