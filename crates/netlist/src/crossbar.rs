//! Structural model of the vertical crossbar and checkers (§III-A).
//!
//! The paper adopts 3DFAR's bus-style interconnect: "vertical links
//! containing all signals at stage boundaries run across the entire
//! height of the design, and each layer can multiplex its inputs from
//! the prior stage on either the same layer or other layers… we use
//! MUX-based full crossbar switches" with "two comparators between
//! subsequent stages, for all layers" as detection checkers.
//!
//! This module generates those structures as gate-level netlists, which
//! lets the reproduction *derive* interconnect cost from structure (and
//! cross-check it against the paper's measured Table III overheads)
//! instead of only asserting the reported percentages.

use crate::builder::NetlistBuilder;
use crate::netlist::{NetId, Netlist};

/// Generates one layer's receive mux of a bus-style crossbar: `width`
/// output bits, each selected from `layers` candidate source layers.
///
/// Inputs: `layers × width` signal bits (layer-major) followed by
/// `ceil(log2(layers))` select bits. The signals are "switched at their
/// destination layer" (per the paper), so each layer instantiates one of
/// these.
///
/// # Panics
///
/// Panics if `layers` or `width` is zero.
#[must_use]
pub fn crossbar_receiver(layers: usize, width: usize) -> Netlist {
    assert!(layers > 0 && width > 0, "crossbar needs layers and width");
    let sel_bits = (usize::BITS - (layers - 1).leading_zeros()).max(1) as usize;

    let mut b = NetlistBuilder::new();
    let signals: Vec<Vec<NetId>> = (0..layers).map(|_| b.inputs(width)).collect();
    let select = b.inputs(sel_bits);

    // One-hot decode of the source layer, then per-bit mux tree.
    let onehot = b.decoder(&select);
    for bit in 0..width {
        // OR over (onehot[l] AND signal[l][bit]) — an AND-OR mux, the
        // canonical bus-receiver structure.
        let terms: Vec<NetId> = onehot
            .iter()
            .zip(&signals)
            .map(|(&hot, layer_sigs)| b.and2(hot, layer_sigs[bit]))
            .collect();
        let out = b.or_tree(&terms);
        b.output(out);
    }
    b.finish()
}

/// Generates the inter-stage checker: a `width`-bit equality comparator
/// between a DUT stage's outputs and a redundant stage's outputs,
/// producing a single mismatch line (§III-C's "simple inter-stage
/// checkers").
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn checker(width: usize) -> Netlist {
    assert!(width > 0, "checker needs width");
    let mut b = NetlistBuilder::new();
    let a = b.inputs(width);
    let c = b.inputs(width);
    let eq = b.equal(&a, &c);
    let mismatch = b.not(eq);
    b.output(mismatch);
    b.finish()
}

/// Structural overhead estimate for one pipeline unit: gates of its
/// crossbar receiver plus checker, relative to the unit's own gate count.
///
/// `boundary_width` is the number of signals crossing the unit's output
/// boundary; `unit_gates` the unit's logic size; `layers` the stack
/// height. Mirrors how the paper's Table III reports per-unit crossbar
/// and checker area overheads.
#[must_use]
pub fn overhead_estimate(layers: usize, boundary_width: usize, unit_gates: usize) -> f64 {
    let xbar = crossbar_receiver(layers, boundary_width).num_gates();
    let chk = checker(boundary_width).num_gates();
    (xbar + chk) as f64 / unit_gates.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::{all_stage_netlists, StageSizing};

    fn bits_to_lanes(value: u64, width: usize) -> Vec<u64> {
        (0..width).map(|i| (value >> i) & 1).collect()
    }

    #[test]
    fn receiver_selects_the_right_layer() {
        let layers = 4;
        let width = 8;
        let nl = crossbar_receiver(layers, width);
        nl.validate().unwrap();
        let words = [0x5Au64, 0xA5, 0x3C, 0xC3];
        for sel in 0..layers {
            let mut lanes = Vec::new();
            for w in words {
                lanes.extend(bits_to_lanes(w, width));
            }
            lanes.extend(bits_to_lanes(sel as u64, 2));
            let out = nl.eval(&lanes);
            let got = out.iter().enumerate().fold(0u64, |acc, (i, b)| acc | ((b & 1) << i));
            assert_eq!(got, words[sel], "select {sel}");
        }
    }

    #[test]
    fn checker_fires_exactly_on_mismatch() {
        let nl = checker(16);
        for (a, b, expect) in [(7u64, 7u64, 0u64), (7, 5, 1), (0, 0, 0), (0xffff, 0xfffe, 1)] {
            let mut lanes = bits_to_lanes(a, 16);
            lanes.extend(bits_to_lanes(b, 16));
            assert_eq!(nl.eval(&lanes)[0] & 1, expect, "{a:#x} vs {b:#x}");
        }
    }

    #[test]
    fn structural_overheads_land_in_table_iii_band() {
        // Per-unit crossbar+checker overheads in the paper span 5–37 %
        // (Table III). The structural estimate over the generated unit
        // netlists must land in the same regime, with small units paying
        // proportionally more (the paper's FFU effect: 35.4 %).
        let sizing = StageSizing::default();
        let stages = all_stage_netlists(&sizing);
        let layers = 8;
        let mut overheads = Vec::new();
        for sn in &stages {
            let width = sn.core_output_count();
            let oh = overhead_estimate(layers, width, sn.netlist().num_gates());
            assert!(
                (0.01..0.6).contains(&oh),
                "{}: structural overhead {:.3} outside the plausible band",
                sn.unit(),
                oh
            );
            overheads.push((sn.unit(), sn.netlist().num_gates(), oh));
        }
        // The smallest unit (FFU) pays the largest relative overhead.
        let ffu = overheads.iter().find(|(u, _, _)| *u == r2d3_isa::Unit::Ffu).unwrap();
        let lsu = overheads.iter().find(|(u, _, _)| *u == r2d3_isa::Unit::Lsu).unwrap();
        assert!(
            ffu.2 > lsu.2,
            "FFU ({:.3}) must pay relatively more than LSU ({:.3}), as in Table III",
            ffu.2,
            lsu.2
        );
    }

    #[test]
    fn receiver_scales_linearly_in_width() {
        let g8 = crossbar_receiver(8, 8).num_gates();
        let g16 = crossbar_receiver(8, 16).num_gates();
        // Decoder is shared; the per-bit mux array doubles.
        assert!(g16 > g8 && g16 < 2 * g8 + 16);
    }
}
