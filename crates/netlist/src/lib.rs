#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

//! Gate-level netlist substrate for the R2D3 reproduction.
//!
//! The paper's fault-coverage study (Fig. 4) runs Synopsys TetraMAX ATPG
//! over the synthesized OpenSPARC T1 netlist with the industry-standard
//! stuck-at fault model. We do not have that netlist or tool, so this crate
//! provides the substitute substrate:
//!
//! * a simple combinational/sequential gate-level netlist representation
//!   ([`Netlist`], [`Gate`], [`NetId`]) with 64-way bit-parallel evaluation
//!   (64 test patterns per simulation pass),
//! * builder combinators for realistic datapath structures
//!   ([`builder::NetlistBuilder`]: adders, barrel shifters, comparators,
//!   multipliers, priority encoders, muxes),
//! * structural generators for the five OpenSPARC pipeline units
//!   ([`stages`]), sized proportionally to the paper's Table III silicon
//!   areas, with a known set of *redundant* (provably untestable) logic so
//!   the ATPG campaign has exact ground truth for the "undetectable" class,
//! * stage composition ([`compose_chain`]) used to model *core-level*
//!   observability (fault effects must propagate through all downstream
//!   stages before they can be seen),
//! * a validated IR layer ([`ir`]) with a structural validator, a
//!   deterministic text format, level analysis, and a fixed-order rewrite
//!   pipeline (constant folding, buf/inv cleanup, normalization,
//!   chain→tree rebalancing),
//! * a Yosys-JSON importer ([`yosys_json`]) that maps real synthesized
//!   combinational cores onto this substrate.
//!
//! # Example
//!
//! ```
//! use r2d3_netlist::builder::NetlistBuilder;
//!
//! // A 4-bit adder: sum = a + b.
//! let mut b = NetlistBuilder::new();
//! let a = b.inputs(4);
//! let bb = b.inputs(4);
//! let zero = b.constant(false);
//! let (sum, _carry) = b.ripple_adder(&a, &bb, zero);
//! b.outputs(&sum);
//! let netlist = b.finish();
//!
//! // Evaluate 3 + 5 (patterns are bit-parallel; lane 0 here).
//! let out = netlist.eval(&[1, 1, 0, 0, 1, 0, 1, 0]);
//! let value = out.iter().enumerate().fold(0u64, |acc, (i, bit)| acc | ((bit & 1) << i));
//! assert_eq!(value, 8);
//! ```

pub mod blif;
pub mod builder;
pub mod crossbar;
pub mod ir;
pub mod netlist;
pub mod sequential;
pub mod sim;
pub mod stages;
pub mod yosys_json;

pub use builder::NetlistBuilder;
pub use crossbar::{checker, crossbar_receiver};
pub use ir::{
    analyze_levels, rewrite, text_emit, text_parse, IrError, LevelMap, PassManager, RewriteOutcome,
    RewriteStats,
};
pub use netlist::{
    compose_chain, compose_chain_with, ComposeOptions, Gate, GateKind, NetId, Netlist,
};
pub use sequential::{register_outputs, SequentialNetlist};
pub use sim::{pack_blocks, FaultCone, FaultSim, SimBlock, SimScratch, SimdKernel, WideScratch};
pub use stages::{stage_netlist, StageNetlist, StageSizing};
pub use yosys_json::{parse_yosys_json, ImportedCore, YosysJsonError};

use std::fmt;

/// Errors raised while constructing or validating netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate input references a net with no driver defined yet.
    UndrivenInput {
        /// Index of the offending gate in evaluation order.
        gate_index: usize,
        /// The undriven net.
        net: NetId,
    },
    /// A net has more than one driver.
    MultipleDrivers(NetId),
    /// Input vector length does not match the primary-input count.
    InputLenMismatch {
        /// Expected width.
        expected: usize,
        /// Provided width.
        got: usize,
    },
    /// Chain composition was asked to join an empty list.
    EmptyChain,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UndrivenInput { gate_index, net } => {
                write!(f, "gate {gate_index} reads undriven net {net}")
            }
            NetlistError::MultipleDrivers(n) => write!(f, "net {n} has multiple drivers"),
            NetlistError::InputLenMismatch { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            NetlistError::EmptyChain => write!(f, "cannot compose an empty stage chain"),
        }
    }
}

impl std::error::Error for NetlistError {}
